/**
 * @file
 * A fluent assembler for mini-ISA programs with forward-label fixups.
 *
 * Workloads are written against this builder, e.g.:
 * @code
 *   ProgramBuilder b("sum");
 *   b.movi(R(1), 0);          // i = 0
 *   b.movi(R(2), 100);        // n = 100
 *   b.label("loop");
 *   b.add(R(3), R(3), R(1));  // acc += i
 *   b.addi(R(1), R(1), 1);    // ++i
 *   b.blt(R(1), R(2), "loop");
 *   b.halt();
 *   Program p = b.build();
 * @endcode
 */

#ifndef VPPROF_ISA_PROGRAM_BUILDER_HH
#define VPPROF_ISA_PROGRAM_BUILDER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/program.hh"

namespace vpprof
{

/** Shorthand for an integer register id. */
constexpr RegId
R(unsigned i)
{
    return static_cast<RegId>(i);
}

/** Shorthand for an FP register id. */
constexpr RegId
F(unsigned i)
{
    return static_cast<RegId>(kFpBase + i);
}

/**
 * Builds a Program instruction by instruction. Labels may be referenced
 * before they are defined; build() resolves all fixups and validates the
 * result.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    /** Define a label at the current position. */
    ProgramBuilder &label(const std::string &name);

    // Integer ALU, register-register.
    ProgramBuilder &add(RegId d, RegId a, RegId b);
    ProgramBuilder &sub(RegId d, RegId a, RegId b);
    ProgramBuilder &mul(RegId d, RegId a, RegId b);
    ProgramBuilder &div(RegId d, RegId a, RegId b);
    ProgramBuilder &rem(RegId d, RegId a, RegId b);
    ProgramBuilder &and_(RegId d, RegId a, RegId b);
    ProgramBuilder &or_(RegId d, RegId a, RegId b);
    ProgramBuilder &xor_(RegId d, RegId a, RegId b);
    ProgramBuilder &shl(RegId d, RegId a, RegId b);
    ProgramBuilder &shr(RegId d, RegId a, RegId b);
    ProgramBuilder &sar(RegId d, RegId a, RegId b);
    ProgramBuilder &slt(RegId d, RegId a, RegId b);
    ProgramBuilder &sltu(RegId d, RegId a, RegId b);

    // Integer ALU, register-immediate.
    ProgramBuilder &addi(RegId d, RegId a, int64_t imm);
    ProgramBuilder &subi(RegId d, RegId a, int64_t imm);
    ProgramBuilder &muli(RegId d, RegId a, int64_t imm);
    ProgramBuilder &divi(RegId d, RegId a, int64_t imm);
    ProgramBuilder &remi(RegId d, RegId a, int64_t imm);
    ProgramBuilder &andi(RegId d, RegId a, int64_t imm);
    ProgramBuilder &ori(RegId d, RegId a, int64_t imm);
    ProgramBuilder &xori(RegId d, RegId a, int64_t imm);
    ProgramBuilder &shli(RegId d, RegId a, int64_t imm);
    ProgramBuilder &shri(RegId d, RegId a, int64_t imm);
    ProgramBuilder &sari(RegId d, RegId a, int64_t imm);
    ProgramBuilder &slti(RegId d, RegId a, int64_t imm);

    // Moves.
    ProgramBuilder &mov(RegId d, RegId a);
    ProgramBuilder &movi(RegId d, int64_t imm);

    // Integer memory.
    ProgramBuilder &ld(RegId d, RegId base, int64_t off);
    ProgramBuilder &st(RegId base, RegId value, int64_t off);

    // Floating point.
    ProgramBuilder &fadd(RegId d, RegId a, RegId b);
    ProgramBuilder &fsub(RegId d, RegId a, RegId b);
    ProgramBuilder &fmul(RegId d, RegId a, RegId b);
    ProgramBuilder &fdiv(RegId d, RegId a, RegId b);
    ProgramBuilder &fmov(RegId d, RegId a);
    ProgramBuilder &fneg(RegId d, RegId a);
    ProgramBuilder &fabs_(RegId d, RegId a);
    ProgramBuilder &fmin(RegId d, RegId a, RegId b);
    ProgramBuilder &fmax(RegId d, RegId a, RegId b);
    ProgramBuilder &fsqrt(RegId d, RegId a);
    ProgramBuilder &itof(RegId fd, RegId rs);
    ProgramBuilder &ftoi(RegId rd, RegId fs);
    ProgramBuilder &fld(RegId d, RegId base, int64_t off);
    ProgramBuilder &fst(RegId base, RegId value, int64_t off);

    // Control flow (targets are label names).
    ProgramBuilder &beq(RegId a, RegId b, const std::string &target);
    ProgramBuilder &bne(RegId a, RegId b, const std::string &target);
    ProgramBuilder &blt(RegId a, RegId b, const std::string &target);
    ProgramBuilder &bge(RegId a, RegId b, const std::string &target);
    ProgramBuilder &bltu(RegId a, RegId b, const std::string &target);
    ProgramBuilder &fblt(RegId a, RegId b, const std::string &target);
    ProgramBuilder &jmp(const std::string &target);

    /** call: link saved in kLinkReg by default. */
    ProgramBuilder &call(const std::string &target, RegId link = kLinkReg);

    /** ret: jumps to the index held in the link register. */
    ProgramBuilder &ret(RegId link = kLinkReg);

    ProgramBuilder &nop();
    ProgramBuilder &halt();

    /** Current instruction count (address of the next instruction). */
    uint64_t here() const { return program_.size(); }

    /**
     * Resolve all label fixups, validate and return the program.
     * Fatal on undefined labels or structural problems.
     */
    Program build();

  private:
    ProgramBuilder &emit3(Opcode op, RegId d, RegId a, RegId b);
    ProgramBuilder &emitImm(Opcode op, RegId d, RegId a, int64_t imm);
    ProgramBuilder &emitBranch(Opcode op, RegId a, RegId b,
                               const std::string &target);

    Program program_;
    std::unordered_map<std::string, uint64_t> labels_;
    /** (instruction address, unresolved label) pairs. */
    std::vector<std::pair<uint64_t, std::string>> fixups_;
    bool built_ = false;
};

} // namespace vpprof

#endif // VPPROF_ISA_PROGRAM_BUILDER_HH
