#include "isa/program.hh"

#include <sstream>

#include "common/logging.hh"

namespace vpprof
{

const Instruction &
Program::at(uint64_t addr) const
{
    if (addr >= insts_.size())
        vpprof_panic("Program::at out of range: ", addr, " in ", name_);
    return insts_[addr];
}

Instruction &
Program::at(uint64_t addr)
{
    if (addr >= insts_.size())
        vpprof_panic("Program::at out of range: ", addr, " in ", name_);
    return insts_[addr];
}

void
Program::addLabel(const std::string &label, uint64_t addr)
{
    labels_[addr] = label;
}

void
Program::validate() const
{
    if (insts_.empty())
        vpprof_fatal("program '", name_, "' is empty");

    bool has_halt = false;
    for (size_t i = 0; i < insts_.size(); ++i) {
        const Instruction &inst = insts_[i];
        if (inst.op >= Opcode::NumOpcodes)
            vpprof_fatal("program '", name_, "': bad opcode at ", i);
        if (inst.dest >= kNumRegs || inst.src1 >= kNumRegs ||
            inst.src2 >= kNumRegs) {
            vpprof_fatal("program '", name_, "': register id out of "
                         "range at ", i);
        }
        if (isConditionalBranch(inst.op) || inst.op == Opcode::Jmp ||
            inst.op == Opcode::Call) {
            if (inst.imm < 0 ||
                static_cast<uint64_t>(inst.imm) >= insts_.size()) {
                vpprof_fatal("program '", name_, "': control target ",
                             inst.imm, " out of range at ", i);
            }
        }
        if (inst.op == Opcode::Halt)
            has_halt = true;
    }
    if (!has_halt)
        vpprof_fatal("program '", name_, "' has no halt instruction");
}

size_t
Program::countValueProducers() const
{
    size_t n = 0;
    for (const auto &inst : insts_)
        n += writesRegister(inst.op) ? 1 : 0;
    return n;
}

size_t
Program::countTagged() const
{
    size_t n = 0;
    for (const auto &inst : insts_)
        n += inst.directive != Directive::None ? 1 : 0;
    return n;
}

void
Program::clearDirectives()
{
    for (auto &inst : insts_)
        inst.directive = Directive::None;
}

namespace
{

/** Render a register id as rN or fN. */
std::string
regName(RegId r)
{
    std::ostringstream os;
    if (r < kFpBase)
        os << 'r' << unsigned(r);
    else
        os << 'f' << unsigned(r - kFpBase);
    return os.str();
}

} // namespace

std::string
Program::disassemble() const
{
    std::ostringstream os;
    for (size_t i = 0; i < insts_.size(); ++i) {
        auto label = labels_.find(i);
        if (label != labels_.end())
            os << label->second << ":\n";
        const Instruction &inst = insts_[i];
        os << "  " << i << ":\t" << mnemonic(inst.op);
        unsigned srcs = numSources(inst.op);
        if (writesRegister(inst.op))
            os << ' ' << regName(inst.dest) << ',';
        if (srcs >= 1)
            os << ' ' << regName(inst.src1) << ',';
        if (srcs >= 2)
            os << ' ' << regName(inst.src2) << ',';
        os << ' ' << inst.imm;
        if (inst.directive != Directive::None)
            os << "\t!" << directiveName(inst.directive);
        os << '\n';
    }
    return os.str();
}

} // namespace vpprof
