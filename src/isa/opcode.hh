/**
 * @file
 * The vpprof mini-ISA opcode set and its static traits.
 *
 * The ISA is a small load/store RISC machine rich enough to express the
 * nine SPEC95-like workloads: integer ALU ops (register and immediate
 * forms), 64-bit word-addressed loads/stores, IEEE double FP ops, and
 * compare-and-branch control flow with call/return.
 *
 * Traits answer the questions the paper's measurements need: does an
 * instruction write a destination register (only those participate in
 * value prediction), and which Table 2.1 category does it belong to
 * (integer ALU / integer load / FP computation / FP load)?
 */

#ifndef VPPROF_ISA_OPCODE_HH
#define VPPROF_ISA_OPCODE_HH

#include <cstdint>
#include <string_view>

namespace vpprof
{

enum class Opcode : uint8_t
{
    // Integer ALU, register-register.
    Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Sar, Slt, Sltu,
    // Integer ALU, register-immediate.
    Addi, Subi, Muli, Divi, Remi, Andi, Ori, Xori, Shli, Shri, Sari, Slti,
    // Register moves and constants.
    Mov, Movi,
    // Integer memory: Ld rd, [rs1 + imm]; St [rs1 + imm], rs2.
    Ld, St,
    // Floating point (operands are FP registers holding doubles).
    Fadd, Fsub, Fmul, Fdiv, Fmov, Fneg, Fabs, Fmin, Fmax, Fsqrt,
    // FP/int conversion: Itof fd, rs1; Ftoi rd, fs1 (truncating).
    Itof, Ftoi,
    // FP memory: Fld fd, [rs1 + imm]; Fst [rs1 + imm], fs2.
    Fld, Fst,
    // Control flow. Branch targets are absolute instruction indices
    // carried in imm. Fblt compares two FP registers.
    Beq, Bne, Blt, Bge, Bltu, Fblt, Jmp,
    // Call saves the return index into the dest register (conventionally
    // the link register); JmpR jumps to the index held in src1.
    Call, JmpR,
    Nop, Halt,

    NumOpcodes
};

/** Table 2.1's instruction categories, plus the non-producing kinds. */
enum class OpClass : uint8_t
{
    IntAlu,   ///< integer ALU producing a register value
    IntLoad,  ///< integer load
    FpAlu,    ///< FP computation producing a register value
    FpLoad,   ///< FP load
    Store,    ///< memory store (no destination register)
    Control,  ///< branches, jumps, call/return
    Other     ///< Nop/Halt
};

/** Number of source register operands (0..2) read by an opcode. */
unsigned numSources(Opcode op);

/** True when the opcode writes a destination register. */
bool writesRegister(Opcode op);

/** True for Ld/Fld. */
bool isLoad(Opcode op);

/** True for St/Fst. */
bool isStore(Opcode op);

/** True when destination and sources are FP registers. */
bool isFp(Opcode op);

/** True for all control-flow opcodes (branches, jumps, call). */
bool isControl(Opcode op);

/** True for conditional branches only. */
bool isConditionalBranch(Opcode op);

/** The Table 2.1 category of an opcode. */
OpClass classOf(Opcode op);

/** Mnemonic string, e.g. "addi". */
std::string_view mnemonic(Opcode op);

} // namespace vpprof

#endif // VPPROF_ISA_OPCODE_HH
