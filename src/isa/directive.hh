/**
 * @file
 * Value-predictability opcode directives (Section 3.2 of the paper).
 *
 * The compiler inserts one of two directives into the opcode of each
 * instruction it classifies as value-predictable: "last-value" for
 * instructions that tend to repeat their most recent outcome, or
 * "stride" for instructions whose outcomes advance by a constant delta.
 * An untagged instruction is not recommended for value prediction.
 */

#ifndef VPPROF_ISA_DIRECTIVE_HH
#define VPPROF_ISA_DIRECTIVE_HH

#include <cstdint>
#include <string_view>

namespace vpprof
{

enum class Directive : uint8_t
{
    None,      ///< not recommended for value prediction (the default)
    LastValue, ///< tends to repeat its last outcome value
    Stride     ///< tends to exhibit non-zero stride patterns
};

/** Printable name of a directive. */
constexpr std::string_view
directiveName(Directive d)
{
    switch (d) {
      case Directive::None: return "none";
      case Directive::LastValue: return "last-value";
      case Directive::Stride: return "stride";
    }
    return "?";
}

} // namespace vpprof

#endif // VPPROF_ISA_DIRECTIVE_HH
