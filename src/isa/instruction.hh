/**
 * @file
 * The static instruction word of the vpprof mini-ISA.
 */

#ifndef VPPROF_ISA_INSTRUCTION_HH
#define VPPROF_ISA_INSTRUCTION_HH

#include <cstdint>

#include "isa/directive.hh"
#include "isa/opcode.hh"

namespace vpprof
{

/**
 * Register identifier. The register file is unified: ids 0..31 are the
 * integer registers r0..r31 (r0 reads as constant zero and ignores
 * writes), ids 32..63 are the FP registers f0..f31 holding IEEE doubles.
 */
using RegId = uint8_t;

constexpr RegId kNumIntRegs = 32;
constexpr RegId kNumFpRegs = 32;
constexpr RegId kNumRegs = kNumIntRegs + kNumFpRegs;

/** The always-zero integer register. */
constexpr RegId kZeroReg = 0;

/** First FP register id; FP register i is kFpBase + i. */
constexpr RegId kFpBase = kNumIntRegs;

/** Conventional link register for Call/JmpR (r31). */
constexpr RegId kLinkReg = 31;

/** Conventional stack pointer (r30). */
constexpr RegId kStackReg = 30;

/**
 * One static instruction.
 *
 * Field use per opcode family:
 *  - ALU reg-reg:  dest, src1, src2
 *  - ALU reg-imm:  dest, src1, imm
 *  - Movi:         dest, imm
 *  - Ld/Fld:       dest, src1 (base), imm (offset); address = R[src1]+imm
 *  - St/Fst:       src1 (base), src2 (value), imm (offset)
 *  - branches:     src1, src2 compared; imm = absolute target index
 *  - Jmp:          imm = target index
 *  - Call:         dest = link register receiving pc+1; imm = target
 *  - JmpR:         src1 holds the target index
 *
 * The directive field is the compiler-inserted value-predictability hint
 * (Section 3.2); the first compilation phase leaves it at None.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegId dest = 0;
    RegId src1 = 0;
    RegId src2 = 0;
    int64_t imm = 0;
    Directive directive = Directive::None;
};

} // namespace vpprof

#endif // VPPROF_ISA_INSTRUCTION_HH
