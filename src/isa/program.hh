/**
 * @file
 * A static program: named instruction sequence plus label metadata.
 */

#ifndef VPPROF_ISA_PROGRAM_HH
#define VPPROF_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace vpprof
{

/**
 * A program in the vpprof mini-ISA.
 *
 * The instruction index doubles as the instruction address (the "pc" in
 * trace records and profile images), so a program's addresses are stable
 * across runs — the property the paper's cross-run correlation study
 * relies on.
 */
class Program
{
  public:
    Program() = default;

    /** @param name Human-readable program name. */
    explicit Program(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Append an instruction; returns its address. */
    uint64_t
    append(const Instruction &inst)
    {
        insts_.push_back(inst);
        return insts_.size() - 1;
    }

    size_t size() const { return insts_.size(); }
    bool empty() const { return insts_.empty(); }

    const Instruction &at(uint64_t addr) const;
    Instruction &at(uint64_t addr);

    const std::vector<Instruction> &instructions() const { return insts_; }

    /** Record a label for disassembly/debugging. */
    void addLabel(const std::string &label, uint64_t addr);

    /** Labels by address (for disassembly). */
    const std::map<uint64_t, std::string> &labels() const
    {
        return labels_;
    }

    /**
     * Structural validation: register ids in range, branch/jump targets
     * inside the program, positive size, reachable Halt. Calls
     * vpprof_fatal on violation (a malformed program is a user error).
     */
    void validate() const;

    /** Count of static instructions that write a destination register. */
    size_t countValueProducers() const;

    /** Count of static instructions carrying a non-None directive. */
    size_t countTagged() const;

    /** Reset every directive to None (undo a compiler annotation pass). */
    void clearDirectives();

    /** Disassemble to text, one instruction per line. */
    std::string disassemble() const;

  private:
    std::string name_;
    std::vector<Instruction> insts_;
    std::map<uint64_t, std::string> labels_;
};

} // namespace vpprof

#endif // VPPROF_ISA_PROGRAM_HH
