#include "isa/opcode.hh"

#include "common/logging.hh"

namespace vpprof
{

unsigned
numSources(Opcode op)
{
    switch (op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
      case Opcode::Shr: case Opcode::Sar: case Opcode::Slt:
      case Opcode::Sltu:
      case Opcode::Fadd: case Opcode::Fsub: case Opcode::Fmul:
      case Opcode::Fdiv: case Opcode::Fmin: case Opcode::Fmax:
      case Opcode::St: case Opcode::Fst:
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Bltu: case Opcode::Fblt:
        return 2;
      case Opcode::Addi: case Opcode::Subi: case Opcode::Muli:
      case Opcode::Divi: case Opcode::Remi: case Opcode::Andi:
      case Opcode::Ori: case Opcode::Xori: case Opcode::Shli:
      case Opcode::Shri: case Opcode::Sari: case Opcode::Slti:
      case Opcode::Mov: case Opcode::Ld: case Opcode::Fld:
      case Opcode::Fmov: case Opcode::Fneg: case Opcode::Fabs:
      case Opcode::Fsqrt: case Opcode::Itof: case Opcode::Ftoi:
      case Opcode::JmpR:
        return 1;
      case Opcode::Movi: case Opcode::Jmp: case Opcode::Call:
      case Opcode::Nop: case Opcode::Halt:
        return 0;
      case Opcode::NumOpcodes:
        break;
    }
    vpprof_panic("numSources: bad opcode");
}

bool
writesRegister(Opcode op)
{
    switch (op) {
      case Opcode::St: case Opcode::Fst:
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Bltu: case Opcode::Fblt:
      case Opcode::Jmp: case Opcode::JmpR:
      case Opcode::Nop: case Opcode::Halt:
        return false;
      default:
        return true;
    }
}

bool
isLoad(Opcode op)
{
    return op == Opcode::Ld || op == Opcode::Fld;
}

bool
isStore(Opcode op)
{
    return op == Opcode::St || op == Opcode::Fst;
}

bool
isFp(Opcode op)
{
    switch (op) {
      case Opcode::Fadd: case Opcode::Fsub: case Opcode::Fmul:
      case Opcode::Fdiv: case Opcode::Fmov: case Opcode::Fneg:
      case Opcode::Fabs: case Opcode::Fmin: case Opcode::Fmax:
      case Opcode::Fsqrt: case Opcode::Fld: case Opcode::Fst:
      case Opcode::Itof: case Opcode::Fblt:
        return true;
      default:
        return false;
    }
}

bool
isControl(Opcode op)
{
    switch (op) {
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Bltu: case Opcode::Fblt:
      case Opcode::Jmp: case Opcode::Call: case Opcode::JmpR:
        return true;
      default:
        return false;
    }
}

bool
isConditionalBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Bltu: case Opcode::Fblt:
        return true;
      default:
        return false;
    }
}

OpClass
classOf(Opcode op)
{
    if (op == Opcode::Ld)
        return OpClass::IntLoad;
    if (op == Opcode::Fld)
        return OpClass::FpLoad;
    if (isStore(op))
        return OpClass::Store;
    if (isControl(op)) {
        // Call writes a register but is classified as control; its link
        // value is still eligible for value prediction.
        return OpClass::Control;
    }
    if (op == Opcode::Nop || op == Opcode::Halt)
        return OpClass::Other;
    if (isFp(op))
        return OpClass::FpAlu;
    return OpClass::IntAlu;
}

std::string_view
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Sar: return "sar";
      case Opcode::Slt: return "slt";
      case Opcode::Sltu: return "sltu";
      case Opcode::Addi: return "addi";
      case Opcode::Subi: return "subi";
      case Opcode::Muli: return "muli";
      case Opcode::Divi: return "divi";
      case Opcode::Remi: return "remi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Shli: return "shli";
      case Opcode::Shri: return "shri";
      case Opcode::Sari: return "sari";
      case Opcode::Slti: return "slti";
      case Opcode::Mov: return "mov";
      case Opcode::Movi: return "movi";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Fadd: return "fadd";
      case Opcode::Fsub: return "fsub";
      case Opcode::Fmul: return "fmul";
      case Opcode::Fdiv: return "fdiv";
      case Opcode::Fmov: return "fmov";
      case Opcode::Fneg: return "fneg";
      case Opcode::Fabs: return "fabs";
      case Opcode::Fmin: return "fmin";
      case Opcode::Fmax: return "fmax";
      case Opcode::Fsqrt: return "fsqrt";
      case Opcode::Itof: return "itof";
      case Opcode::Ftoi: return "ftoi";
      case Opcode::Fld: return "fld";
      case Opcode::Fst: return "fst";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Bltu: return "bltu";
      case Opcode::Fblt: return "fblt";
      case Opcode::Jmp: return "jmp";
      case Opcode::Call: return "call";
      case Opcode::JmpR: return "jmpr";
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
      case Opcode::NumOpcodes: break;
    }
    vpprof_panic("mnemonic: bad opcode");
}

} // namespace vpprof
