#include "isa/program_builder.hh"

#include "common/logging.hh"

namespace vpprof
{

ProgramBuilder::ProgramBuilder(std::string name)
    : program_(std::move(name))
{
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    if (labels_.count(name))
        vpprof_fatal("duplicate label '", name, "' in ", program_.name());
    labels_[name] = program_.size();
    program_.addLabel(name, program_.size());
    return *this;
}

ProgramBuilder &
ProgramBuilder::emit3(Opcode op, RegId d, RegId a, RegId b)
{
    Instruction inst;
    inst.op = op;
    inst.dest = d;
    inst.src1 = a;
    inst.src2 = b;
    program_.append(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::emitImm(Opcode op, RegId d, RegId a, int64_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.dest = d;
    inst.src1 = a;
    inst.imm = imm;
    program_.append(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::emitBranch(Opcode op, RegId a, RegId b,
                           const std::string &target)
{
    Instruction inst;
    inst.op = op;
    inst.src1 = a;
    inst.src2 = b;
    auto it = labels_.find(target);
    if (it != labels_.end())
        inst.imm = static_cast<int64_t>(it->second);
    else
        fixups_.emplace_back(program_.size(), target);
    program_.append(inst);
    return *this;
}

#define VPPROF_DEF3(name, op) \
    ProgramBuilder &ProgramBuilder::name(RegId d, RegId a, RegId b) \
    { return emit3(Opcode::op, d, a, b); }

VPPROF_DEF3(add, Add)
VPPROF_DEF3(sub, Sub)
VPPROF_DEF3(mul, Mul)
VPPROF_DEF3(div, Div)
VPPROF_DEF3(rem, Rem)
VPPROF_DEF3(and_, And)
VPPROF_DEF3(or_, Or)
VPPROF_DEF3(xor_, Xor)
VPPROF_DEF3(shl, Shl)
VPPROF_DEF3(shr, Shr)
VPPROF_DEF3(sar, Sar)
VPPROF_DEF3(slt, Slt)
VPPROF_DEF3(sltu, Sltu)
VPPROF_DEF3(fadd, Fadd)
VPPROF_DEF3(fsub, Fsub)
VPPROF_DEF3(fmul, Fmul)
VPPROF_DEF3(fdiv, Fdiv)
VPPROF_DEF3(fmin, Fmin)
VPPROF_DEF3(fmax, Fmax)

#undef VPPROF_DEF3

#define VPPROF_DEFIMM(name, op) \
    ProgramBuilder &ProgramBuilder::name(RegId d, RegId a, int64_t imm) \
    { return emitImm(Opcode::op, d, a, imm); }

VPPROF_DEFIMM(addi, Addi)
VPPROF_DEFIMM(subi, Subi)
VPPROF_DEFIMM(muli, Muli)
VPPROF_DEFIMM(divi, Divi)
VPPROF_DEFIMM(remi, Remi)
VPPROF_DEFIMM(andi, Andi)
VPPROF_DEFIMM(ori, Ori)
VPPROF_DEFIMM(xori, Xori)
VPPROF_DEFIMM(shli, Shli)
VPPROF_DEFIMM(shri, Shri)
VPPROF_DEFIMM(sari, Sari)
VPPROF_DEFIMM(slti, Slti)

#undef VPPROF_DEFIMM

ProgramBuilder &
ProgramBuilder::mov(RegId d, RegId a)
{
    return emitImm(Opcode::Mov, d, a, 0);
}

ProgramBuilder &
ProgramBuilder::movi(RegId d, int64_t imm)
{
    return emitImm(Opcode::Movi, d, 0, imm);
}

ProgramBuilder &
ProgramBuilder::ld(RegId d, RegId base, int64_t off)
{
    return emitImm(Opcode::Ld, d, base, off);
}

ProgramBuilder &
ProgramBuilder::st(RegId base, RegId value, int64_t off)
{
    Instruction inst;
    inst.op = Opcode::St;
    inst.src1 = base;
    inst.src2 = value;
    inst.imm = off;
    program_.append(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::fmov(RegId d, RegId a)
{
    return emitImm(Opcode::Fmov, d, a, 0);
}

ProgramBuilder &
ProgramBuilder::fneg(RegId d, RegId a)
{
    return emitImm(Opcode::Fneg, d, a, 0);
}

ProgramBuilder &
ProgramBuilder::fabs_(RegId d, RegId a)
{
    return emitImm(Opcode::Fabs, d, a, 0);
}

ProgramBuilder &
ProgramBuilder::fsqrt(RegId d, RegId a)
{
    return emitImm(Opcode::Fsqrt, d, a, 0);
}

ProgramBuilder &
ProgramBuilder::itof(RegId fd, RegId rs)
{
    return emitImm(Opcode::Itof, fd, rs, 0);
}

ProgramBuilder &
ProgramBuilder::ftoi(RegId rd, RegId fs)
{
    return emitImm(Opcode::Ftoi, rd, fs, 0);
}

ProgramBuilder &
ProgramBuilder::fld(RegId d, RegId base, int64_t off)
{
    return emitImm(Opcode::Fld, d, base, off);
}

ProgramBuilder &
ProgramBuilder::fst(RegId base, RegId value, int64_t off)
{
    Instruction inst;
    inst.op = Opcode::Fst;
    inst.src1 = base;
    inst.src2 = value;
    inst.imm = off;
    program_.append(inst);
    return *this;
}

#define VPPROF_DEFBR(name, op) \
    ProgramBuilder & \
    ProgramBuilder::name(RegId a, RegId b, const std::string &target) \
    { return emitBranch(Opcode::op, a, b, target); }

VPPROF_DEFBR(beq, Beq)
VPPROF_DEFBR(bne, Bne)
VPPROF_DEFBR(blt, Blt)
VPPROF_DEFBR(bge, Bge)
VPPROF_DEFBR(bltu, Bltu)
VPPROF_DEFBR(fblt, Fblt)

#undef VPPROF_DEFBR

ProgramBuilder &
ProgramBuilder::jmp(const std::string &target)
{
    return emitBranch(Opcode::Jmp, 0, 0, target);
}

ProgramBuilder &
ProgramBuilder::call(const std::string &target, RegId link)
{
    Instruction inst;
    inst.op = Opcode::Call;
    inst.dest = link;
    auto it = labels_.find(target);
    if (it != labels_.end())
        inst.imm = static_cast<int64_t>(it->second);
    else
        fixups_.emplace_back(program_.size(), target);
    program_.append(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::ret(RegId link)
{
    Instruction inst;
    inst.op = Opcode::JmpR;
    inst.src1 = link;
    program_.append(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::nop()
{
    Instruction inst;
    inst.op = Opcode::Nop;
    program_.append(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::halt()
{
    Instruction inst;
    inst.op = Opcode::Halt;
    program_.append(inst);
    return *this;
}

Program
ProgramBuilder::build()
{
    if (built_)
        vpprof_panic("ProgramBuilder::build called twice for ",
                     program_.name());
    built_ = true;
    for (const auto &[addr, name] : fixups_) {
        auto it = labels_.find(name);
        if (it == labels_.end())
            vpprof_fatal("undefined label '", name, "' in ",
                         program_.name());
        program_.at(addr).imm = static_cast<int64_t>(it->second);
    }
    program_.validate();
    return std::move(program_);
}

} // namespace vpprof
