#include "compiler/directive_inserter.hh"

namespace vpprof
{

InsertionStats
insertDirectives(Program &program, const ProfileImage &image,
                 const InserterConfig &config)
{
    InsertionStats stats;
    for (size_t pc = 0; pc < program.size(); ++pc) {
        Instruction &inst = program.at(pc);
        if (!writesRegister(inst.op))
            continue;
        ++stats.producers;
        inst.directive = Directive::None;

        const PcProfile *prof = image.find(pc);
        if (!prof)
            continue;
        ++stats.profiled;

        inst.directive = classifyDirective(*prof, config.rule());
        if (inst.directive == Directive::Stride)
            ++stats.taggedStride;
        else if (inst.directive == Directive::LastValue)
            ++stats.taggedLastValue;
    }
    return stats;
}

} // namespace vpprof
