/**
 * @file
 * Control-flow-graph construction and basic-block schedule analysis —
 * the groundwork for the paper's second future-work item: "the effect
 * of the profiling information on the scheduling of instructions
 * within a basic block" (Section 6).
 *
 * A basic block's minimum schedule length (with unlimited units) is
 * the longest dependence chain inside it. When an instruction carries
 * a value-predictability directive, a VP-aware scheduler can treat its
 * consumers as independent — the chain through it collapses. The
 * difference between the plain and collapsed chain lengths is exactly
 * the scheduling freedom profiling buys in that block.
 */

#ifndef VPPROF_COMPILER_CFG_HH
#define VPPROF_COMPILER_CFG_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace vpprof
{

/** A maximal straight-line region [first, last] of instructions. */
struct BasicBlock
{
    uint64_t first = 0;   ///< address of the leader
    uint64_t last = 0;    ///< address of the final instruction
    /** Successor block leaders (empty for halt / indirect-jump exits). */
    std::vector<uint64_t> successors;
    /** Terminates in a JmpR (statically unknown target). */
    bool indirectExit = false;

    size_t size() const { return last - first + 1; }
};

/** Basic blocks of a program, in address order. */
class ControlFlowGraph
{
  public:
    /** Partition a validated program into basic blocks. */
    explicit ControlFlowGraph(const Program &program);

    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** Index of the block containing an address. */
    size_t blockOf(uint64_t pc) const;

  private:
    std::vector<BasicBlock> blocks_;
    std::vector<size_t> blockIndex_;  ///< per-pc block index
};

/** Dependence-chain metrics of one basic block. */
struct BlockSchedule
{
    uint64_t leader = 0;
    size_t instructions = 0;
    size_t producers = 0;      ///< register-writing instructions
    size_t tagged = 0;         ///< carrying a non-None directive
    /**
     * Longest register/memory dependence chain in the block = the
     * minimum schedule length on an ideal machine.
     */
    size_t chainLength = 0;
    /**
     * The same chain with edges out of directive-tagged producers
     * collapsed (their consumers can issue speculatively).
     */
    size_t collapsedChainLength = 0;
};

/**
 * Analyze one block of a program. Memory dependencies are handled
 * conservatively: every load depends on the closest preceding store
 * in the block.
 */
BlockSchedule analyzeBlock(const Program &program,
                           const BasicBlock &block);

/** Analyze every block of a program. */
std::vector<BlockSchedule> analyzeSchedules(const Program &program);

} // namespace vpprof

#endif // VPPROF_COMPILER_CFG_HH
