#include "compiler/cfg.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace vpprof
{

ControlFlowGraph::ControlFlowGraph(const Program &program)
{
    if (program.empty())
        vpprof_panic("ControlFlowGraph of an empty program");

    // Leaders: entry, every control target, every fall-through
    // successor of a control instruction or halt.
    std::set<uint64_t> leaders;
    leaders.insert(0);
    for (uint64_t pc = 0; pc < program.size(); ++pc) {
        const Instruction &inst = program.at(pc);
        bool ends_block = isControl(inst.op) || inst.op == Opcode::Halt;
        if (!ends_block)
            continue;
        if (pc + 1 < program.size())
            leaders.insert(pc + 1);
        if (isConditionalBranch(inst.op) || inst.op == Opcode::Jmp ||
            inst.op == Opcode::Call) {
            leaders.insert(static_cast<uint64_t>(inst.imm));
        }
    }

    // Materialize blocks in address order.
    std::vector<uint64_t> sorted(leaders.begin(), leaders.end());
    blockIndex_.assign(program.size(), 0);
    for (size_t i = 0; i < sorted.size(); ++i) {
        BasicBlock block;
        block.first = sorted[i];
        block.last = (i + 1 < sorted.size() ? sorted[i + 1]
                                            : program.size()) - 1;

        const Instruction &term = program.at(block.last);
        if (isConditionalBranch(term.op)) {
            block.successors.push_back(
                static_cast<uint64_t>(term.imm));
            if (block.last + 1 < program.size())
                block.successors.push_back(block.last + 1);
        } else if (term.op == Opcode::Jmp) {
            block.successors.push_back(
                static_cast<uint64_t>(term.imm));
        } else if (term.op == Opcode::Call) {
            block.successors.push_back(
                static_cast<uint64_t>(term.imm));
        } else if (term.op == Opcode::JmpR) {
            block.indirectExit = true;
        } else if (term.op != Opcode::Halt &&
                   block.last + 1 < program.size()) {
            // Fell into the next leader without a terminator.
            block.successors.push_back(block.last + 1);
        }

        for (uint64_t pc = block.first; pc <= block.last; ++pc)
            blockIndex_[pc] = blocks_.size();
        blocks_.push_back(std::move(block));
    }
}

size_t
ControlFlowGraph::blockOf(uint64_t pc) const
{
    if (pc >= blockIndex_.size())
        vpprof_panic("blockOf: pc ", pc, " out of range");
    return blockIndex_[pc];
}

BlockSchedule
analyzeBlock(const Program &program, const BasicBlock &block)
{
    BlockSchedule sched;
    sched.leader = block.first;
    sched.instructions = block.size();

    // depth[r]: chain depth of the last in-block writer of register r
    // under the plain model; cdepth[r]: same with tagged producers'
    // out-edges collapsed.
    std::vector<size_t> depth(kNumRegs, 0), cdepth(kNumRegs, 0);
    size_t store_depth = 0, store_cdepth = 0;
    bool store_seen = false;

    for (uint64_t pc = block.first; pc <= block.last; ++pc) {
        const Instruction &inst = program.at(pc);

        size_t in_depth = 0, in_cdepth = 0;
        unsigned srcs = numSources(inst.op);
        if (srcs >= 1 && inst.src1 != kZeroReg) {
            in_depth = std::max(in_depth, depth[inst.src1]);
            in_cdepth = std::max(in_cdepth, cdepth[inst.src1]);
        }
        if (srcs >= 2 && inst.src2 != kZeroReg) {
            in_depth = std::max(in_depth, depth[inst.src2]);
            in_cdepth = std::max(in_cdepth, cdepth[inst.src2]);
        }
        if (isLoad(inst.op) && store_seen) {
            in_depth = std::max(in_depth, store_depth);
            in_cdepth = std::max(in_cdepth, store_cdepth);
        }

        size_t my_depth = in_depth + 1;
        size_t my_cdepth = in_cdepth + 1;
        sched.chainLength = std::max(sched.chainLength, my_depth);
        sched.collapsedChainLength =
            std::max(sched.collapsedChainLength, my_cdepth);

        if (writesRegister(inst.op)) {
            ++sched.producers;
            bool tagged = inst.directive != Directive::None;
            sched.tagged += tagged ? 1 : 0;
            depth[inst.dest] = my_depth;
            // A VP-aware scheduler treats consumers of a tagged
            // producer as ready immediately.
            cdepth[inst.dest] = tagged ? 0 : my_cdepth;
            depth[kZeroReg] = 0;
            cdepth[kZeroReg] = 0;
        }
        if (isStore(inst.op)) {
            store_seen = true;
            store_depth = my_depth;
            store_cdepth = my_cdepth;
        }
    }
    return sched;
}

std::vector<BlockSchedule>
analyzeSchedules(const Program &program)
{
    ControlFlowGraph cfg(program);
    std::vector<BlockSchedule> schedules;
    schedules.reserve(cfg.blocks().size());
    for (const BasicBlock &block : cfg.blocks())
        schedules.push_back(analyzeBlock(program, block));
    return schedules;
}

} // namespace vpprof
