/**
 * @file
 * Phase #3 of the methodology (Figure 3.1): the compiler re-reads the
 * profile image and a user-supplied threshold and inserts "stride" /
 * "last-value" directives into instruction opcodes. No scheduling or
 * code motion is performed — only the directive field changes.
 *
 * Classification rule (Section 3.2):
 *  - prediction accuracy >= accuracy threshold  -> tagged predictable;
 *  - tagged + stride efficiency ratio > stride threshold -> "stride",
 *    otherwise -> "last-value";
 *  - everything else keeps Directive::None (not recommended).
 */

#ifndef VPPROF_COMPILER_DIRECTIVE_INSERTER_HH
#define VPPROF_COMPILER_DIRECTIVE_INSERTER_HH

#include <cstdint>

#include "isa/program.hh"
#include "profile/profile_image.hh"

namespace vpprof
{

/** Thresholds controlling directive insertion. */
struct InserterConfig
{
    /**
     * Prediction-accuracy threshold in percent: instructions at or
     * above it are tagged value-predictable (the paper sweeps
     * 90/80/70/60/50).
     */
    double accuracyThresholdPercent = 90.0;

    /**
     * Stride-efficiency threshold in percent: a tagged instruction
     * whose stride efficiency ratio exceeds it is tagged "stride",
     * otherwise "last-value" (the paper's heuristic uses 50%).
     */
    double strideThresholdPercent = 50.0;

    /**
     * Minimum profiled prediction attempts before an instruction may be
     * tagged; avoids classifying on a single observation.
     */
    uint64_t minAttempts = 4;

    /** The equivalent profile-layer classification rule. */
    DirectiveRule
    rule() const
    {
        return DirectiveRule{accuracyThresholdPercent,
                             strideThresholdPercent, minAttempts};
    }
};

/** Outcome counts of a directive-insertion pass. */
struct InsertionStats
{
    size_t producers = 0;        ///< static value-producing instructions
    size_t profiled = 0;         ///< of those, present in the image
    size_t taggedStride = 0;     ///< tagged with the "stride" directive
    size_t taggedLastValue = 0;  ///< tagged with "last-value"

    size_t tagged() const { return taggedStride + taggedLastValue; }
};

/**
 * Annotate a program in place from a profile image. Pre-existing
 * directives are overwritten (the pass is idempotent for a given image
 * and config).
 */
InsertionStats insertDirectives(Program &program,
                                const ProfileImage &image,
                                const InserterConfig &config = {});

} // namespace vpprof

#endif // VPPROF_COMPILER_DIRECTIVE_INSERTER_HH
