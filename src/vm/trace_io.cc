#include "vm/trace_io.hh"

#include <cstring>

#include "common/logging.hh"

namespace vpprof
{

namespace
{

constexpr char kMagicPrefix[7] = {'V', 'P', 'T', 'R', 'A', 'C', 'E'};
constexpr char kVersion = '1';
constexpr size_t kHeaderBytes = 16;
constexpr size_t kRecordBytes = 8 + 8 + 1 + 1 + 1 + 1 + 8 + 1 + 2 + 8;

/** Serialize one record into a fixed-width buffer. */
void
encode(const TraceRecord &rec, char *buf)
{
    size_t off = 0;
    auto put = [&](const void *p, size_t n) {
        std::memcpy(buf + off, p, n);
        off += n;
    };
    put(&rec.seq, 8);
    put(&rec.pc, 8);
    uint8_t op = static_cast<uint8_t>(rec.op);
    put(&op, 1);
    uint8_t dir = static_cast<uint8_t>(rec.directive);
    put(&dir, 1);
    uint8_t flags = (rec.writesReg ? 1 : 0) | (rec.isMem ? 2 : 0);
    put(&flags, 1);
    put(&rec.dest, 1);
    put(&rec.value, 8);
    put(&rec.numSrcs, 1);
    put(rec.srcs.data(), 2);
    put(&rec.memAddr, 8);
}

/** Deserialize one record from a fixed-width buffer. */
void
decode(const char *buf, TraceRecord &rec)
{
    size_t off = 0;
    auto get = [&](void *p, size_t n) {
        std::memcpy(p, buf + off, n);
        off += n;
    };
    get(&rec.seq, 8);
    get(&rec.pc, 8);
    uint8_t op = 0;
    get(&op, 1);
    rec.op = static_cast<Opcode>(op);
    uint8_t dir = 0;
    get(&dir, 1);
    rec.directive = static_cast<Directive>(dir);
    uint8_t flags = 0;
    get(&flags, 1);
    rec.writesReg = (flags & 1) != 0;
    rec.isMem = (flags & 2) != 0;
    get(&rec.dest, 1);
    get(&rec.value, 8);
    get(&rec.numSrcs, 1);
    get(rec.srcs.data(), 2);
    get(&rec.memAddr, 8);
}

} // namespace

const char *
traceIoStatusName(TraceIoStatus status)
{
    switch (status) {
      case TraceIoStatus::Ok: return "ok";
      case TraceIoStatus::IoError: return "io-error";
      case TraceIoStatus::ShortHeader: return "short-header";
      case TraceIoStatus::BadMagic: return "bad-magic";
      case TraceIoStatus::VersionMismatch: return "version-mismatch";
      case TraceIoStatus::Truncated: return "truncated";
    }
    return "unknown";
}

TraceFileWriter::TraceFileWriter(const std::string &path)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_)
        vpprof_fatal("cannot create trace file: ", path);
    out_.write(kMagicPrefix, sizeof(kMagicPrefix));
    out_.write(&kVersion, 1);
    uint64_t placeholder = 0;
    out_.write(reinterpret_cast<const char *>(&placeholder), 8);
}

TraceFileWriter::~TraceFileWriter()
{
    if (!closed_)
        close();
}

void
TraceFileWriter::record(const TraceRecord &rec)
{
    if (closed_)
        vpprof_panic("TraceFileWriter::record after close");
    char buf[kRecordBytes];
    encode(rec, buf);
    out_.write(buf, sizeof(buf));
    ++count_;
}

void
TraceFileWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    out_.seekp(sizeof(kMagicPrefix) + 1);
    out_.write(reinterpret_cast<const char *>(&count_), 8);
    out_.close();
    if (!out_)
        vpprof_fatal("error finalizing trace file: ", path_);
}

TraceFileReader::TraceFileReader(const std::string &path, Unchecked)
    : in_(path, std::ios::binary)
{
}

TraceIoStatus
TraceFileReader::validate(const std::string &path)
{
    if (!in_)
        return TraceIoStatus::IoError;
    char magic[sizeof(kMagicPrefix)];
    in_.read(magic, sizeof(magic));
    char version = 0;
    in_.read(&version, 1);
    if (!in_)
        return TraceIoStatus::ShortHeader;
    if (std::memcmp(magic, kMagicPrefix, sizeof(kMagicPrefix)) != 0)
        return TraceIoStatus::BadMagic;
    if (version != kVersion)
        return TraceIoStatus::VersionMismatch;
    in_.read(reinterpret_cast<char *>(&count_), 8);
    if (!in_)
        return TraceIoStatus::ShortHeader;

    // The payload must hold exactly the records the header promises:
    // fewer means a truncated capture (e.g. a writer that died before
    // close()), more means trailing garbage. Both are data loss if
    // ignored, so both are errors, never a silent short replay.
    std::streampos pos = in_.tellg();
    in_.seekg(0, std::ios::end);
    std::streampos end = in_.tellg();
    in_.seekg(pos);
    if (!in_)
        return TraceIoStatus::IoError;
    uint64_t payload = static_cast<uint64_t>(end) - kHeaderBytes;
    if (payload != count_ * kRecordBytes)
        return TraceIoStatus::Truncated;
    return TraceIoStatus::Ok;
}

TraceFileReader::TraceFileReader(const std::string &path)
    : TraceFileReader(path, Unchecked{})
{
    switch (validate(path)) {
      case TraceIoStatus::Ok:
        return;
      case TraceIoStatus::IoError:
        vpprof_fatal("cannot open trace file: ", path);
      case TraceIoStatus::ShortHeader:
        vpprof_fatal("truncated trace header: ", path);
      case TraceIoStatus::BadMagic:
        vpprof_fatal("not a vpprof trace file: ", path);
      case TraceIoStatus::VersionMismatch:
        vpprof_fatal("unsupported trace file version: ", path);
      case TraceIoStatus::Truncated:
        vpprof_fatal("truncated trace file: ", path);
    }
}

std::unique_ptr<TraceFileReader>
TraceFileReader::tryOpen(const std::string &path, TraceIoStatus *status)
{
    std::unique_ptr<TraceFileReader> reader(
        new TraceFileReader(path, Unchecked{}));
    reader->strict_ = false;
    TraceIoStatus st = reader->validate(path);
    if (status)
        *status = st;
    if (st != TraceIoStatus::Ok)
        return nullptr;
    return reader;
}

bool
TraceFileReader::next(TraceRecord &rec)
{
    if (status_ != TraceIoStatus::Ok || read_ >= count_)
        return false;
    char buf[kRecordBytes];
    in_.read(buf, sizeof(buf));
    if (!in_) {
        // validate() checked the size at open, so this only happens
        // when the file shrank underneath us mid-read.
        status_ = TraceIoStatus::Truncated;
        if (strict_)
            vpprof_fatal("truncated trace file (expected ", count_,
                         " records, got ", read_, ")");
        return false;
    }
    decode(buf, rec);
    ++read_;
    return true;
}

uint64_t
TraceFileReader::replay(TraceSink *sink)
{
    uint64_t n = 0;
    TraceRecord rec;
    while (next(rec)) {
        sink->record(rec);
        ++n;
    }
    return n;
}

} // namespace vpprof
