#include "vm/trace_io.hh"

#include <cstring>

#include "common/logging.hh"

namespace vpprof
{

namespace
{

constexpr char kMagic[8] = {'V', 'P', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr size_t kRecordBytes = 8 + 8 + 1 + 1 + 1 + 1 + 8 + 1 + 2 + 8;

/** Serialize one record into a fixed-width buffer. */
void
encode(const TraceRecord &rec, char *buf)
{
    size_t off = 0;
    auto put = [&](const void *p, size_t n) {
        std::memcpy(buf + off, p, n);
        off += n;
    };
    put(&rec.seq, 8);
    put(&rec.pc, 8);
    uint8_t op = static_cast<uint8_t>(rec.op);
    put(&op, 1);
    uint8_t dir = static_cast<uint8_t>(rec.directive);
    put(&dir, 1);
    uint8_t flags = (rec.writesReg ? 1 : 0) | (rec.isMem ? 2 : 0);
    put(&flags, 1);
    put(&rec.dest, 1);
    put(&rec.value, 8);
    put(&rec.numSrcs, 1);
    put(rec.srcs.data(), 2);
    put(&rec.memAddr, 8);
}

/** Deserialize one record from a fixed-width buffer. */
void
decode(const char *buf, TraceRecord &rec)
{
    size_t off = 0;
    auto get = [&](void *p, size_t n) {
        std::memcpy(p, buf + off, n);
        off += n;
    };
    get(&rec.seq, 8);
    get(&rec.pc, 8);
    uint8_t op = 0;
    get(&op, 1);
    rec.op = static_cast<Opcode>(op);
    uint8_t dir = 0;
    get(&dir, 1);
    rec.directive = static_cast<Directive>(dir);
    uint8_t flags = 0;
    get(&flags, 1);
    rec.writesReg = (flags & 1) != 0;
    rec.isMem = (flags & 2) != 0;
    get(&rec.dest, 1);
    get(&rec.value, 8);
    get(&rec.numSrcs, 1);
    get(rec.srcs.data(), 2);
    get(&rec.memAddr, 8);
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_)
        vpprof_fatal("cannot create trace file: ", path);
    out_.write(kMagic, sizeof(kMagic));
    uint64_t placeholder = 0;
    out_.write(reinterpret_cast<const char *>(&placeholder), 8);
}

TraceFileWriter::~TraceFileWriter()
{
    if (!closed_)
        close();
}

void
TraceFileWriter::record(const TraceRecord &rec)
{
    if (closed_)
        vpprof_panic("TraceFileWriter::record after close");
    char buf[kRecordBytes];
    encode(rec, buf);
    out_.write(buf, sizeof(buf));
    ++count_;
}

void
TraceFileWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    out_.seekp(sizeof(kMagic));
    out_.write(reinterpret_cast<const char *>(&count_), 8);
    out_.close();
    if (!out_)
        vpprof_fatal("error finalizing trace file: ", path_);
}

TraceFileReader::TraceFileReader(const std::string &path)
    : in_(path, std::ios::binary)
{
    if (!in_)
        vpprof_fatal("cannot open trace file: ", path);
    char magic[sizeof(kMagic)];
    in_.read(magic, sizeof(magic));
    if (!in_ || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        vpprof_fatal("not a vpprof trace file: ", path);
    in_.read(reinterpret_cast<char *>(&count_), 8);
    if (!in_)
        vpprof_fatal("truncated trace header: ", path);
}

bool
TraceFileReader::next(TraceRecord &rec)
{
    if (read_ >= count_)
        return false;
    char buf[kRecordBytes];
    in_.read(buf, sizeof(buf));
    if (!in_)
        vpprof_fatal("truncated trace file (expected ", count_,
                     " records, got ", read_, ")");
    decode(buf, rec);
    ++read_;
    return true;
}

uint64_t
TraceFileReader::replay(TraceSink *sink)
{
    uint64_t n = 0;
    TraceRecord rec;
    while (next(rec)) {
        sink->record(rec);
        ++n;
    }
    return n;
}

} // namespace vpprof
