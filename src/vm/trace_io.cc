#include "vm/trace_io.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unistd.h>

#include "common/checksum.hh"
#include "common/failpoint.hh"
#include "common/logging.hh"

namespace vpprof
{

namespace
{

constexpr char kMagicPrefix[7] = {'V', 'P', 'T', 'R', 'A', 'C', 'E'};
constexpr char kVersionV1 = '1';
constexpr char kVersionV2 = '2';
constexpr size_t kHeaderBytes = 16;
constexpr size_t kTrailerBytes = 8;
constexpr size_t kRecordBytes = 8 + 8 + 1 + 1 + 1 + 1 + 8 + 1 + 2 + 8;

/** Serialize one record into a fixed-width buffer. */
void
encode(const TraceRecord &rec, char *buf)
{
    size_t off = 0;
    auto put = [&](const void *p, size_t n) {
        std::memcpy(buf + off, p, n);
        off += n;
    };
    put(&rec.seq, 8);
    put(&rec.pc, 8);
    uint8_t op = static_cast<uint8_t>(rec.op);
    put(&op, 1);
    uint8_t dir = static_cast<uint8_t>(rec.directive);
    put(&dir, 1);
    uint8_t flags = (rec.writesReg ? 1 : 0) | (rec.isMem ? 2 : 0);
    put(&flags, 1);
    put(&rec.dest, 1);
    put(&rec.value, 8);
    put(&rec.numSrcs, 1);
    put(rec.srcs.data(), 2);
    put(&rec.memAddr, 8);
}

/** Deserialize one record from a fixed-width buffer. */
void
decode(const char *buf, TraceRecord &rec)
{
    size_t off = 0;
    auto get = [&](void *p, size_t n) {
        std::memcpy(p, buf + off, n);
        off += n;
    };
    get(&rec.seq, 8);
    get(&rec.pc, 8);
    uint8_t op = 0;
    get(&op, 1);
    rec.op = static_cast<Opcode>(op);
    uint8_t dir = 0;
    get(&dir, 1);
    rec.directive = static_cast<Directive>(dir);
    uint8_t flags = 0;
    get(&flags, 1);
    rec.writesReg = (flags & 1) != 0;
    rec.isMem = (flags & 2) != 0;
    get(&rec.dest, 1);
    get(&rec.value, 8);
    get(&rec.numSrcs, 1);
    get(rec.srcs.data(), 2);
    get(&rec.memAddr, 8);
}

/** Map the current errno of a failed write to a TraceIoStatus. */
TraceIoStatus
writeErrnoStatus()
{
    return errno == ENOSPC ? TraceIoStatus::NoSpace
                           : TraceIoStatus::WriteFailed;
}

} // namespace

const char *
traceIoStatusName(TraceIoStatus status)
{
    switch (status) {
      case TraceIoStatus::Ok: return "ok";
      case TraceIoStatus::IoError: return "io-error";
      case TraceIoStatus::ShortHeader: return "short-header";
      case TraceIoStatus::BadMagic: return "bad-magic";
      case TraceIoStatus::VersionMismatch: return "version-mismatch";
      case TraceIoStatus::Truncated: return "truncated";
      case TraceIoStatus::ChecksumMismatch: return "checksum-mismatch";
      case TraceIoStatus::WriteFailed: return "write-failed";
      case TraceIoStatus::NoSpace: return "no-space";
    }
    return "unknown";
}

TraceFileWriter::TraceFileWriter(const std::string &path)
    : path_(path),
      tmpPath_(path + ".tmp." + std::to_string(::getpid())),
      checksum_(kFnv1a64Seed)
{
    errno = 0;
    out_.open(tmpPath_, std::ios::binary | std::ios::trunc);
    if (!out_) {
        status_ = TraceIoStatus::IoError;
        return;
    }
    out_.write(kMagicPrefix, sizeof(kMagicPrefix));
    out_.write(&kVersionV2, 1);
    uint64_t placeholder = 0;
    out_.write(reinterpret_cast<const char *>(&placeholder), 8);
    if (!out_)
        status_ = writeErrnoStatus();
}

TraceFileWriter::~TraceFileWriter()
{
    if (!closed_ && close() != TraceIoStatus::Ok)
        vpprof_warn_limited(8, "trace file write failed (",
                            traceIoStatusName(status_), "): ", path_);
}

void
TraceFileWriter::record(const TraceRecord &rec)
{
    if (closed_)
        vpprof_panic("TraceFileWriter::record after close");
    if (status_ != TraceIoStatus::Ok)
        return;  // error latched; close() surfaces it

    char buf[kRecordBytes];
    encode(rec, buf);
    // The trailer covers the bytes we *meant* to write: an injected
    // Corrupt damages the file, not the checksum, exactly like a
    // storage-level flip — readers must catch it.
    checksum_ = fnv1a64(buf, sizeof(buf), checksum_);

    switch (FailpointRegistry::instance().fire("trace_io.write")) {
      case FailpointAction::Fail:
        status_ = TraceIoStatus::WriteFailed;
        return;
      case FailpointAction::NoSpace:
        status_ = TraceIoStatus::NoSpace;
        return;
      case FailpointAction::Corrupt:
        buf[0] = static_cast<char>(buf[0] ^ 0x5a);
        break;
      default:
        break;
    }

    errno = 0;
    out_.write(buf, sizeof(buf));
    if (!out_) {
        status_ = writeErrnoStatus();
        return;
    }
    ++count_;
}

TraceIoStatus
TraceFileWriter::close()
{
    if (closed_)
        return status_;
    closed_ = true;

    if (status_ == TraceIoStatus::Ok) {
        errno = 0;
        out_.write(reinterpret_cast<const char *>(&checksum_),
                   kTrailerBytes);
        out_.seekp(sizeof(kMagicPrefix) + 1);
        out_.write(reinterpret_cast<const char *>(&count_), 8);
        out_.flush();
        if (!out_)
            status_ = writeErrnoStatus();
    }

    if (status_ == TraceIoStatus::Ok) {
        switch (FailpointRegistry::instance().fire("trace_io.commit")) {
          case FailpointAction::Fail:
            status_ = TraceIoStatus::WriteFailed;
            break;
          case FailpointAction::NoSpace:
            status_ = TraceIoStatus::NoSpace;
            break;
          default:
            break;
        }
    }

    out_.close();
    if (status_ == TraceIoStatus::Ok && !out_)
        status_ = writeErrnoStatus();

    if (status_ == TraceIoStatus::Ok) {
        // The commit point: the complete, checksummed file replaces
        // whatever was at `path_` in one atomic step.
        errno = 0;
        if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0)
            status_ = writeErrnoStatus();
    }
    if (status_ != TraceIoStatus::Ok)
        std::remove(tmpPath_.c_str());  // never leave a torn temp
    return status_;
}

TraceFileReader::TraceFileReader(const std::string &path, Unchecked)
    : path_(path),
      in_(path, std::ios::binary),
      version_(kVersionV2)
{
}

TraceIoStatus
TraceFileReader::validate(TraceVerify verify)
{
    if (FailpointRegistry::instance().fire("trace_io.open") ==
        FailpointAction::Fail)
        return TraceIoStatus::IoError;
    if (!in_)
        return TraceIoStatus::IoError;
    char magic[sizeof(kMagicPrefix)];
    in_.read(magic, sizeof(magic));
    in_.read(&version_, 1);
    if (!in_)
        return TraceIoStatus::ShortHeader;
    if (std::memcmp(magic, kMagicPrefix, sizeof(kMagicPrefix)) != 0)
        return TraceIoStatus::BadMagic;
    if (version_ != kVersionV1 && version_ != kVersionV2)
        return TraceIoStatus::VersionMismatch;
    in_.read(reinterpret_cast<char *>(&count_), 8);
    if (!in_)
        return TraceIoStatus::ShortHeader;

    // The payload must hold exactly the records the header promises
    // (plus, for v2, the checksum trailer): fewer means a truncated
    // capture (e.g. a writer that died before close()), more means
    // trailing garbage. Both are data loss if ignored, so both are
    // errors, never a silent short replay.
    size_t overhead =
        kHeaderBytes + (version_ == kVersionV2 ? kTrailerBytes : 0);
    in_.seekg(0, std::ios::end);
    std::streampos end = in_.tellg();
    in_.seekg(kHeaderBytes);
    if (!in_)
        return TraceIoStatus::IoError;
    if (static_cast<uint64_t>(end) < overhead ||
        static_cast<uint64_t>(end) - overhead !=
            count_ * kRecordBytes)
        return TraceIoStatus::Truncated;

    if (version_ == kVersionV2 && verify == TraceVerify::Full) {
        // Stream the payload once to verify the trailer before any
        // record is handed out: a flipped bit must be a structured
        // open failure, never a silently mis-measured replay.
        uint64_t sum = kFnv1a64Seed;
        uint64_t remaining = count_ * kRecordBytes;
        char chunk[1 << 16];
        while (remaining > 0) {
            size_t step = remaining < sizeof(chunk)
                              ? static_cast<size_t>(remaining)
                              : sizeof(chunk);
            in_.read(chunk, static_cast<std::streamsize>(step));
            if (!in_)
                return TraceIoStatus::IoError;
            sum = fnv1a64(chunk, step, sum);
            remaining -= step;
        }
        uint64_t stored = 0;
        in_.read(reinterpret_cast<char *>(&stored), kTrailerBytes);
        if (!in_)
            return TraceIoStatus::IoError;
        if (stored != sum)
            return TraceIoStatus::ChecksumMismatch;
        in_.clear();
        in_.seekg(kHeaderBytes);
        if (!in_)
            return TraceIoStatus::IoError;
    }
    return TraceIoStatus::Ok;
}

TraceFileReader::TraceFileReader(const std::string &path)
    : TraceFileReader(path, Unchecked{})
{
    TraceIoStatus st = validate(TraceVerify::Full);
    switch (st) {
      case TraceIoStatus::Ok:
        return;
      case TraceIoStatus::IoError:
        vpprof_fatal("cannot open trace file (",
                     traceIoStatusName(st), "): ", path);
      case TraceIoStatus::ShortHeader:
        vpprof_fatal("truncated trace header (",
                     traceIoStatusName(st), "): ", path);
      case TraceIoStatus::BadMagic:
        vpprof_fatal("not a vpprof trace file (",
                     traceIoStatusName(st), "): ", path);
      case TraceIoStatus::VersionMismatch:
        vpprof_fatal("unsupported trace file version (",
                     traceIoStatusName(st), "): ", path);
      case TraceIoStatus::Truncated:
        vpprof_fatal("truncated trace file (",
                     traceIoStatusName(st), "): ", path);
      case TraceIoStatus::ChecksumMismatch:
        vpprof_fatal("trace file checksum mismatch (",
                     traceIoStatusName(st), "): ", path);
      case TraceIoStatus::WriteFailed:
      case TraceIoStatus::NoSpace:
        break;  // writer-side statuses; validate() never returns them
    }
    vpprof_panic("unexpected trace validation status");
}

std::unique_ptr<TraceFileReader>
TraceFileReader::tryOpen(const std::string &path, TraceIoStatus *status,
                         TraceVerify verify)
{
    std::unique_ptr<TraceFileReader> reader(
        new TraceFileReader(path, Unchecked{}));
    reader->strict_ = false;
    TraceIoStatus st = reader->validate(verify);
    if (status)
        *status = st;
    if (st != TraceIoStatus::Ok)
        return nullptr;
    return reader;
}

void
TraceFileReader::fail(TraceIoStatus status)
{
    status_ = status;
    if (strict_)
        vpprof_fatal("trace replay failed (",
                     traceIoStatusName(status), ") after ", read_,
                     " of ", count_, " records: ", path_);
}

bool
TraceFileReader::next(TraceRecord &rec)
{
    if (status_ != TraceIoStatus::Ok || read_ >= count_)
        return false;

    switch (FailpointRegistry::instance().fire("trace_io.read")) {
      case FailpointAction::Short:
        fail(TraceIoStatus::Truncated);
        return false;
      case FailpointAction::Fail:
        fail(TraceIoStatus::IoError);
        return false;
      default:
        break;
    }

    char buf[kRecordBytes];
    in_.read(buf, sizeof(buf));
    if (!in_) {
        // validate() checked the size at open, so this only happens
        // when the file shrank underneath us mid-read.
        fail(TraceIoStatus::Truncated);
        return false;
    }
    decode(buf, rec);
    ++read_;
    return true;
}

bool
TraceFileReader::skip(uint64_t n)
{
    if (status_ != TraceIoStatus::Ok)
        return false;
    if (n > count_ - read_)
        n = count_ - read_;
    in_.seekg(static_cast<std::streamoff>(n * kRecordBytes),
              std::ios::cur);
    if (!in_) {
        fail(TraceIoStatus::IoError);
        return false;
    }
    read_ += n;
    return true;
}

uint64_t
TraceFileReader::replay(TraceSink *sink)
{
    uint64_t n = 0;
    TraceRecord rec;
    while (next(rec)) {
        sink->record(rec);
        ++n;
    }
    return n;
}

} // namespace vpprof
