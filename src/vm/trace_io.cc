#include "vm/trace_io.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/checksum.hh"
#include "common/failpoint.hh"
#include "common/logging.hh"

namespace vpprof
{

namespace
{

constexpr char kMagicPrefix[7] = {'V', 'P', 'T', 'R', 'A', 'C', 'E'};
constexpr char kVersionV1 = '1';
constexpr char kVersionV2 = '2';
constexpr char kVersionV3 = '3';
constexpr size_t kHeaderBytes = 16;
constexpr size_t kTrailerBytes = 8;
constexpr size_t kRecordBytes = 8 + 8 + 1 + 1 + 1 + 1 + 8 + 1 + 2 + 8;

/** Serialize one record into a fixed-width buffer. */
void
encode(const TraceRecord &rec, char *buf)
{
    size_t off = 0;
    auto put = [&](const void *p, size_t n) {
        std::memcpy(buf + off, p, n);
        off += n;
    };
    put(&rec.seq, 8);
    put(&rec.pc, 8);
    uint8_t op = static_cast<uint8_t>(rec.op);
    put(&op, 1);
    uint8_t dir = static_cast<uint8_t>(rec.directive);
    put(&dir, 1);
    uint8_t flags = (rec.writesReg ? 1 : 0) | (rec.isMem ? 2 : 0);
    put(&flags, 1);
    put(&rec.dest, 1);
    put(&rec.value, 8);
    put(&rec.numSrcs, 1);
    put(rec.srcs.data(), 2);
    put(&rec.memAddr, 8);
}

/** Deserialize one record from a fixed-width buffer. */
void
decode(const char *buf, TraceRecord &rec)
{
    size_t off = 0;
    auto get = [&](void *p, size_t n) {
        std::memcpy(p, buf + off, n);
        off += n;
    };
    get(&rec.seq, 8);
    get(&rec.pc, 8);
    uint8_t op = 0;
    get(&op, 1);
    rec.op = static_cast<Opcode>(op);
    uint8_t dir = 0;
    get(&dir, 1);
    rec.directive = static_cast<Directive>(dir);
    uint8_t flags = 0;
    get(&flags, 1);
    rec.writesReg = (flags & 1) != 0;
    rec.isMem = (flags & 2) != 0;
    get(&rec.dest, 1);
    get(&rec.value, 8);
    get(&rec.numSrcs, 1);
    get(rec.srcs.data(), 2);
    get(&rec.memAddr, 8);
}

/** Map the current errno of a failed write to a TraceIoStatus. */
TraceIoStatus
writeErrnoStatus()
{
    return errno == ENOSPC ? TraceIoStatus::NoSpace
                           : TraceIoStatus::WriteFailed;
}

} // namespace

const char *
traceIoStatusName(TraceIoStatus status)
{
    switch (status) {
      case TraceIoStatus::Ok: return "ok";
      case TraceIoStatus::IoError: return "io-error";
      case TraceIoStatus::ShortHeader: return "short-header";
      case TraceIoStatus::BadMagic: return "bad-magic";
      case TraceIoStatus::VersionMismatch: return "version-mismatch";
      case TraceIoStatus::Truncated: return "truncated";
      case TraceIoStatus::TruncatedFile: return "truncated-file";
      case TraceIoStatus::ChecksumMismatch: return "checksum-mismatch";
      case TraceIoStatus::WriteFailed: return "write-failed";
      case TraceIoStatus::NoSpace: return "no-space";
    }
    return "unknown";
}

TraceFormat
defaultTraceFormat()
{
    const char *env = std::getenv("VPPROF_TRACE_FORMAT");
    if (env == nullptr || *env == '\0' || std::strcmp(env, "3") == 0)
        return TraceFormat::V3;
    if (std::strcmp(env, "2") == 0)
        return TraceFormat::V2;
    vpprof_fatal("VPPROF_TRACE_FORMAT must be \"2\" or \"3\", got \"",
                 env, "\"");
}

TraceFileWriter::TraceFileWriter(const std::string &path)
    : TraceFileWriter(path, defaultTraceFormat())
{
}

TraceFileWriter::TraceFileWriter(const std::string &path, TraceFormat format)
    : path_(path),
      tmpPath_(path + ".tmp." + std::to_string(::getpid())),
      format_(format),
      checksum_(kFnv1a64Seed)
{
    errno = 0;
    out_.open(tmpPath_, std::ios::binary | std::ios::trunc);
    if (!out_) {
        status_ = TraceIoStatus::IoError;
        return;
    }
    out_.write(kMagicPrefix, sizeof(kMagicPrefix));
    const char version =
        format_ == TraceFormat::V3 ? kVersionV3 : kVersionV2;
    out_.write(&version, 1);
    uint64_t placeholder = 0;
    out_.write(reinterpret_cast<const char *>(&placeholder), 8);
    if (!out_)
        status_ = writeErrnoStatus();
}

TraceFileWriter::~TraceFileWriter()
{
    if (!closed_ && close() != TraceIoStatus::Ok)
        vpprof_warn_limited(8, "trace file write failed (",
                            traceIoStatusName(status_), "): ", path_);
}

void
TraceFileWriter::flushBlock()
{
    if (encoder_.pending() == 0)
        return;
    blockBuf_.clear();
    encoder_.flush(blockBuf_);
    if (corruptPending_ > 0) {
        // The block checksum was computed over the bytes we *meant*
        // to write; damaging the payload now models a storage-level
        // flip that readers must catch.
        size_t payloadBytes = blockBuf_.size() - kTraceBlockHeaderBytes;
        for (uint64_t k = 0; k < corruptPending_; ++k)
            blockBuf_[kTraceBlockHeaderBytes + k % payloadBytes] ^= 0x5a;
        corruptPending_ = 0;
    }
    errno = 0;
    out_.write(reinterpret_cast<const char *>(blockBuf_.data()),
               static_cast<std::streamsize>(blockBuf_.size()));
    if (!out_)
        status_ = writeErrnoStatus();
}

void
TraceFileWriter::record(const TraceRecord &rec)
{
    if (closed_)
        vpprof_panic("TraceFileWriter::record after close");
    if (status_ != TraceIoStatus::Ok)
        return;  // error latched; close() surfaces it

    if (format_ == TraceFormat::V3) {
        switch (FailpointRegistry::instance().fire("trace_io.write")) {
          case FailpointAction::Fail:
            status_ = TraceIoStatus::WriteFailed;
            return;
          case FailpointAction::NoSpace:
            status_ = TraceIoStatus::NoSpace;
            return;
          case FailpointAction::Corrupt:
            ++corruptPending_;
            break;
          default:
            break;
        }
        encoder_.add(rec);
        if (encoder_.full())
            flushBlock();
        if (status_ == TraceIoStatus::Ok)
            ++count_;
        return;
    }

    char buf[kRecordBytes];
    encode(rec, buf);
    // The trailer covers the bytes we *meant* to write: an injected
    // Corrupt damages the file, not the checksum, exactly like a
    // storage-level flip — readers must catch it.
    checksum_ = fnv1a64(buf, sizeof(buf), checksum_);

    switch (FailpointRegistry::instance().fire("trace_io.write")) {
      case FailpointAction::Fail:
        status_ = TraceIoStatus::WriteFailed;
        return;
      case FailpointAction::NoSpace:
        status_ = TraceIoStatus::NoSpace;
        return;
      case FailpointAction::Corrupt:
        buf[0] = static_cast<char>(buf[0] ^ 0x5a);
        break;
      default:
        break;
    }

    errno = 0;
    out_.write(buf, sizeof(buf));
    if (!out_) {
        status_ = writeErrnoStatus();
        return;
    }
    ++count_;
}

TraceIoStatus
TraceFileWriter::close()
{
    if (closed_)
        return status_;
    closed_ = true;

    if (status_ == TraceIoStatus::Ok && format_ == TraceFormat::V3)
        flushBlock();  // the partial tail block

    if (status_ == TraceIoStatus::Ok) {
        errno = 0;
        if (format_ == TraceFormat::V2)
            out_.write(reinterpret_cast<const char *>(&checksum_),
                       kTrailerBytes);
        out_.seekp(sizeof(kMagicPrefix) + 1);
        out_.write(reinterpret_cast<const char *>(&count_), 8);
        out_.flush();
        if (!out_)
            status_ = writeErrnoStatus();
    }

    if (status_ == TraceIoStatus::Ok) {
        switch (FailpointRegistry::instance().fire("trace_io.commit")) {
          case FailpointAction::Fail:
            status_ = TraceIoStatus::WriteFailed;
            break;
          case FailpointAction::NoSpace:
            status_ = TraceIoStatus::NoSpace;
            break;
          default:
            break;
        }
    }

    out_.close();
    if (status_ == TraceIoStatus::Ok && !out_)
        status_ = writeErrnoStatus();

    if (status_ == TraceIoStatus::Ok) {
        // The commit point: the complete, checksummed file replaces
        // whatever was at `path_` in one atomic step.
        errno = 0;
        if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0)
            status_ = writeErrnoStatus();
    }
    if (status_ != TraceIoStatus::Ok)
        std::remove(tmpPath_.c_str());  // never leave a torn temp
    return status_;
}

TraceIoStatus
writeColumnarTraceFile(const std::string &path, const ColumnarTrace &trace)
{
    std::string tmpPath = path + ".tmp." + std::to_string(::getpid());
    errno = 0;
    std::ofstream out(tmpPath, std::ios::binary | std::ios::trunc);
    if (!out)
        return TraceIoStatus::IoError;
    TraceIoStatus status = TraceIoStatus::Ok;
    out.write(kMagicPrefix, sizeof(kMagicPrefix));
    out.write(&kVersionV3, 1);
    out.write(reinterpret_cast<const char *>(&trace.records), 8);
    if (!out)
        status = writeErrnoStatus();

    const uint8_t *data = trace.bytes.data();
    size_t remaining = trace.bytes.size();
    std::vector<uint8_t> damaged;  // only under injected corruption
    while (status == TraceIoStatus::Ok && remaining > 0) {
        size_t consumed = 0;
        uint32_t blockRecords = 0;
        if (probeTraceBlock(data, remaining, &consumed, &blockRecords,
                            false) != TraceBlockStatus::Ok)
            vpprof_panic("resident columnar trace has invalid framing "
                         "(in-memory corruption): ", path);
        const uint8_t *blockBytes = data;
        switch (FailpointRegistry::instance().fire("trace_io.write")) {
          case FailpointAction::Fail:
            status = TraceIoStatus::WriteFailed;
            break;
          case FailpointAction::NoSpace:
            status = TraceIoStatus::NoSpace;
            break;
          case FailpointAction::Corrupt:
            damaged.assign(data, data + consumed);
            damaged[kTraceBlockHeaderBytes] ^= 0x5a;
            blockBytes = damaged.data();
            break;
          default:
            break;
        }
        if (status != TraceIoStatus::Ok)
            break;
        errno = 0;
        out.write(reinterpret_cast<const char *>(blockBytes),
                  static_cast<std::streamsize>(consumed));
        if (!out) {
            status = writeErrnoStatus();
            break;
        }
        data += consumed;
        remaining -= consumed;
    }

    if (status == TraceIoStatus::Ok) {
        errno = 0;
        out.flush();
        if (!out)
            status = writeErrnoStatus();
    }
    if (status == TraceIoStatus::Ok) {
        switch (FailpointRegistry::instance().fire("trace_io.commit")) {
          case FailpointAction::Fail:
            status = TraceIoStatus::WriteFailed;
            break;
          case FailpointAction::NoSpace:
            status = TraceIoStatus::NoSpace;
            break;
          default:
            break;
        }
    }
    out.close();
    if (status == TraceIoStatus::Ok && !out)
        status = writeErrnoStatus();
    if (status == TraceIoStatus::Ok) {
        errno = 0;
        if (std::rename(tmpPath.c_str(), path.c_str()) != 0)
            status = writeErrnoStatus();
    }
    if (status != TraceIoStatus::Ok)
        std::remove(tmpPath.c_str());
    return status;
}

TraceFileReader::TraceFileReader(const std::string &path, Unchecked)
    : path_(path),
      in_(path, std::ios::binary),
      version_(kVersionV2)
{
}

TraceFileReader::~TraceFileReader()
{
    if (mapBase_ != nullptr)
        ::munmap(mapBase_, mapSize_);
}

TraceIoStatus
TraceFileReader::mapBlocks(TraceVerify verify)
{
    in_.close();  // the ifstream served only the header probe

    int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0)
        return TraceIoStatus::IoError;
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        return TraceIoStatus::IoError;
    }
    size_t size = static_cast<size_t>(st.st_size);
    if (size < kHeaderBytes) {
        // The header we just parsed is gone: the file shrank between
        // the probe and the map.
        ::close(fd);
        return TraceIoStatus::TruncatedFile;
    }
    if (size > kHeaderBytes) {
        void *base =
            ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        if (base != MAP_FAILED) {
            mapBase_ = base;
            mapSize_ = size;
            payload_ = static_cast<const uint8_t *>(base) + kHeaderBytes;
        } else {
            // mmap can fail legitimately (map-count limits, exotic
            // filesystems); fall back to buffering the file.
            std::ifstream fallback(path_, std::ios::binary);
            ownedBytes_.resize(size);
            fallback.read(reinterpret_cast<char *>(ownedBytes_.data()),
                          static_cast<std::streamsize>(size));
            if (!fallback) {
                ::close(fd);
                return TraceIoStatus::IoError;
            }
            payload_ = ownedBytes_.data() + kHeaderBytes;
        }
    }
    ::close(fd);
    payloadSize_ = size - kHeaderBytes;
    mappedBytes_ = size;

    // Walk the block framing: every block must parse (and checksum,
    // under Full verification) and the per-block counts must sum to
    // exactly what the header promises. A writer that died before
    // close() leaves a torn tail block — the distinct TruncatedFile
    // status, so quarantine logs name the real failure.
    size_t off = 0;
    uint64_t total = 0;
    uint64_t blocks = 0;
    while (off < payloadSize_) {
        size_t consumed = 0;
        uint32_t blockRecords = 0;
        switch (probeTraceBlock(payload_ + off, payloadSize_ - off,
                                &consumed, &blockRecords,
                                verify == TraceVerify::Full)) {
          case TraceBlockStatus::Ok:
            break;
          case TraceBlockStatus::Truncated:
            vpprof_warn_limited(8, "trace file has a torn tail block (",
                                traceIoStatusName(
                                    TraceIoStatus::TruncatedFile),
                                "): ", path_);
            return TraceIoStatus::TruncatedFile;
          case TraceBlockStatus::ChecksumMismatch:
            return TraceIoStatus::ChecksumMismatch;
          case TraceBlockStatus::Malformed:
            // Framing fields that parse to nonsense are corruption,
            // same integrity boundary as a bad checksum.
            return TraceIoStatus::ChecksumMismatch;
        }
        total += blockRecords;
        blocks += 1;
        off += consumed;
        if (total > count_)
            return TraceIoStatus::Truncated;
    }
    if (total != count_)
        return TraceIoStatus::Truncated;
    blockCount_ = blocks;
    scratch_ = std::make_unique<TraceBlockScratch>();
    return TraceIoStatus::Ok;
}

TraceIoStatus
TraceFileReader::validate(TraceVerify verify)
{
    if (FailpointRegistry::instance().fire("trace_io.open") ==
        FailpointAction::Fail)
        return TraceIoStatus::IoError;
    if (!in_)
        return TraceIoStatus::IoError;
    char magic[sizeof(kMagicPrefix)];
    in_.read(magic, sizeof(magic));
    in_.read(&version_, 1);
    if (!in_)
        return TraceIoStatus::ShortHeader;
    if (std::memcmp(magic, kMagicPrefix, sizeof(kMagicPrefix)) != 0)
        return TraceIoStatus::BadMagic;
    if (version_ != kVersionV1 && version_ != kVersionV2 &&
        version_ != kVersionV3)
        return TraceIoStatus::VersionMismatch;
    in_.read(reinterpret_cast<char *>(&count_), 8);
    if (!in_)
        return TraceIoStatus::ShortHeader;

    if (version_ == kVersionV3)
        return mapBlocks(verify);

    // The payload must hold exactly the records the header promises
    // (plus, for v2, the checksum trailer): fewer means a truncated
    // capture (e.g. a writer that died before close()), more means
    // trailing garbage. Both are data loss if ignored, so both are
    // errors, never a silent short replay.
    size_t overhead =
        kHeaderBytes + (version_ == kVersionV2 ? kTrailerBytes : 0);
    in_.seekg(0, std::ios::end);
    std::streampos end = in_.tellg();
    in_.seekg(kHeaderBytes);
    if (!in_)
        return TraceIoStatus::IoError;
    if (static_cast<uint64_t>(end) < overhead ||
        static_cast<uint64_t>(end) - overhead !=
            count_ * kRecordBytes)
        return TraceIoStatus::Truncated;

    if (version_ == kVersionV2 && verify == TraceVerify::Full) {
        // Stream the payload once to verify the trailer before any
        // record is handed out: a flipped bit must be a structured
        // open failure, never a silently mis-measured replay.
        uint64_t sum = kFnv1a64Seed;
        uint64_t remaining = count_ * kRecordBytes;
        char chunk[1 << 16];
        while (remaining > 0) {
            size_t step = remaining < sizeof(chunk)
                              ? static_cast<size_t>(remaining)
                              : sizeof(chunk);
            in_.read(chunk, static_cast<std::streamsize>(step));
            if (!in_)
                return TraceIoStatus::IoError;
            sum = fnv1a64(chunk, step, sum);
            remaining -= step;
        }
        uint64_t stored = 0;
        in_.read(reinterpret_cast<char *>(&stored), kTrailerBytes);
        if (!in_)
            return TraceIoStatus::IoError;
        if (stored != sum)
            return TraceIoStatus::ChecksumMismatch;
        in_.clear();
        in_.seekg(kHeaderBytes);
        if (!in_)
            return TraceIoStatus::IoError;
    }
    return TraceIoStatus::Ok;
}

TraceFileReader::TraceFileReader(const std::string &path)
    : TraceFileReader(path, Unchecked{})
{
    TraceIoStatus st = validate(TraceVerify::Full);
    switch (st) {
      case TraceIoStatus::Ok:
        return;
      case TraceIoStatus::IoError:
        vpprof_fatal("cannot open trace file (",
                     traceIoStatusName(st), "): ", path);
      case TraceIoStatus::ShortHeader:
        vpprof_fatal("truncated trace header (",
                     traceIoStatusName(st), "): ", path);
      case TraceIoStatus::BadMagic:
        vpprof_fatal("not a vpprof trace file (",
                     traceIoStatusName(st), "): ", path);
      case TraceIoStatus::VersionMismatch:
        vpprof_fatal("unsupported trace file version (",
                     traceIoStatusName(st), "): ", path);
      case TraceIoStatus::Truncated:
        vpprof_fatal("truncated trace file (",
                     traceIoStatusName(st), "): ", path);
      case TraceIoStatus::TruncatedFile:
        vpprof_fatal("torn trace file tail (",
                     traceIoStatusName(st), "): ", path);
      case TraceIoStatus::ChecksumMismatch:
        vpprof_fatal("trace file checksum mismatch (",
                     traceIoStatusName(st), "): ", path);
      case TraceIoStatus::WriteFailed:
      case TraceIoStatus::NoSpace:
        break;  // writer-side statuses; validate() never returns them
    }
    vpprof_panic("unexpected trace validation status");
}

std::unique_ptr<TraceFileReader>
TraceFileReader::tryOpen(const std::string &path, TraceIoStatus *status,
                         TraceVerify verify)
{
    std::unique_ptr<TraceFileReader> reader(
        new TraceFileReader(path, Unchecked{}));
    reader->strict_ = false;
    TraceIoStatus st = reader->validate(verify);
    if (status)
        *status = st;
    if (st != TraceIoStatus::Ok)
        return nullptr;
    return reader;
}

void
TraceFileReader::fail(TraceIoStatus status)
{
    status_ = status;
    if (strict_)
        vpprof_fatal("trace replay failed (",
                     traceIoStatusName(status), ") after ", read_,
                     " of ", count_, " records: ", path_);
}

bool
TraceFileReader::decodeNextBlock()
{
    size_t consumed = 0;
    TraceBlockStatus st =
        decodeTraceBlock(payload_ + blockOff_, payloadSize_ - blockOff_,
                         *scratch_, view_, &consumed, false);
    if (st != TraceBlockStatus::Ok) {
        // Framing was validated at open, so reaching here means the
        // bytes changed underneath us (or HeaderOnly skipped a
        // damaged block) — an integrity failure either way.
        fail(st == TraceBlockStatus::Truncated
                 ? TraceIoStatus::TruncatedFile
                 : TraceIoStatus::ChecksumMismatch);
        return false;
    }
    blockOff_ += consumed;
    ++blocksDecoded_;
    viewIdx_ = 0;
    return true;
}

bool
TraceFileReader::next(TraceRecord &rec)
{
    if (status_ != TraceIoStatus::Ok || read_ >= count_)
        return false;

    switch (FailpointRegistry::instance().fire("trace_io.read")) {
      case FailpointAction::Short:
        fail(TraceIoStatus::Truncated);
        return false;
      case FailpointAction::Fail:
        fail(TraceIoStatus::IoError);
        return false;
      default:
        break;
    }

    if (version_ == kVersionV3) {
        if (viewIdx_ >= view_.count && !decodeNextBlock())
            return false;
        rec = view_.record(viewIdx_);
        ++viewIdx_;
        ++read_;
        return true;
    }

    char buf[kRecordBytes];
    in_.read(buf, sizeof(buf));
    if (!in_) {
        // validate() checked the size at open, so this only happens
        // when the file shrank underneath us mid-read.
        fail(TraceIoStatus::Truncated);
        return false;
    }
    decode(buf, rec);
    ++read_;
    return true;
}

bool
TraceFileReader::skip(uint64_t n)
{
    if (status_ != TraceIoStatus::Ok)
        return false;
    if (n > count_ - read_)
        n = count_ - read_;

    if (version_ == kVersionV3) {
        // Drain the decoded block first, then hop whole blocks by
        // their framing (no decode), then decode into the target.
        uint64_t inView = view_.count - viewIdx_;
        uint64_t take = std::min(n, inView);
        viewIdx_ += static_cast<uint32_t>(take);
        read_ += take;
        n -= take;
        while (n > 0) {
            size_t consumed = 0;
            uint32_t blockRecords = 0;
            if (probeTraceBlock(payload_ + blockOff_,
                                payloadSize_ - blockOff_, &consumed,
                                &blockRecords,
                                false) != TraceBlockStatus::Ok) {
                fail(TraceIoStatus::IoError);
                return false;
            }
            if (blockRecords <= n) {
                blockOff_ += consumed;
                read_ += blockRecords;
                n -= blockRecords;
            } else {
                if (!decodeNextBlock())
                    return false;
                viewIdx_ = static_cast<uint32_t>(n);
                read_ += n;
                n = 0;
            }
        }
        return true;
    }

    in_.seekg(static_cast<std::streamoff>(n * kRecordBytes),
              std::ios::cur);
    if (!in_) {
        fail(TraceIoStatus::IoError);
        return false;
    }
    read_ += n;
    return true;
}

uint64_t
TraceFileReader::replay(TraceSink *sink)
{
    uint64_t n = 0;
    TraceRecord rec;
    while (next(rec)) {
        sink->record(rec);
        ++n;
    }
    return n;
}

uint64_t
TraceFileReader::replayBlocks(TraceBlockSink *sink)
{
    if (version_ != kVersionV3)
        vpprof_panic("replayBlocks on a version-", version_,
                     " trace file: ", path_);
    uint64_t delivered = 0;
    while (status_ == TraceIoStatus::Ok && read_ < count_) {
        switch (FailpointRegistry::instance().fire("trace_io.read")) {
          case FailpointAction::Short:
            fail(TraceIoStatus::Truncated);
            return delivered;
          case FailpointAction::Fail:
            fail(TraceIoStatus::IoError);
            return delivered;
          default:
            break;
        }
        if (viewIdx_ >= view_.count && !decodeNextBlock())
            break;
        // Hand over whatever of the current block next()/skip()
        // haven't consumed.
        TraceBlockView slice = view_;
        uint32_t o = viewIdx_;
        slice.count -= o;
        slice.seq += o;
        slice.pc += o;
        slice.op += o;
        slice.directive += o;
        slice.writesReg += o;
        slice.dest += o;
        slice.value += o;
        slice.numSrcs += o;
        slice.src0 += o;
        slice.src1 += o;
        slice.isMem += o;
        slice.memAddr += o;
        slice.firstSeq = slice.seq[0];
        sink->consumeBlock(slice);
        viewIdx_ = view_.count;
        read_ += slice.count;
        delivered += slice.count;
    }
    return delivered;
}

bool
TraceFileReader::readColumnar(ColumnarTrace &out) const
{
    if (version_ != kVersionV3)
        return false;
    out.bytes.assign(payload_, payload_ + payloadSize_);
    out.records = count_;
    out.blocks = blockCount_;
    return true;
}

} // namespace vpprof
