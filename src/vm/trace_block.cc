#include "vm/trace_block.hh"

#include <cstring>

#include "common/logging.hh"

namespace vpprof
{

namespace
{

// Block flag bits (header `flags` field).
constexpr uint32_t kFlagSeqExplicit = 1u << 0; ///< seq column present
constexpr uint32_t kFlagValueDense = 1u << 1;  ///< value for all records
constexpr uint32_t kFlagMemDense = 1u << 2;    ///< memAddr for all records
constexpr uint32_t kFlagKnownMask =
    kFlagSeqExplicit | kFlagValueDense | kFlagMemDense;

// Header field offsets within the 28-byte block header. The checksum
// is stored last and covers the preceding header bytes plus the
// payload, so corruption of the framing itself (count, size, firstSeq)
// is caught, not just payload damage.
constexpr size_t kOffCount = 0;
constexpr size_t kOffPayloadBytes = 4;
constexpr size_t kOffFirstSeq = 8;
constexpr size_t kOffFlags = 16;
constexpr size_t kOffChecksum = 20;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnv1a(uint64_t hash, const uint8_t *data, size_t size)
{
    for (size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= kFnvPrime;
    }
    return hash;
}

void
putU32(uint8_t *out, uint32_t v)
{
    out[0] = uint8_t(v);
    out[1] = uint8_t(v >> 8);
    out[2] = uint8_t(v >> 16);
    out[3] = uint8_t(v >> 24);
}

void
putU64(uint8_t *out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = uint8_t(v >> (8 * i));
}

uint32_t
getU32(const uint8_t *in)
{
    return uint32_t(in[0]) | uint32_t(in[1]) << 8 | uint32_t(in[2]) << 16 |
           uint32_t(in[3]) << 24;
}

uint64_t
getU64(const uint8_t *in)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(in[i]) << (8 * i);
    return v;
}

// Zigzag maps small-magnitude signed deltas (positive or negative) to
// small unsigned varints. Deltas are computed in uint64 so wraparound
// is well defined for arbitrary 64-bit jumps.
uint64_t
zigzag(uint64_t delta)
{
    int64_t s = int64_t(delta);
    return (uint64_t(s) << 1) ^ uint64_t(s >> 63);
}

uint64_t
unzigzag(uint64_t z)
{
    return (z >> 1) ^ (~(z & 1) + 1);
}

void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(uint8_t(v) | 0x80);
        v >>= 7;
    }
    out.push_back(uint8_t(v));
}

// Bounds-checked byte cursor over untrusted payload bytes. Reads past
// the end latch `ok` false and return zeros; callers check once per
// column rather than per byte.
struct Cursor
{
    const uint8_t *p;
    const uint8_t *end;
    bool ok = true;

    uint64_t
    varint()
    {
        uint64_t v = 0;
        int shift = 0;
        while (true) {
            if (p == end || shift > 63) {
                ok = false;
                return 0;
            }
            uint8_t b = *p++;
            v |= uint64_t(b & 0x7f) << shift;
            if ((b & 0x80) == 0)
                return v;
            shift += 7;
        }
    }

    const uint8_t *
    bytes(size_t n)
    {
        if (size_t(end - p) < n) {
            ok = false;
            return nullptr;
        }
        const uint8_t *at = p;
        p += n;
        return at;
    }

    uint16_t
    u16()
    {
        const uint8_t *b = bytes(2);
        if (!b)
            return 0;
        return uint16_t(b[0]) | uint16_t(b[1]) << 8;
    }
};

int
bitsFor(size_t dictSize)
{
    int bits = 0;
    while ((size_t(1) << bits) < dictSize)
        ++bits;
    return bits;
}

// Dictionary-code one byte column: u16 dict size, the dict bytes in
// first-appearance order, then LSB-first bit-packed indices. A column
// with one distinct value costs 3 bytes for the whole block.
void
encodeDictColumn(std::vector<uint8_t> &out, const uint8_t *col,
                 uint32_t count)
{
    uint8_t index[256];
    uint8_t dict[256];
    bool seen[256] = {};
    size_t dictSize = 0;
    for (uint32_t i = 0; i < count; ++i) {
        uint8_t v = col[i];
        if (!seen[v]) {
            seen[v] = true;
            index[v] = uint8_t(dictSize);
            dict[dictSize++] = v;
        }
    }
    out.push_back(uint8_t(dictSize));
    out.push_back(uint8_t(dictSize >> 8));
    out.insert(out.end(), dict, dict + dictSize);
    int width = bitsFor(dictSize);
    if (width == 0)
        return;
    uint64_t acc = 0;
    int accBits = 0;
    for (uint32_t i = 0; i < count; ++i) {
        acc |= uint64_t(index[col[i]]) << accBits;
        accBits += width;
        while (accBits >= 8) {
            out.push_back(uint8_t(acc));
            acc >>= 8;
            accBits -= 8;
        }
    }
    if (accBits > 0)
        out.push_back(uint8_t(acc));
}

bool
decodeDictColumn(Cursor &cur, uint8_t *col, uint32_t count)
{
    uint16_t dictSize = cur.u16();
    if (!cur.ok || dictSize == 0 || dictSize > 256)
        return false;
    const uint8_t *dict = cur.bytes(dictSize);
    if (!dict)
        return false;
    int width = bitsFor(dictSize);
    if (width == 0) {
        std::memset(col, dict[0], count);
        return true;
    }
    size_t packed = (size_t(count) * width + 7) / 8;
    const uint8_t *bits = cur.bytes(packed);
    if (!bits)
        return false;
    uint64_t acc = 0;
    int accBits = 0;
    size_t next = 0;
    uint32_t mask = (1u << width) - 1;
    for (uint32_t i = 0; i < count; ++i) {
        while (accBits < width) {
            acc |= uint64_t(bits[next++]) << accBits;
            accBits += 8;
        }
        uint32_t idx = uint32_t(acc) & mask;
        acc >>= width;
        accBits -= width;
        if (idx >= dictSize)
            return false;
        col[i] = dict[idx];
    }
    return true;
}

} // namespace

TraceBlockScratch::TraceBlockScratch()
    : seq(kTraceBlockCapacity), pc(kTraceBlockCapacity),
      memAddr(kTraceBlockCapacity), value(kTraceBlockCapacity),
      op(kTraceBlockCapacity), directive(kTraceBlockCapacity),
      writesReg(kTraceBlockCapacity), isMem(kTraceBlockCapacity),
      numSrcs(kTraceBlockCapacity), dest(kTraceBlockCapacity),
      src0(kTraceBlockCapacity), src1(kTraceBlockCapacity)
{
}

TraceBlockView
TraceBlockScratch::view(uint32_t count, uint64_t firstSeq) const
{
    TraceBlockView v;
    v.count = count;
    v.firstSeq = firstSeq;
    v.seq = seq.data();
    v.pc = pc.data();
    v.op = op.data();
    v.directive = directive.data();
    v.writesReg = writesReg.data();
    v.dest = dest.data();
    v.value = value.data();
    v.numSrcs = numSrcs.data();
    v.src0 = src0.data();
    v.src1 = src1.data();
    v.isMem = isMem.data();
    v.memAddr = memAddr.data();
    return v;
}

TraceBlockEncoder::TraceBlockEncoder() = default;

void
TraceBlockEncoder::add(const TraceRecord &rec)
{
    if (count_ == kTraceBlockCapacity)
        vpprof_panic("trace block encoder overflow: flush() not called");
    if (rec.numSrcs > 3)
        vpprof_panic("trace record numSrcs ", int(rec.numSrcs),
                     " exceeds the v3 format limit of 3");
    if (count_ == 0) {
        firstSeq_ = rec.seq;
        seqContiguous_ = true;
        valueDense_ = false;
        memDense_ = false;
    } else if (rec.seq != firstSeq_ + count_) {
        seqContiguous_ = false;
    }
    if (!rec.writesReg && rec.value != 0)
        valueDense_ = true;
    if (!rec.isMem && rec.memAddr != 0)
        memDense_ = true;
    uint32_t i = count_++;
    stage_.seq[i] = rec.seq;
    stage_.pc[i] = rec.pc;
    stage_.op[i] = uint8_t(rec.op);
    stage_.directive[i] = uint8_t(rec.directive);
    stage_.writesReg[i] = rec.writesReg ? 1 : 0;
    stage_.dest[i] = rec.dest;
    stage_.value[i] = rec.value;
    stage_.numSrcs[i] = rec.numSrcs;
    stage_.src0[i] = rec.srcs[0];
    stage_.src1[i] = rec.srcs[1];
    stage_.isMem[i] = rec.isMem ? 1 : 0;
    stage_.memAddr[i] = rec.memAddr;
}

void
TraceBlockEncoder::flush(std::vector<uint8_t> &out)
{
    if (count_ == 0)
        vpprof_panic("flush() on an empty trace block encoder");
    uint32_t flags = 0;
    if (!seqContiguous_)
        flags |= kFlagSeqExplicit;
    if (valueDense_)
        flags |= kFlagValueDense;
    if (memDense_)
        flags |= kFlagMemDense;

    size_t headerAt = out.size();
    out.resize(headerAt + kTraceBlockHeaderBytes);

    // Payload columns, in fixed order.
    if (flags & kFlagSeqExplicit) {
        uint64_t prev = firstSeq_;
        for (uint32_t i = 0; i < count_; ++i) {
            putVarint(out, zigzag(stage_.seq[i] - prev));
            prev = stage_.seq[i];
        }
    }
    uint64_t prevPc = 0;
    for (uint32_t i = 0; i < count_; ++i) {
        putVarint(out, zigzag(stage_.pc[i] - prevPc));
        prevPc = stage_.pc[i];
    }
    encodeDictColumn(out, stage_.op.data(), count_);
    encodeDictColumn(out, stage_.directive.data(), count_);
    // writesReg | isMem | numSrcs, two records per byte.
    for (uint32_t i = 0; i < count_; i += 2) {
        uint8_t lo = uint8_t(stage_.writesReg[i] | stage_.isMem[i] << 1 |
                             (stage_.numSrcs[i] & 3) << 2);
        uint8_t hi = 0;
        if (i + 1 < count_)
            hi = uint8_t(stage_.writesReg[i + 1] | stage_.isMem[i + 1] << 1 |
                         (stage_.numSrcs[i + 1] & 3) << 2);
        out.push_back(uint8_t(lo | hi << 4));
    }
    out.insert(out.end(), stage_.dest.begin(), stage_.dest.begin() + count_);
    out.insert(out.end(), stage_.src0.begin(), stage_.src0.begin() + count_);
    out.insert(out.end(), stage_.src1.begin(), stage_.src1.begin() + count_);
    uint64_t prevValue = 0;
    for (uint32_t i = 0; i < count_; ++i) {
        if (!valueDense_ && !stage_.writesReg[i])
            continue;
        uint64_t v = uint64_t(stage_.value[i]);
        putVarint(out, zigzag(v - prevValue));
        prevValue = v;
    }
    uint64_t prevAddr = 0;
    for (uint32_t i = 0; i < count_; ++i) {
        if (!memDense_ && !stage_.isMem[i])
            continue;
        putVarint(out, zigzag(stage_.memAddr[i] - prevAddr));
        prevAddr = stage_.memAddr[i];
    }

    size_t payloadBytes = out.size() - headerAt - kTraceBlockHeaderBytes;
    uint8_t *header = out.data() + headerAt;
    putU32(header + kOffCount, count_);
    putU32(header + kOffPayloadBytes, uint32_t(payloadBytes));
    putU64(header + kOffFirstSeq, firstSeq_);
    putU32(header + kOffFlags, flags);
    uint64_t sum = fnv1a(kFnvOffset, header, kOffChecksum);
    sum = fnv1a(sum, header + kTraceBlockHeaderBytes, payloadBytes);
    putU64(header + kOffChecksum, sum);

    count_ = 0;
}

TraceBlockStatus
probeTraceBlock(const uint8_t *data, size_t size, size_t *consumed,
                uint32_t *count, bool verifyChecksum)
{
    if (size < kTraceBlockHeaderBytes)
        return TraceBlockStatus::Truncated;
    uint32_t n = getU32(data + kOffCount);
    uint32_t payloadBytes = getU32(data + kOffPayloadBytes);
    uint32_t flags = getU32(data + kOffFlags);
    if (n == 0 || n > kTraceBlockCapacity || (flags & ~kFlagKnownMask))
        return TraceBlockStatus::Malformed;
    if (payloadBytes > size - kTraceBlockHeaderBytes)
        return TraceBlockStatus::Truncated;
    if (verifyChecksum) {
        uint64_t sum = fnv1a(kFnvOffset, data, kOffChecksum);
        sum = fnv1a(sum, data + kTraceBlockHeaderBytes, payloadBytes);
        if (sum != getU64(data + kOffChecksum))
            return TraceBlockStatus::ChecksumMismatch;
    }
    *consumed = kTraceBlockHeaderBytes + payloadBytes;
    *count = n;
    return TraceBlockStatus::Ok;
}

TraceBlockStatus
decodeTraceBlock(const uint8_t *data, size_t size,
                 TraceBlockScratch &scratch, TraceBlockView &view,
                 size_t *consumed, bool verifyChecksum)
{
    uint32_t count = 0;
    TraceBlockStatus st =
        probeTraceBlock(data, size, consumed, &count, verifyChecksum);
    if (st != TraceBlockStatus::Ok)
        return st;
    uint64_t firstSeq = getU64(data + kOffFirstSeq);
    uint32_t flags = getU32(data + kOffFlags);
    uint32_t payloadBytes = getU32(data + kOffPayloadBytes);
    Cursor cur{data + kTraceBlockHeaderBytes,
               data + kTraceBlockHeaderBytes + payloadBytes};

    if (flags & kFlagSeqExplicit) {
        uint64_t prev = firstSeq;
        for (uint32_t i = 0; i < count; ++i) {
            prev += unzigzag(cur.varint());
            scratch.seq[i] = prev;
        }
    } else {
        for (uint32_t i = 0; i < count; ++i)
            scratch.seq[i] = firstSeq + i;
    }
    uint64_t prevPc = 0;
    for (uint32_t i = 0; i < count; ++i) {
        prevPc += unzigzag(cur.varint());
        scratch.pc[i] = prevPc;
    }
    if (!cur.ok || !decodeDictColumn(cur, scratch.op.data(), count) ||
        !decodeDictColumn(cur, scratch.directive.data(), count)) {
        return TraceBlockStatus::Malformed;
    }
    const uint8_t *nibbles = cur.bytes((count + 1) / 2);
    if (!nibbles)
        return TraceBlockStatus::Malformed;
    for (uint32_t i = 0; i < count; ++i) {
        uint8_t nib = nibbles[i / 2] >> (4 * (i & 1)) & 0x0f;
        scratch.writesReg[i] = nib & 1;
        scratch.isMem[i] = nib >> 1 & 1;
        scratch.numSrcs[i] = nib >> 2 & 3;
    }
    const uint8_t *destCol = cur.bytes(count);
    const uint8_t *src0Col = cur.bytes(count);
    const uint8_t *src1Col = cur.bytes(count);
    if (!src1Col)
        return TraceBlockStatus::Malformed;
    std::memcpy(scratch.dest.data(), destCol, count);
    std::memcpy(scratch.src0.data(), src0Col, count);
    std::memcpy(scratch.src1.data(), src1Col, count);
    bool valueDense = (flags & kFlagValueDense) != 0;
    uint64_t prevValue = 0;
    for (uint32_t i = 0; i < count; ++i) {
        if (valueDense || scratch.writesReg[i]) {
            prevValue += unzigzag(cur.varint());
            scratch.value[i] = int64_t(prevValue);
        } else {
            scratch.value[i] = 0;
        }
    }
    bool memDense = (flags & kFlagMemDense) != 0;
    uint64_t prevAddr = 0;
    for (uint32_t i = 0; i < count; ++i) {
        if (memDense || scratch.isMem[i]) {
            prevAddr += unzigzag(cur.varint());
            scratch.memAddr[i] = prevAddr;
        } else {
            scratch.memAddr[i] = 0;
        }
    }
    if (!cur.ok || cur.p != cur.end)
        return TraceBlockStatus::Malformed;
    view = scratch.view(count, firstSeq);
    return TraceBlockStatus::Ok;
}

uint64_t
replayColumnarTrace(const ColumnarTrace &trace, TraceBlockScratch &scratch,
                    TraceBlockSink *sink)
{
    const uint8_t *data = trace.bytes.data();
    size_t remaining = trace.bytes.size();
    uint64_t delivered = 0;
    while (remaining > 0) {
        TraceBlockView view;
        size_t consumed = 0;
        TraceBlockStatus st = decodeTraceBlock(data, remaining, scratch,
                                               view, &consumed, false);
        if (st != TraceBlockStatus::Ok)
            vpprof_panic("resident columnar trace failed to decode "
                         "(in-memory corruption)");
        sink->consumeBlock(view);
        delivered += view.count;
        data += consumed;
        remaining -= consumed;
    }
    if (delivered != trace.records)
        vpprof_panic("resident columnar trace record count mismatch: ",
                     delivered, " decoded vs ", trace.records, " captured");
    return delivered;
}

} // namespace vpprof
