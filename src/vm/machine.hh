/**
 * @file
 * The mini-ISA interpreter: executes a Program against a Memory and
 * emits a dynamic trace, fulfilling the tracing role the paper assigned
 * to the SHADE simulator.
 */

#ifndef VPPROF_VM_MACHINE_HH
#define VPPROF_VM_MACHINE_HH

#include <array>
#include <cstdint>

#include "isa/program.hh"
#include "vm/memory.hh"
#include "vm/trace.hh"

namespace vpprof
{

/** Outcome of a Machine::run. */
struct RunResult
{
    uint64_t instructionsExecuted = 0;
    bool halted = false;  ///< true: reached Halt; false: hit the limit
};

/**
 * A single-program virtual machine.
 *
 * Semantics notes:
 *  - r0 reads as zero; writes to it are discarded (but still traced as
 *    value-producing, matching a real ISA where the value exists on the
 *    bypass even if architecturally dropped -- and matching SPARC %g0
 *    conventions the paper's SHADE traces would contain). Instructions
 *    that target r0 are rare in our workloads.
 *  - Integer division/remainder by zero yields 0 (deterministic, no
 *    trap), as does INT64_MIN / -1.
 *  - FP registers hold IEEE doubles; trace values carry the bit pattern.
 *  - Shift counts are masked to 0..63.
 */
class Machine
{
  public:
    /**
     * @param program Validated program to execute. The machine keeps
     *                its own copy, so temporaries (e.g. straight from
     *                ProgramBuilder::build()) are safe to pass.
     * @param image Initial memory/register contents.
     */
    Machine(Program program, const MemoryImage &image);

    /** Execute from entry until Halt or max_insts retirements. */
    RunResult run(TraceSink *sink, uint64_t max_insts = kDefaultMaxInsts);

    /** Architectural register read (r0 reads zero). */
    int64_t reg(RegId r) const { return r == kZeroReg ? 0 : regs_[r]; }

    /** Architectural register write (writes to r0 are dropped). */
    void
    setReg(RegId r, int64_t v)
    {
        if (r != kZeroReg)
            regs_[r] = v;
    }

    /** FP view of a register. */
    double regDouble(RegId r) const;

    Memory &memory() { return memory_; }
    const Memory &memory() const { return memory_; }

    uint64_t pc() const { return pc_; }

    static constexpr uint64_t kDefaultMaxInsts = 400'000'000ull;

  private:
    Program program_;
    Memory memory_;
    std::array<int64_t, kNumRegs> regs_{};
    uint64_t pc_ = 0;
    uint64_t seq_ = 0;
};

} // namespace vpprof

#endif // VPPROF_VM_MACHINE_HH
