/**
 * @file
 * Dynamic instruction trace records and sinks.
 *
 * The VM plays the role SHADE played for the paper: it executes the
 * program and emits one TraceRecord per retired instruction, carrying
 * everything the value-prediction experiments observe — the static
 * address, the destination register and its computed value, the source
 * registers (for the ILP dataflow analysis) and the effective address of
 * memory operations (for memory true dependencies).
 */

#ifndef VPPROF_VM_TRACE_HH
#define VPPROF_VM_TRACE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "isa/instruction.hh"

namespace vpprof
{

/** One retired dynamic instruction. */
struct TraceRecord
{
    uint64_t seq = 0;      ///< dynamic instruction number, from 0
    uint64_t pc = 0;       ///< static instruction address
    Opcode op = Opcode::Nop;
    Directive directive = Directive::None;
    bool writesReg = false;
    RegId dest = 0;
    int64_t value = 0;     ///< destination value when writesReg
    uint8_t numSrcs = 0;
    std::array<RegId, 2> srcs{{0, 0}};
    bool isMem = false;
    uint64_t memAddr = 0;  ///< effective word address when isMem
};

/** Consumer of a dynamic trace. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once per retired instruction, in program order. */
    virtual void record(const TraceRecord &rec) = 0;
};

/** Buffers the whole trace in memory. */
class VectorTraceSink : public TraceSink
{
  public:
    void record(const TraceRecord &rec) override { trace_.push_back(rec); }

    const std::vector<TraceRecord> &trace() const { return trace_; }
    std::vector<TraceRecord> takeTrace() { return std::move(trace_); }

  private:
    std::vector<TraceRecord> trace_;
};

/** Forwards each record to a callable (for streaming analyses). */
class CallbackTraceSink : public TraceSink
{
  public:
    using Callback = std::function<void(const TraceRecord &)>;

    explicit CallbackTraceSink(Callback cb) : cb_(std::move(cb)) {}

    void record(const TraceRecord &rec) override { cb_(rec); }

  private:
    Callback cb_;
};

/** Fans one trace out to several sinks. */
class MultiTraceSink : public TraceSink
{
  public:
    void addSink(TraceSink *sink) { sinks_.push_back(sink); }

    void
    record(const TraceRecord &rec) override
    {
        for (TraceSink *sink : sinks_)
            sink->record(rec);
    }

  private:
    std::vector<TraceSink *> sinks_;
};

/** Counts records per instruction category. */
class CountingTraceSink : public TraceSink
{
  public:
    void record(const TraceRecord &rec) override;

    /** Fold another counter in (parallel per-shard collection). */
    void
    merge(const CountingTraceSink &other)
    {
        total_ += other.total_;
        producers_ += other.producers_;
        loads_ += other.loads_;
        stores_ += other.stores_;
        branches_ += other.branches_;
        fpOps_ += other.fpOps_;
    }

    uint64_t total() const { return total_; }
    uint64_t producers() const { return producers_; }
    uint64_t loads() const { return loads_; }
    uint64_t stores() const { return stores_; }
    uint64_t branches() const { return branches_; }
    uint64_t fpOps() const { return fpOps_; }

  private:
    uint64_t total_ = 0;
    uint64_t producers_ = 0;
    uint64_t loads_ = 0;
    uint64_t stores_ = 0;
    uint64_t branches_ = 0;
    uint64_t fpOps_ = 0;
};

} // namespace vpprof

#endif // VPPROF_VM_TRACE_HH
