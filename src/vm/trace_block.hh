/**
 * @file
 * Columnar (SoA) trace blocks: the unit of the v3 trace format and of
 * the batch-replay fast path.
 *
 * A dynamic trace is chopped into fixed-capacity blocks; inside a
 * block every TraceRecord field lives in its own column. Columns that
 * carry redundancy are compressed:
 *  - seq is elided entirely when the block is contiguous (the common
 *    case — record i's seq is firstSeq + i), falling back to an
 *    explicit delta column for arbitrary streams;
 *  - pc, value and memAddr are zigzag-delta varints (hot loops make
 *    consecutive pcs near-equal, and values/addresses stride);
 *  - opcodes and directives are dictionary-coded (a per-block table of
 *    the distinct bytes plus bit-packed indices — a block touching 16
 *    opcodes pays 4 bits per record, a single-directive block pays 0);
 *  - the boolean/2-bit fields (writesReg, isMem, numSrcs) pack into
 *    one nibble per record;
 *  - dest/src registers stay raw byte columns (already minimal).
 * value and memAddr normally cover only the records that define them
 * (writesReg / isMem); a block holding irregular hand-built records
 * (non-zero value on a non-producer) switches those columns to dense
 * so the encoding is lossless for ANY record stream.
 *
 * Every block carries an FNV-1a checksum over its header fields and
 * payload, so a flipped bit anywhere in a block — including its
 * framing — is a structured decode failure, never silent corruption.
 *
 * The same encoded bytes serve both the in-memory resident form
 * (ColumnarTrace — roughly 4-5x smaller than the 56-byte AoS records)
 * and the on-disk v3 payload (trace_io frames them after its header),
 * so spills are a single buffer write and adoption is a single read.
 */

#ifndef VPPROF_VM_TRACE_BLOCK_HH
#define VPPROF_VM_TRACE_BLOCK_HH

#include <cstdint>
#include <vector>

#include "vm/trace.hh"

namespace vpprof
{

/** Records per block: big enough to amortize headers and dictionaries,
 *  small enough that a decoded block's columns stay cache-resident. */
constexpr uint32_t kTraceBlockCapacity = 4096;

/** Encoded block header size (count, payloadBytes, firstSeq, flags,
 *  checksum), little-endian. */
constexpr size_t kTraceBlockHeaderBytes = 4 + 4 + 8 + 4 + 8;

/** Structured outcome of decoding one block. */
enum class TraceBlockStatus
{
    Ok,
    Truncated,        ///< framing extends past the available bytes
    ChecksumMismatch, ///< header/payload bytes fail the checksum
    Malformed,        ///< framing fields are self-inconsistent
};

/**
 * One decoded block as parallel columns. The pointers alias a
 * TraceBlockScratch (or a BlockAssembler's staging buffers) and are
 * valid until that buffer decodes/assembles the next block. `record()`
 * re-assembles the AoS record for consumers that want one.
 */
struct TraceBlockView
{
    uint32_t count = 0;
    uint64_t firstSeq = 0;
    const uint64_t *seq = nullptr;
    const uint64_t *pc = nullptr;
    const uint8_t *op = nullptr;        ///< raw Opcode values
    const uint8_t *directive = nullptr; ///< raw Directive values
    const uint8_t *writesReg = nullptr; ///< 0/1
    const uint8_t *dest = nullptr;
    const int64_t *value = nullptr;
    const uint8_t *numSrcs = nullptr;
    const uint8_t *src0 = nullptr;
    const uint8_t *src1 = nullptr;
    const uint8_t *isMem = nullptr;     ///< 0/1
    const uint64_t *memAddr = nullptr;

    TraceRecord
    record(size_t i) const
    {
        TraceRecord rec;
        rec.seq = seq[i];
        rec.pc = pc[i];
        rec.op = static_cast<Opcode>(op[i]);
        rec.directive = static_cast<Directive>(directive[i]);
        rec.writesReg = writesReg[i] != 0;
        rec.dest = dest[i];
        rec.value = value[i];
        rec.numSrcs = numSrcs[i];
        rec.srcs = {src0[i], src1[i]};
        rec.isMem = isMem[i] != 0;
        rec.memAddr = memAddr[i];
        return rec;
    }
};

/** Reusable decode/staging columns (one per replaying thread). */
struct TraceBlockScratch
{
    TraceBlockScratch();

    std::vector<uint64_t> seq, pc, memAddr;
    std::vector<int64_t> value;
    std::vector<uint8_t> op, directive, writesReg, isMem, numSrcs,
        dest, src0, src1;

    /** A view over the first `count` entries of these columns. */
    TraceBlockView view(uint32_t count, uint64_t firstSeq) const;
};

/** Block-level trace consumer (the batch-replay counterpart of
 *  TraceSink). Blocks arrive in trace order; boundaries carry no
 *  meaning — only the concatenated record stream does. */
class TraceBlockSink
{
  public:
    virtual ~TraceBlockSink() = default;

    virtual void consumeBlock(const TraceBlockView &block) = 0;
};

/**
 * Accumulates records and emits encoded blocks. flush() appends one
 * encoded block (header + compressed columns) for the buffered
 * records; callers flush whenever full() (and once more at the end
 * for the partial tail block).
 */
class TraceBlockEncoder
{
  public:
    TraceBlockEncoder();

    void add(const TraceRecord &rec);

    bool full() const { return count_ == kTraceBlockCapacity; }
    uint32_t pending() const { return count_; }

    /** Encode and append the buffered records to `out`; resets. */
    void flush(std::vector<uint8_t> &out);

  private:
    TraceBlockScratch stage_;
    uint32_t count_ = 0;
    uint64_t firstSeq_ = 0;
    bool seqContiguous_ = true;
    bool valueDense_ = false;
    bool memDense_ = false;
};

/**
 * Decode the block at `data` (at most `size` bytes available). On Ok
 * fills `view` (pointers into `scratch`) and `*consumed` with the
 * block's total encoded size. `verifyChecksum` selects the integrity
 * pass; decoding is bounds-checked either way, so corrupt bytes are a
 * structured status, never UB.
 */
TraceBlockStatus decodeTraceBlock(const uint8_t *data, size_t size,
                                  TraceBlockScratch &scratch,
                                  TraceBlockView &view,
                                  size_t *consumed,
                                  bool verifyChecksum);

/**
 * Walk one block's framing without decoding its columns: validates
 * the header bounds (and the checksum when asked), returning the
 * block's record count and encoded size.
 */
TraceBlockStatus probeTraceBlock(const uint8_t *data, size_t size,
                                 size_t *consumed, uint32_t *count,
                                 bool verifyChecksum);

/**
 * A whole trace in encoded-block form: the resident representation of
 * the TraceRepository and the exact payload of a v3 trace file.
 */
struct ColumnarTrace
{
    std::vector<uint8_t> bytes;  ///< concatenated encoded blocks
    uint64_t records = 0;
    uint64_t blocks = 0;

    bool empty() const { return records == 0; }
};

/**
 * TraceSink that captures a stream into a ColumnarTrace (the VM's
 * capture path: records encode on the fly, so a 1M-instruction run
 * never materializes 64-byte AoS records).
 */
class ColumnarTraceBuilder : public TraceSink
{
  public:
    void
    record(const TraceRecord &rec) override
    {
        encoder_.add(rec);
        if (encoder_.full()) {
            encoder_.flush(trace_.bytes);
            ++trace_.blocks;
        }
        ++trace_.records;
    }

    /** Flush the tail block and surrender the trace. */
    ColumnarTrace
    take()
    {
        if (encoder_.pending() > 0) {
            encoder_.flush(trace_.bytes);
            ++trace_.blocks;
        }
        ColumnarTrace out = std::move(trace_);
        trace_ = ColumnarTrace{};
        return out;
    }

  private:
    TraceBlockEncoder encoder_;
    ColumnarTrace trace_;
};

/**
 * Stream a ColumnarTrace's blocks through `sink`, decoding each block
 * once into `scratch`. Returns records delivered. The encoded bytes
 * were produced in-process, so decoding is infallible here (a failure
 * panics — it would be memory corruption, not an I/O condition).
 */
uint64_t replayColumnarTrace(const ColumnarTrace &trace,
                             TraceBlockScratch &scratch,
                             TraceBlockSink *sink);

} // namespace vpprof

#endif // VPPROF_VM_TRACE_BLOCK_HH
