#include "vm/machine.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace vpprof
{

namespace
{

/** Two's-complement wrapping add/sub/mul (no signed-overflow UB). */
int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

int64_t
wrapMul(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                static_cast<uint64_t>(b));
}

/** Signed division with deterministic handling of the UB cases. */
int64_t
safeDiv(int64_t a, int64_t b)
{
    if (b == 0)
        return 0;
    if (a == INT64_MIN && b == -1)
        return 0;
    return a / b;
}

/** Signed remainder with deterministic handling of the UB cases. */
int64_t
safeRem(int64_t a, int64_t b)
{
    if (b == 0)
        return 0;
    if (a == INT64_MIN && b == -1)
        return 0;
    return a % b;
}

/** Truncating double->int64 conversion; NaN/out-of-range map to 0. */
int64_t
safeFtoi(double d)
{
    if (std::isnan(d) || d >= 9.223372036854776e18 ||
        d <= -9.223372036854776e18) {
        return 0;
    }
    return static_cast<int64_t>(d);
}

inline double
asDouble(int64_t bits)
{
    return std::bit_cast<double>(bits);
}

inline int64_t
asBits(double d)
{
    return std::bit_cast<int64_t>(d);
}

} // namespace

Machine::Machine(Program program, const MemoryImage &image)
    : program_(std::move(program))
{
    for (const auto &[addr, value] : image.words())
        memory_.store(addr, value);
    for (const auto &[reg, value] : image.registers())
        setReg(reg, value);
}

double
Machine::regDouble(RegId r) const
{
    return asDouble(reg(r));
}

RunResult
Machine::run(TraceSink *sink, uint64_t max_insts)
{
    RunResult result;

    while (result.instructionsExecuted < max_insts) {
        if (pc_ >= program_.size())
            vpprof_fatal("pc ", pc_, " fell off program '",
                         program_.name(), "'");
        const Instruction &inst = program_.at(pc_);

        TraceRecord rec;
        rec.seq = seq_;
        rec.pc = pc_;
        rec.op = inst.op;
        rec.directive = inst.directive;
        rec.writesReg = writesRegister(inst.op);
        rec.dest = inst.dest;
        rec.numSrcs = static_cast<uint8_t>(numSources(inst.op));
        rec.srcs = {inst.src1, inst.src2};

        uint64_t next_pc = pc_ + 1;
        int64_t a = reg(inst.src1);
        int64_t b = reg(inst.src2);
        int64_t value = 0;

        switch (inst.op) {
          case Opcode::Add: value = wrapAdd(a, b); break;
          case Opcode::Sub: value = wrapSub(a, b); break;
          case Opcode::Mul: value = wrapMul(a, b); break;
          case Opcode::Div: value = safeDiv(a, b); break;
          case Opcode::Rem: value = safeRem(a, b); break;
          case Opcode::And: value = a & b; break;
          case Opcode::Or: value = a | b; break;
          case Opcode::Xor: value = a ^ b; break;
          case Opcode::Shl:
            value = static_cast<int64_t>(
                static_cast<uint64_t>(a) << (b & 63));
            break;
          case Opcode::Shr:
            value = static_cast<int64_t>(
                static_cast<uint64_t>(a) >> (b & 63));
            break;
          case Opcode::Sar: value = a >> (b & 63); break;
          case Opcode::Slt: value = a < b ? 1 : 0; break;
          case Opcode::Sltu:
            value = static_cast<uint64_t>(a) < static_cast<uint64_t>(b)
                ? 1 : 0;
            break;

          case Opcode::Addi: value = wrapAdd(a, inst.imm); break;
          case Opcode::Subi: value = wrapSub(a, inst.imm); break;
          case Opcode::Muli: value = wrapMul(a, inst.imm); break;
          case Opcode::Divi: value = safeDiv(a, inst.imm); break;
          case Opcode::Remi: value = safeRem(a, inst.imm); break;
          case Opcode::Andi: value = a & inst.imm; break;
          case Opcode::Ori: value = a | inst.imm; break;
          case Opcode::Xori: value = a ^ inst.imm; break;
          case Opcode::Shli:
            value = static_cast<int64_t>(
                static_cast<uint64_t>(a) << (inst.imm & 63));
            break;
          case Opcode::Shri:
            value = static_cast<int64_t>(
                static_cast<uint64_t>(a) >> (inst.imm & 63));
            break;
          case Opcode::Sari: value = a >> (inst.imm & 63); break;
          case Opcode::Slti: value = a < inst.imm ? 1 : 0; break;

          case Opcode::Mov: value = a; break;
          case Opcode::Movi: value = inst.imm; break;

          case Opcode::Ld:
            rec.isMem = true;
            rec.memAddr = static_cast<uint64_t>(wrapAdd(a, inst.imm));
            value = memory_.load(rec.memAddr);
            break;
          case Opcode::St:
            rec.isMem = true;
            rec.memAddr = static_cast<uint64_t>(wrapAdd(a, inst.imm));
            memory_.store(rec.memAddr, b);
            break;

          case Opcode::Fadd:
            value = asBits(asDouble(a) + asDouble(b));
            break;
          case Opcode::Fsub:
            value = asBits(asDouble(a) - asDouble(b));
            break;
          case Opcode::Fmul:
            value = asBits(asDouble(a) * asDouble(b));
            break;
          case Opcode::Fdiv:
            value = asBits(asDouble(a) / asDouble(b));
            break;
          case Opcode::Fmov: value = a; break;
          case Opcode::Fneg: value = asBits(-asDouble(a)); break;
          case Opcode::Fabs: value = asBits(std::fabs(asDouble(a))); break;
          case Opcode::Fmin:
            value = asBits(std::fmin(asDouble(a), asDouble(b)));
            break;
          case Opcode::Fmax:
            value = asBits(std::fmax(asDouble(a), asDouble(b)));
            break;
          case Opcode::Fsqrt:
            value = asBits(std::sqrt(asDouble(a)));
            break;
          case Opcode::Itof:
            value = asBits(static_cast<double>(a));
            break;
          case Opcode::Ftoi:
            value = safeFtoi(asDouble(a));
            break;

          case Opcode::Fld:
            rec.isMem = true;
            rec.memAddr = static_cast<uint64_t>(wrapAdd(a, inst.imm));
            value = memory_.load(rec.memAddr);
            break;
          case Opcode::Fst:
            rec.isMem = true;
            rec.memAddr = static_cast<uint64_t>(wrapAdd(a, inst.imm));
            memory_.store(rec.memAddr, b);
            break;

          case Opcode::Beq:
            if (a == b)
                next_pc = static_cast<uint64_t>(inst.imm);
            break;
          case Opcode::Bne:
            if (a != b)
                next_pc = static_cast<uint64_t>(inst.imm);
            break;
          case Opcode::Blt:
            if (a < b)
                next_pc = static_cast<uint64_t>(inst.imm);
            break;
          case Opcode::Bge:
            if (a >= b)
                next_pc = static_cast<uint64_t>(inst.imm);
            break;
          case Opcode::Bltu:
            if (static_cast<uint64_t>(a) < static_cast<uint64_t>(b))
                next_pc = static_cast<uint64_t>(inst.imm);
            break;
          case Opcode::Fblt:
            if (asDouble(a) < asDouble(b))
                next_pc = static_cast<uint64_t>(inst.imm);
            break;
          case Opcode::Jmp:
            next_pc = static_cast<uint64_t>(inst.imm);
            break;
          case Opcode::Call:
            value = static_cast<int64_t>(pc_ + 1);
            next_pc = static_cast<uint64_t>(inst.imm);
            break;
          case Opcode::JmpR:
            next_pc = static_cast<uint64_t>(a);
            break;

          case Opcode::Nop:
            break;
          case Opcode::Halt:
            result.halted = true;
            break;

          case Opcode::NumOpcodes:
            vpprof_panic("executing NumOpcodes");
        }

        if (rec.writesReg) {
            rec.value = value;
            setReg(inst.dest, value);
        }

        ++seq_;
        ++result.instructionsExecuted;
        if (sink)
            sink->record(rec);

        if (result.halted)
            break;
        pc_ = next_pc;
    }

    return result;
}

} // namespace vpprof
