/**
 * @file
 * Sparse word-addressed data memory and initial memory images.
 *
 * Memory is an array of 64-bit words indexed by word address; a word can
 * hold either an integer or the bit pattern of an IEEE double. Word
 * addressing (rather than byte addressing) keeps workload code free of
 * alignment arithmetic without changing any value-prediction behaviour.
 */

#ifndef VPPROF_VM_MEMORY_HH
#define VPPROF_VM_MEMORY_HH

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace vpprof
{

/** Sparse 64-bit word memory; unwritten words read as zero. */
class Memory
{
  public:
    /** Read the word at an address (0 when never written). */
    int64_t
    load(uint64_t addr) const
    {
        auto it = words_.find(addr);
        return it == words_.end() ? 0 : it->second;
    }

    /** Write the word at an address. */
    void store(uint64_t addr, int64_t value) { words_[addr] = value; }

    /** Read a double stored via storeDouble. */
    double
    loadDouble(uint64_t addr) const
    {
        return std::bit_cast<double>(load(addr));
    }

    /** Store a double as its bit pattern. */
    void
    storeDouble(uint64_t addr, double value)
    {
        store(addr, std::bit_cast<int64_t>(value));
    }

    /** Number of distinct words ever written. */
    size_t footprint() const { return words_.size(); }

    void clear() { words_.clear(); }

  private:
    std::unordered_map<uint64_t, int64_t> words_;
};

/**
 * An initial memory image plus optional initial register values: the
 * "input set" of a workload run. Programs are fixed across runs; only
 * the image varies, so static instruction addresses stay comparable
 * between profile images (Section 4's requirement).
 */
class MemoryImage
{
  public:
    /** Set one word. */
    void store(uint64_t addr, int64_t value) { words_[addr] = value; }

    /** Set one double. */
    void
    storeDouble(uint64_t addr, double value)
    {
        words_[addr] = std::bit_cast<int64_t>(value);
    }

    /** Set a contiguous block starting at addr. */
    void
    storeBlock(uint64_t addr, const std::vector<int64_t> &values)
    {
        for (size_t i = 0; i < values.size(); ++i)
            words_[addr + i] = values[i];
    }

    /** Seed an initial register value (applied before execution). */
    void
    setRegister(uint8_t reg, int64_t value)
    {
        regs_[reg] = value;
    }

    const std::unordered_map<uint64_t, int64_t> &words() const
    {
        return words_;
    }

    const std::unordered_map<uint8_t, int64_t> &registers() const
    {
        return regs_;
    }

  private:
    std::unordered_map<uint64_t, int64_t> words_;
    std::unordered_map<uint8_t, int64_t> regs_;
};

} // namespace vpprof

#endif // VPPROF_VM_MEMORY_HH
