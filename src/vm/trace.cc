#include "vm/trace.hh"

namespace vpprof
{

void
CountingTraceSink::record(const TraceRecord &rec)
{
    ++total_;
    if (rec.writesReg)
        ++producers_;
    if (isLoad(rec.op))
        ++loads_;
    if (isStore(rec.op))
        ++stores_;
    if (isControl(rec.op))
        ++branches_;
    if (isFp(rec.op))
        ++fpOps_;
}

} // namespace vpprof
