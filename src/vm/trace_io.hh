/**
 * @file
 * Binary trace files: persist a dynamic trace to disk and replay it
 * later, so expensive workload runs can be captured once and analyzed
 * many times — the role SHADE's trace files played for the paper.
 *
 * Format: an 16-byte header ("VPTRACE1", record count) followed by
 * fixed-width little-endian records. The format is versioned by the
 * magic string; readers reject anything they do not understand.
 */

#ifndef VPPROF_VM_TRACE_IO_HH
#define VPPROF_VM_TRACE_IO_HH

#include <cstdint>
#include <fstream>
#include <string>

#include "vm/trace.hh"

namespace vpprof
{

/**
 * A trace sink that streams records into a binary trace file. The
 * record count in the header is fixed up on close().
 */
class TraceFileWriter : public TraceSink
{
  public:
    /** Open (truncate) the file; fatal when it cannot be created. */
    explicit TraceFileWriter(const std::string &path);

    ~TraceFileWriter() override;

    void record(const TraceRecord &rec) override;

    /** Finalize the header and close; implicit in the destructor. */
    void close();

    uint64_t recordsWritten() const { return count_; }

  private:
    std::string path_;
    std::ofstream out_;
    uint64_t count_ = 0;
    bool closed_ = false;
};

/**
 * Reads a binary trace file. Records can be streamed into any
 * TraceSink (replay) or pulled one at a time.
 */
class TraceFileReader
{
  public:
    /** Open and validate the header; fatal on a malformed file. */
    explicit TraceFileReader(const std::string &path);

    /** Records the header promises. */
    uint64_t recordCount() const { return count_; }

    /** Read the next record; false at end of trace. */
    bool next(TraceRecord &rec);

    /** Stream every remaining record into a sink; returns how many. */
    uint64_t replay(TraceSink *sink);

  private:
    std::ifstream in_;
    uint64_t count_ = 0;
    uint64_t read_ = 0;
};

} // namespace vpprof

#endif // VPPROF_VM_TRACE_IO_HH
