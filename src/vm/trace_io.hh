/**
 * @file
 * Binary trace files: persist a dynamic trace to disk and replay it
 * later, so expensive workload runs can be captured once and analyzed
 * many times — the role SHADE's trace files played for the paper.
 *
 * Format v2: a 16-byte header ("VPTRACE" + version byte, record
 * count), fixed-width little-endian records, and an 8-byte FNV-1a
 * checksum trailer over the record payload. v1 files (no trailer) are
 * still readable, version-gated, so pre-existing caches keep working.
 *
 * Durability: the writer streams into `<path>.tmp.<pid>` and commits
 * with flush + atomic rename in close(), so a crash at any point
 * leaves either the complete old file or the complete new file at
 * `path` — never a torn one. Readers validate the magic, the version,
 * the payload size, and (v2) the checksum, and report structured
 * TraceIoStatus errors instead of silently truncating.
 *
 * Fault injection: the write/commit/open/read sites consult the
 * failpoint registry ("trace_io.write", "trace_io.commit",
 * "trace_io.open", "trace_io.read"), so crash-consistency tests can
 * deterministically simulate disk-full, torn writes and short reads.
 */

#ifndef VPPROF_VM_TRACE_IO_HH
#define VPPROF_VM_TRACE_IO_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "vm/trace.hh"

namespace vpprof
{

/** Structured outcome of trace-file validation, reads and writes. */
enum class TraceIoStatus
{
    Ok,               ///< file healthy / operation succeeded
    IoError,          ///< file cannot be opened or read at all
    ShortHeader,      ///< fewer bytes than the fixed header
    BadMagic,         ///< not a vpprof trace file at all
    VersionMismatch,  ///< vpprof trace, but an unsupported version
    Truncated,        ///< payload size disagrees with the header count
    ChecksumMismatch, ///< v2 payload does not match its trailer
    WriteFailed,      ///< a write or the commit rename failed
    NoSpace,          ///< the device is full (ENOSPC)
};

/** Human-readable name of a TraceIoStatus (for messages and tests). */
const char *traceIoStatusName(TraceIoStatus status);

/**
 * How much of a trace file tryOpen() validates. Full streams the v2
 * payload and verifies the checksum trailer — the integrity boundary,
 * paid once per file per process. HeaderOnly checks the magic, the
 * version and the payload size but skips the payload pass; it exists
 * so repeated same-process replays of a file that already passed Full
 * verification (tracked by the TraceRepository) avoid re-hashing tens
 * of megabytes per replay. Use Full whenever the file's history is
 * unknown.
 */
enum class TraceVerify
{
    Full,
    HeaderOnly,
};

/**
 * A trace sink that streams records into a binary trace file through
 * a write-to-temp + flush + atomic-rename commit. Failures (including
 * a full disk) are latched into status() and surfaced by close();
 * nothing in the writer is fatal, so callers choose between loud
 * errors (the CLI) and graceful degradation (the trace cache).
 */
class TraceFileWriter : public TraceSink
{
  public:
    /**
     * Open the temp file for `path`. On failure the writer is inert:
     * record() drops and close() reports the latched status.
     */
    explicit TraceFileWriter(const std::string &path);

    /**
     * Closes if needed; a failure on this path is logged through
     * vpprof_warn_limited (a destructor cannot return status — call
     * close() when the outcome matters).
     */
    ~TraceFileWriter() override;

    void record(const TraceRecord &rec) override;

    /**
     * Commit: append the checksum trailer, fix up the header count,
     * flush, verify the stream, and atomically rename the temp file
     * over `path`. Returns Ok on a durable commit; on any failure the
     * temp file is removed, `path` is untouched, and the first error
     * (WriteFailed / NoSpace / IoError) is returned. Idempotent.
     */
    TraceIoStatus close();

    /** First error latched by the constructor/record()/close(). */
    TraceIoStatus status() const { return status_; }

    uint64_t recordsWritten() const { return count_; }

  private:
    std::string path_;
    std::string tmpPath_;
    std::ofstream out_;
    uint64_t count_ = 0;
    uint64_t checksum_;
    bool closed_ = false;
    TraceIoStatus status_ = TraceIoStatus::Ok;
};

/**
 * Reads a binary trace file. Records can be streamed into any
 * TraceSink (replay) or pulled one at a time.
 *
 * Two opening modes:
 *  - The constructor is strict: any malformed file is fatal (a user
 *    handed us a broken file; the CLI wants the loud diagnostic).
 *  - tryOpen() is recoverable: it validates the header, the version,
 *    the payload size and the v2 checksum, and returns nullptr plus a
 *    TraceIoStatus so callers (e.g. a trace cache probing for
 *    reusable files) can quarantine the file and regenerate.
 */
class TraceFileReader
{
  public:
    /** Open and validate; fatal on a malformed file. */
    explicit TraceFileReader(const std::string &path);

    /**
     * Open and validate a trace file without ever exiting.
     * @param[out] status Why the open failed (Ok on success).
     * @param verify How deep to validate (default: full checksum).
     * @return The reader, or nullptr when the file is unusable.
     */
    static std::unique_ptr<TraceFileReader>
    tryOpen(const std::string &path, TraceIoStatus *status = nullptr,
            TraceVerify verify = TraceVerify::Full);

    /** Records the header promises. */
    uint64_t recordCount() const { return count_; }

    /** Records handed out (or skipped) so far. */
    uint64_t recordsRead() const { return read_; }

    /**
     * Read the next record; false at end of trace. On an unexpected
     * short read the reader is fatal in strict mode and otherwise
     * stops, recording the error in status().
     */
    bool next(TraceRecord &rec);

    /**
     * Seek forward past `n` records without decoding them (resuming a
     * replay that already delivered a prefix). False on seek failure.
     */
    bool skip(uint64_t n);

    /** Stream every remaining record into a sink; returns how many. */
    uint64_t replay(TraceSink *sink);

    /** Error state of the last operation (Ok while healthy). */
    TraceIoStatus status() const { return status_; }

  private:
    struct Unchecked
    {
    };

    TraceFileReader(const std::string &path, Unchecked);

    /** Validate header/version/size (+ checksum when Full). */
    TraceIoStatus validate(TraceVerify verify);

    /** Latch an error; fatal (with status name + path) when strict. */
    void fail(TraceIoStatus status);

    std::string path_;
    std::ifstream in_;
    uint64_t count_ = 0;
    uint64_t read_ = 0;
    char version_;
    bool strict_ = true;
    TraceIoStatus status_ = TraceIoStatus::Ok;
};

} // namespace vpprof

#endif // VPPROF_VM_TRACE_IO_HH
