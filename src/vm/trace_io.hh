/**
 * @file
 * Binary trace files: persist a dynamic trace to disk and replay it
 * later, so expensive workload runs can be captured once and analyzed
 * many times — the role SHADE's trace files played for the paper.
 *
 * Format: a 16-byte header ("VPTRACE" + version byte, record count)
 * followed by fixed-width little-endian records. Readers validate the
 * magic, the format version, and that the payload size matches the
 * record count the header promises, and report structured
 * TraceIoStatus errors instead of silently truncating.
 */

#ifndef VPPROF_VM_TRACE_IO_HH
#define VPPROF_VM_TRACE_IO_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "vm/trace.hh"

namespace vpprof
{

/** Structured outcome of trace-file validation and reads. */
enum class TraceIoStatus
{
    Ok,              ///< file healthy / operation succeeded
    IoError,         ///< file cannot be opened or read at all
    ShortHeader,     ///< fewer bytes than the fixed header
    BadMagic,        ///< not a vpprof trace file at all
    VersionMismatch, ///< vpprof trace, but an unsupported version
    Truncated,       ///< payload size disagrees with the header count
};

/** Human-readable name of a TraceIoStatus (for messages and tests). */
const char *traceIoStatusName(TraceIoStatus status);

/**
 * A trace sink that streams records into a binary trace file. The
 * record count in the header is fixed up on close().
 */
class TraceFileWriter : public TraceSink
{
  public:
    /** Open (truncate) the file; fatal when it cannot be created. */
    explicit TraceFileWriter(const std::string &path);

    ~TraceFileWriter() override;

    void record(const TraceRecord &rec) override;

    /** Finalize the header and close; implicit in the destructor. */
    void close();

    uint64_t recordsWritten() const { return count_; }

  private:
    std::string path_;
    std::ofstream out_;
    uint64_t count_ = 0;
    bool closed_ = false;
};

/**
 * Reads a binary trace file. Records can be streamed into any
 * TraceSink (replay) or pulled one at a time.
 *
 * Two opening modes:
 *  - The constructor is strict: any malformed file is fatal (a user
 *    handed us a broken file; the CLI wants the loud diagnostic).
 *  - tryOpen() is recoverable: it validates the header, the version,
 *    and the payload size, and returns nullptr plus a TraceIoStatus so
 *    callers (e.g. a trace cache probing for reusable files) can fall
 *    back to regenerating the trace.
 */
class TraceFileReader
{
  public:
    /** Open and validate; fatal on a malformed file. */
    explicit TraceFileReader(const std::string &path);

    /**
     * Open and fully validate a trace file without ever exiting.
     * @param[out] status Why the open failed (Ok on success).
     * @return The reader, or nullptr when the file is unusable.
     */
    static std::unique_ptr<TraceFileReader>
    tryOpen(const std::string &path, TraceIoStatus *status = nullptr);

    /** Records the header promises. */
    uint64_t recordCount() const { return count_; }

    /**
     * Read the next record; false at end of trace. On an unexpected
     * short read the reader is fatal in strict mode and otherwise
     * stops, recording the error in status().
     */
    bool next(TraceRecord &rec);

    /** Stream every remaining record into a sink; returns how many. */
    uint64_t replay(TraceSink *sink);

    /** Error state of the last operation (Ok while healthy). */
    TraceIoStatus status() const { return status_; }

  private:
    struct Unchecked
    {
    };

    TraceFileReader(const std::string &path, Unchecked);

    /** Validate header/version/size; returns the failure reason. */
    TraceIoStatus validate(const std::string &path);

    std::ifstream in_;
    uint64_t count_ = 0;
    uint64_t read_ = 0;
    bool strict_ = true;
    TraceIoStatus status_ = TraceIoStatus::Ok;
};

} // namespace vpprof

#endif // VPPROF_VM_TRACE_IO_HH
