/**
 * @file
 * Binary trace files: persist a dynamic trace to disk and replay it
 * later, so expensive workload runs can be captured once and analyzed
 * many times — the role SHADE's trace files played for the paper.
 *
 * Version ladder:
 *  - v3 (default): a 16-byte header ("VPTRACE" + version byte, record
 *    count) followed by self-checksummed columnar blocks
 *    (trace_block.hh) — delta/varint/dictionary compressed, read via
 *    mmap, decoded block-at-a-time into SoA scratch columns.
 *  - v2: the same header, fixed-width 39-byte little-endian records,
 *    and an 8-byte FNV-1a checksum trailer over the record payload.
 *  - v1: v2 without the trailer.
 * Readers auto-detect the version, so v1/v2 caches stay readable by a
 * v3 session; writers default to v3 but can be pinned with the
 * VPPROF_TRACE_FORMAT environment knob (or an explicit TraceFormat).
 *
 * Durability: the writer streams into `<path>.tmp.<pid>` and commits
 * with flush + atomic rename in close(), so a crash at any point
 * leaves either the complete old file or the complete new file at
 * `path` — never a torn one. Readers validate the magic, the version,
 * the payload framing, and (Full verify) every checksum, reporting
 * structured TraceIoStatus errors instead of silently truncating. A
 * v3 file whose tail block was torn off reports the distinct
 * TruncatedFile status so quarantine logs name the actual failure.
 *
 * Fault injection: the write/commit/open/read sites consult the
 * failpoint registry ("trace_io.write", "trace_io.commit",
 * "trace_io.open", "trace_io.read"), so crash-consistency tests can
 * deterministically simulate disk-full, torn writes and short reads.
 */

#ifndef VPPROF_VM_TRACE_IO_HH
#define VPPROF_VM_TRACE_IO_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "vm/trace.hh"
#include "vm/trace_block.hh"

namespace vpprof
{

/** Structured outcome of trace-file validation, reads and writes. */
enum class TraceIoStatus
{
    Ok,               ///< file healthy / operation succeeded
    IoError,          ///< file cannot be opened or read at all
    ShortHeader,      ///< fewer bytes than the fixed header
    BadMagic,         ///< not a vpprof trace file at all
    VersionMismatch,  ///< vpprof trace, but an unsupported version
    Truncated,        ///< payload size disagrees with the header count
    TruncatedFile,    ///< v3 tail block torn off / file shorter than mapped
    ChecksumMismatch, ///< stored checksum does not match the payload
    WriteFailed,      ///< a write or the commit rename failed
    NoSpace,          ///< the device is full (ENOSPC)
};

/** Human-readable name of a TraceIoStatus (for messages and tests). */
const char *traceIoStatusName(TraceIoStatus status);

/** On-disk format a writer produces (readers auto-detect). */
enum class TraceFormat
{
    V2, ///< fixed-width AoS records + checksum trailer
    V3, ///< columnar delta-compressed blocks
};

/**
 * The format writers use when none is given explicitly: v3, unless
 * VPPROF_TRACE_FORMAT=2 pins the previous format (the knob CI's
 * cache-migration smoke uses to capture a v2 cache on purpose).
 * Re-read from the environment on every call so tests can flip it.
 */
TraceFormat defaultTraceFormat();

/**
 * How much of a trace file tryOpen() validates. Full verifies the
 * payload checksums (the v2 trailer / every v3 block) — the integrity
 * boundary, paid once per file per process. HeaderOnly checks the
 * magic, the version and the payload framing but skips the checksum
 * pass; it exists so repeated same-process replays of a file that
 * already passed Full verification (tracked by the TraceRepository)
 * avoid re-hashing tens of megabytes per replay. Use Full whenever
 * the file's history is unknown.
 */
enum class TraceVerify
{
    Full,
    HeaderOnly,
};

/**
 * A trace sink that streams records into a binary trace file through
 * a write-to-temp + flush + atomic-rename commit. Failures (including
 * a full disk) are latched into status() and surfaced by close();
 * nothing in the writer is fatal, so callers choose between loud
 * errors (the CLI) and graceful degradation (the trace cache).
 *
 * v3 writes buffer records into a columnar block encoder and write
 * one encoded block at a time; the per-record failpoint and the
 * atomic commit protocol are identical across formats.
 */
class TraceFileWriter : public TraceSink
{
  public:
    /** Open the temp file for `path` in defaultTraceFormat(). */
    explicit TraceFileWriter(const std::string &path);

    /**
     * Open the temp file for `path` in an explicit format. On failure
     * the writer is inert: record() drops and close() reports the
     * latched status.
     */
    TraceFileWriter(const std::string &path, TraceFormat format);

    /**
     * Closes if needed; a failure on this path is logged through
     * vpprof_warn_limited (a destructor cannot return status — call
     * close() when the outcome matters).
     */
    ~TraceFileWriter() override;

    void record(const TraceRecord &rec) override;

    /**
     * Commit: flush the tail block (v3) or append the checksum
     * trailer (v2), fix up the header count, flush, verify the
     * stream, and atomically rename the temp file over `path`.
     * Returns Ok on a durable commit; on any failure the temp file is
     * removed, `path` is untouched, and the first error (WriteFailed /
     * NoSpace / IoError) is returned. Idempotent.
     */
    TraceIoStatus close();

    /** First error latched by the constructor/record()/close(). */
    TraceIoStatus status() const { return status_; }

    uint64_t recordsWritten() const { return count_; }

  private:
    void flushBlock();

    std::string path_;
    std::string tmpPath_;
    std::ofstream out_;
    TraceFormat format_;
    uint64_t count_ = 0;
    uint64_t checksum_;
    TraceBlockEncoder encoder_;        // v3 block staging
    std::vector<uint8_t> blockBuf_;    // v3 encoded-block scratch
    uint64_t corruptPending_ = 0;      // injected flips owed to this block
    bool closed_ = false;
    TraceIoStatus status_ = TraceIoStatus::Ok;
};

/**
 * Persist an already-encoded columnar trace as a v3 file through the
 * same temp + flush + atomic-rename commit protocol. This is the
 * TraceRepository's bulk path: capture encodes once, and persisting
 * (cache write, spill) is a framed buffer write instead of a second
 * per-record encode. The "trace_io.write" failpoint fires once per
 * block here (a trace is hundreds of blocks, so countdown specs still
 * land mid-file), "trace_io.commit" once at the rename.
 */
TraceIoStatus writeColumnarTraceFile(const std::string &path,
                                     const ColumnarTrace &trace);

/**
 * Reads a binary trace file (any version). Records can be streamed
 * into any TraceSink (replay) or pulled one at a time; v3 files can
 * additionally be streamed block-at-a-time into a TraceBlockSink or
 * adopted wholesale as a ColumnarTrace.
 *
 * v3 files are mmap-ed (with a buffered-read fallback) and decoded
 * lazily, one block per 4096 records; v1/v2 files stream through the
 * original ifstream path. The repository's lock + atomic-rename
 * discipline means a mapped file is never modified in place — a
 * concurrent re-commit replaces the directory entry while the mapped
 * inode lives on.
 *
 * Two opening modes:
 *  - The constructor is strict: any malformed file is fatal (a user
 *    handed us a broken file; the CLI wants the loud diagnostic).
 *  - tryOpen() is recoverable: it validates the header, the version,
 *    the payload framing and (Full) the checksums, and returns
 *    nullptr plus a TraceIoStatus so callers (e.g. a trace cache
 *    probing for reusable files) can quarantine and regenerate.
 */
class TraceFileReader
{
  public:
    /** Open and validate; fatal on a malformed file. */
    explicit TraceFileReader(const std::string &path);

    ~TraceFileReader();

    /**
     * Open and validate a trace file without ever exiting.
     * @param[out] status Why the open failed (Ok on success).
     * @param verify How deep to validate (default: full checksum).
     * @return The reader, or nullptr when the file is unusable.
     */
    static std::unique_ptr<TraceFileReader>
    tryOpen(const std::string &path, TraceIoStatus *status = nullptr,
            TraceVerify verify = TraceVerify::Full);

    /** Records the header promises. */
    uint64_t recordCount() const { return count_; }

    /** Records handed out (or skipped) so far. */
    uint64_t recordsRead() const { return read_; }

    /** '1', '2' or '3'. */
    char version() const { return version_; }

    /** Columnar blocks in a v3 file (0 for v1/v2). */
    uint64_t blockCount() const { return blockCount_; }

    /** Blocks this reader has decoded so far. */
    uint64_t blocksDecoded() const { return blocksDecoded_; }

    /** Bytes of file this reader mapped (or buffered), v3 only. */
    uint64_t mappedBytes() const { return mappedBytes_; }

    /**
     * Read the next record; false at end of trace. On an unexpected
     * short read the reader is fatal in strict mode and otherwise
     * stops, recording the error in status().
     */
    bool next(TraceRecord &rec);

    /**
     * Seek forward past `n` records without decoding them (resuming a
     * replay that already delivered a prefix); v3 skips whole blocks
     * by their framing. False on seek failure.
     */
    bool skip(uint64_t n);

    /** Stream every remaining record into a sink; returns how many. */
    uint64_t replay(TraceSink *sink);

    /**
     * v3 only: stream every remaining block into a block sink,
     * decoding each block once. The "trace_io.read" failpoint fires
     * once per block on this path (the record-granular ladder lives
     * in next()). Returns records delivered.
     */
    uint64_t replayBlocks(TraceBlockSink *sink);

    /**
     * v3 only: hand the file's encoded payload over as a resident
     * ColumnarTrace (one buffer copy, no decode). False for v1/v2 —
     * those transcode through next() instead.
     */
    bool readColumnar(ColumnarTrace &out) const;

    /** Error state of the last operation (Ok while healthy). */
    TraceIoStatus status() const { return status_; }

  private:
    struct Unchecked
    {
    };

    TraceFileReader(const std::string &path, Unchecked);

    /** Validate header/version/framing (+ checksums when Full). */
    TraceIoStatus validate(TraceVerify verify);

    /** Map (or buffer) a v3 file and walk its block framing. */
    TraceIoStatus mapBlocks(TraceVerify verify);

    /** Decode the block at the cursor into the scratch columns. */
    bool decodeNextBlock();

    /** Latch an error; fatal (with status name + path) when strict. */
    void fail(TraceIoStatus status);

    std::string path_;
    std::ifstream in_;
    uint64_t count_ = 0;
    uint64_t read_ = 0;
    char version_;
    bool strict_ = true;
    TraceIoStatus status_ = TraceIoStatus::Ok;

    // v3 state: the mapped payload and the lazy block cursor.
    void *mapBase_ = nullptr;          // munmap target (nullptr: none)
    size_t mapSize_ = 0;
    std::vector<uint8_t> ownedBytes_;  // fallback when mmap fails
    const uint8_t *payload_ = nullptr; // blocks (file minus header)
    size_t payloadSize_ = 0;
    size_t blockOff_ = 0;              // next undecoded block
    uint64_t blockCount_ = 0;
    uint64_t blocksDecoded_ = 0;
    uint64_t mappedBytes_ = 0;
    std::unique_ptr<TraceBlockScratch> scratch_;
    TraceBlockView view_;
    uint32_t viewIdx_ = 0;             // consumed prefix of view_
};

} // namespace vpprof

#endif // VPPROF_VM_TRACE_IO_HH
