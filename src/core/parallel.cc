#include "core/parallel.hh"

#include "common/telemetry/telemetry.hh"

namespace vpprof
{

namespace
{

/** Set while the current thread executes a cell: nested forEach runs
 *  inline instead of re-entering the pool (which would deadlock the
 *  waiting outer batch). */
thread_local bool tls_in_cell = false;

} // namespace

ExperimentRunner::ExperimentRunner(unsigned jobs)
    : jobs_(jobs != 0 ? jobs
                      : std::max(1u, std::thread::hardware_concurrency()))
{
    // jobs_ - 1 workers: the thread calling forEach is the last lane.
    for (unsigned i = 1; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ExperimentRunner::~ExperimentRunner()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ExperimentRunner::drainBatch()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (next_ < n_) {
        size_t i = next_++;
        lock.unlock();
        tls_in_cell = true;
        {
            // One coarse span per cell, never per instruction: a sweep
            // runs thousands of cells at most, so the trace stays small
            // and every worker lane shows up in Perfetto.
            VPPROF_SPAN("runner.cell");
            (*fn_)(i);
        }
        tls_in_cell = false;
        lock.lock();
        ++completed_;
        if (completed_ == n_)
            done_.notify_all();
    }
}

void
ExperimentRunner::workerLoop()
{
    static const telemetry::HistogramMetric queue_wait(
        "runner.queue_wait.us");
    uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return shutdown_ || (generation_ != seen && next_ < n_);
            });
            if (shutdown_)
                return;
            seen = generation_;
            // Publish-to-pickup latency of this worker for the batch:
            // how long cells sat queued before a lane started pulling.
            if constexpr (telemetry::kEnabled)
                queue_wait.observe(
                    (telemetry::nowNs() - batchPublishNs_) / 1000);
        }
        drainBatch();
    }
}

void
ExperimentRunner::forEach(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs_ <= 1 || n == 1 || tls_in_cell) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        fn_ = &fn;
        n_ = n;
        next_ = 0;
        completed_ = 0;
        ++generation_;
        if constexpr (telemetry::kEnabled)
            batchPublishNs_ = telemetry::nowNs();
    }
    wake_.notify_all();
    drainBatch();

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return completed_ == n_; });
    fn_ = nullptr;
    n_ = 0;
}

} // namespace vpprof
