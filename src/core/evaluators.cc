#include "core/evaluators.hh"

#include "common/logging.hh"

namespace vpprof
{

ClassificationEvaluator::ClassificationEvaluator(Classifier &classifier)
    : classifier_(classifier),
      predictor_(infiniteConfig())
{
}

void
ClassificationEvaluator::step(uint64_t pc, int64_t value,
                              Directive directive)
{
    Prediction pred = predictor_.predict(pc, directive);
    bool correct = pred.hit && pred.value == value;
    if (pred.hit) {
        bool take = classifier_.shouldPredict(pc, directive);
        if (correct) {
            ++acc_.corrects;
            if (take)
                ++acc_.correctsAccepted;
        } else {
            ++acc_.mispredictions;
            if (!take)
                ++acc_.mispredictionsCaught;
        }
        classifier_.train(pc, correct);
    }
    predictor_.update(pc, value, correct, directive, true);
}

void
ClassificationEvaluator::record(const TraceRecord &rec)
{
    if (!rec.writesReg)
        return;
    step(rec.pc, rec.value, rec.directive);
}

void
ClassificationEvaluator::consumeBlock(const TraceBlockView &block)
{
    for (uint32_t i = 0; i < block.count; ++i) {
        if (!block.writesReg[i])
            continue;
        step(block.pc[i], block.value[i],
             static_cast<Directive>(block.directive[i]));
    }
}

FiniteTableEvaluator::FiniteTableEvaluator(VpPolicy policy,
                                           const PredictorConfig &config)
    : policy_(policy),
      predictor_(config)
{
    if (policy != VpPolicy::Fsm && policy != VpPolicy::Profile)
        vpprof_panic("evaluateFiniteTable: policy must be Fsm or "
                     "Profile");
}

void
FiniteTableEvaluator::step(uint64_t pc, int64_t value, Directive directive)
{
    ++stats_.producers;
    bool tagged = directive != Directive::None;
    bool candidate = policy_ == VpPolicy::Profile ? tagged : true;
    if (candidate)
        ++stats_.candidates;

    Prediction pred = predictor_.predict(pc, directive);
    bool use = policy_ == VpPolicy::Fsm
        ? pred.hit && pred.counterApproves
        : pred.hit && tagged;
    bool correct = pred.hit && pred.value == value;
    if (use) {
        if (correct)
            ++stats_.correctTaken;
        else
            ++stats_.incorrectTaken;
    }
    predictor_.update(pc, value, correct, directive, candidate);
}

void
FiniteTableEvaluator::record(const TraceRecord &rec)
{
    if (!rec.writesReg)
        return;
    step(rec.pc, rec.value, rec.directive);
}

void
FiniteTableEvaluator::consumeBlock(const TraceBlockView &block)
{
    for (uint32_t i = 0; i < block.count; ++i) {
        if (!block.writesReg[i])
            continue;
        step(block.pc[i], block.value[i],
             static_cast<Directive>(block.directive[i]));
    }
}

FiniteTableStats
FiniteTableEvaluator::result() const
{
    FiniteTableStats stats = stats_;
    stats.evictions = predictor_.evictions();
    return stats;
}

HybridTableEvaluator::HybridTableEvaluator(const HybridConfig &config)
    : predictor_(config)
{
}

void
HybridTableEvaluator::step(uint64_t pc, int64_t value, Directive directive)
{
    ++stats_.producers;
    bool tagged = directive != Directive::None;
    if (tagged)
        ++stats_.candidates;

    Prediction pred = predictor_.predict(pc, directive);
    bool correct = pred.hit && pred.value == value;
    if (pred.hit && tagged) {
        if (correct)
            ++stats_.correctTaken;
        else
            ++stats_.incorrectTaken;
    }
    predictor_.update(pc, value, correct, directive, tagged);
}

void
HybridTableEvaluator::record(const TraceRecord &rec)
{
    if (!rec.writesReg)
        return;
    step(rec.pc, rec.value, rec.directive);
}

void
HybridTableEvaluator::consumeBlock(const TraceBlockView &block)
{
    for (uint32_t i = 0; i < block.count; ++i) {
        if (!block.writesReg[i])
            continue;
        step(block.pc[i], block.value[i],
             static_cast<Directive>(block.directive[i]));
    }
}

FiniteTableStats
HybridTableEvaluator::result() const
{
    FiniteTableStats stats = stats_;
    stats.evictions = predictor_.evictions();
    return stats;
}

} // namespace vpprof
