#include "core/evaluators.hh"

#include "common/logging.hh"

namespace vpprof
{

ClassificationEvaluator::ClassificationEvaluator(Classifier &classifier)
    : classifier_(classifier),
      predictor_(infiniteConfig())
{
}

void
ClassificationEvaluator::record(const TraceRecord &rec)
{
    if (!rec.writesReg)
        return;
    Prediction pred = predictor_.predict(rec.pc, rec.directive);
    bool correct = pred.hit && pred.value == rec.value;
    if (pred.hit) {
        bool take = classifier_.shouldPredict(rec.pc, rec.directive);
        if (correct) {
            ++acc_.corrects;
            if (take)
                ++acc_.correctsAccepted;
        } else {
            ++acc_.mispredictions;
            if (!take)
                ++acc_.mispredictionsCaught;
        }
        classifier_.train(rec.pc, correct);
    }
    predictor_.update(rec.pc, rec.value, correct, rec.directive, true);
}

FiniteTableEvaluator::FiniteTableEvaluator(VpPolicy policy,
                                           const PredictorConfig &config)
    : policy_(policy),
      predictor_(config)
{
    if (policy != VpPolicy::Fsm && policy != VpPolicy::Profile)
        vpprof_panic("evaluateFiniteTable: policy must be Fsm or "
                     "Profile");
}

void
FiniteTableEvaluator::record(const TraceRecord &rec)
{
    if (!rec.writesReg)
        return;
    ++stats_.producers;
    bool tagged = rec.directive != Directive::None;
    bool candidate = policy_ == VpPolicy::Profile ? tagged : true;
    if (candidate)
        ++stats_.candidates;

    Prediction pred = predictor_.predict(rec.pc, rec.directive);
    bool use = policy_ == VpPolicy::Fsm
        ? pred.hit && pred.counterApproves
        : pred.hit && tagged;
    bool correct = pred.hit && pred.value == rec.value;
    if (use) {
        if (correct)
            ++stats_.correctTaken;
        else
            ++stats_.incorrectTaken;
    }
    predictor_.update(rec.pc, rec.value, correct, rec.directive,
                      candidate);
}

FiniteTableStats
FiniteTableEvaluator::result() const
{
    FiniteTableStats stats = stats_;
    stats.evictions = predictor_.evictions();
    return stats;
}

HybridTableEvaluator::HybridTableEvaluator(const HybridConfig &config)
    : predictor_(config)
{
}

void
HybridTableEvaluator::record(const TraceRecord &rec)
{
    if (!rec.writesReg)
        return;
    ++stats_.producers;
    bool tagged = rec.directive != Directive::None;
    if (tagged)
        ++stats_.candidates;

    Prediction pred = predictor_.predict(rec.pc, rec.directive);
    bool correct = pred.hit && pred.value == rec.value;
    if (pred.hit && tagged) {
        if (correct)
            ++stats_.correctTaken;
        else
            ++stats_.incorrectTaken;
    }
    predictor_.update(rec.pc, rec.value, correct, rec.directive,
                      tagged);
}

FiniteTableStats
HybridTableEvaluator::result() const
{
    FiniteTableStats stats = stats_;
    stats.evictions = predictor_.evictions();
    return stats;
}

} // namespace vpprof
