/**
 * @file
 * The experiment layer: end-to-end pipelines implementing the paper's
 * three-phase methodology (Figure 3.1) and the evaluation protocols of
 * Sections 4 and 5.
 *
 * Protocol conventions used throughout the benches and tests:
 *  - Profiling (phase 2) runs the program on *training* inputs; the
 *    default evaluation protocol trains on every input set except the
 *    one being evaluated, then merges the training images — exactly
 *    the cross-input setting the paper argues profiling must survive.
 *  - Directive insertion (phase 3) rewrites a copy of the program; the
 *    original workload program stays untouched.
 */

#ifndef VPPROF_CORE_EXPERIMENT_HH
#define VPPROF_CORE_EXPERIMENT_HH

#include <cstdint>
#include <vector>

#include "compiler/directive_inserter.hh"
#include "ilp/dataflow_engine.hh"
#include "predictors/hybrid_predictor.hh"
#include "predictors/classifier.hh"
#include "predictors/value_predictor.hh"
#include "profile/profile_image.hh"
#include "vm/machine.hh"
#include "workloads/workload.hh"

namespace vpprof
{

/** Run input set `input_idx` of a workload, streaming into `sink`. */
RunResult runTrace(const Workload &workload, size_t input_idx,
                   TraceSink *sink);

/** Run an (possibly annotated) program on an input image. */
RunResult runProgram(const Program &program, const MemoryImage &image,
                     TraceSink *sink,
                     uint64_t max_insts = Machine::kDefaultMaxInsts);

/** Phase 2: collect the profile image of one run. */
ProfileImage collectProfile(const Workload &workload, size_t input_idx);

/** Profile images of an init/compute phase split (mgrid). */
struct PhasedProfiles
{
    ProfileImage init;
    ProfileImage compute;
};

/**
 * Phase 2 with a phase split: statistics before the first execution of
 * the workload's phaseSplitPc() go to `init`, the rest to `compute`.
 * Requires the workload to define a split pc.
 */
PhasedProfiles collectPhasedProfile(const Workload &workload,
                                    size_t input_idx);

/** All training input indices for an evaluation input (all others). */
std::vector<size_t> trainingInputsFor(const Workload &workload,
                                      size_t eval_idx);

/** Collect and merge profile images over several inputs. */
ProfileImage collectMergedProfile(const Workload &workload,
                                  const std::vector<size_t> &inputs);

/**
 * The full three-phase methodology: profile the training inputs, merge,
 * and return a copy of the program annotated at the given thresholds.
 */
Program annotatedProgram(const Workload &workload,
                         const std::vector<size_t> &train_inputs,
                         const InserterConfig &config);

/**
 * Classification-accuracy measurement of Subsection 5.1: an infinite
 * stride predictor attempts every value-producing instruction; the
 * classifier (FSM or profile-directive) rules each attempt in or out.
 */
struct ClassificationAccuracy
{
    uint64_t mispredictions = 0;          ///< attempts that were wrong
    uint64_t mispredictionsCaught = 0;    ///< ...classifier said "don't"
    uint64_t corrects = 0;                ///< attempts that were right
    uint64_t correctsAccepted = 0;        ///< ...classifier said "do"

    /** Figure 5.1 series: % of mispredictions classified correctly. */
    double
    mispredictionAccuracy() const
    {
        return mispredictions == 0
            ? 0.0 : 100.0 * static_cast<double>(mispredictionsCaught)
                        / static_cast<double>(mispredictions);
    }

    /** Figure 5.2 series: % of correct predictions accepted. */
    double
    correctAccuracy() const
    {
        return corrects == 0
            ? 0.0 : 100.0 * static_cast<double>(correctsAccepted)
                        / static_cast<double>(corrects);
    }
};

ClassificationAccuracy
evaluateClassification(const Program &program, const MemoryImage &image,
                       Classifier &classifier);

/**
 * Finite-table measurement of Subsection 5.2: a finite stride predictor
 * (the paper's 512-entry 2-way organization) driven either by per-entry
 * saturating counters with allocate-everything (VpPolicy::Fsm) or by
 * opcode directives with allocate-tagged-only (VpPolicy::Profile).
 */
struct FiniteTableStats
{
    uint64_t producers = 0;        ///< dynamic value-producing instrs
    uint64_t candidates = 0;       ///< dynamic allocation candidates
    uint64_t correctTaken = 0;     ///< consumed correct predictions
    uint64_t incorrectTaken = 0;   ///< consumed mispredictions
    uint64_t evictions = 0;        ///< LRU evictions in the table
};

FiniteTableStats
evaluateFiniteTable(const Program &program, const MemoryImage &image,
                    VpPolicy policy, const PredictorConfig &config);

/**
 * Abstract-machine ILP measurement of Subsection 5.3 (Table 5.2), over
 * one run: the dataflow engine with the given window/penalty and value
 * prediction policy.
 */
IlpResult evaluateIlp(const Program &program, const MemoryImage &image,
                      const IlpConfig &ilp_config, VpPolicy policy,
                      const PredictorConfig &predictor_config);

/**
 * Hybrid-table measurement (Section 3.2's proposal): a small stride
 * sub-table plus a larger last-value sub-table, steered and allocated
 * purely by opcode directives. Counts consumed predictions the same
 * way as evaluateFiniteTable so the two organizations are directly
 * comparable.
 */
FiniteTableStats
evaluateHybridTable(const Program &program, const MemoryImage &image,
                    const HybridConfig &config);

/** The paper's finite predictor organization: 512 entries, 2-way. */
PredictorConfig paperFiniteConfig(bool with_counters);

/** Infinite, counterless predictor configuration. */
PredictorConfig infiniteConfig();

} // namespace vpprof

#endif // VPPROF_CORE_EXPERIMENT_HH
