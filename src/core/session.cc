#include "core/session.hh"

#include <filesystem>
#include <optional>
#include <sstream>
#include <unistd.h>

#include "common/failpoint.hh"
#include "common/file_lock.hh"
#include "common/logging.hh"
#include "common/telemetry/telemetry.hh"
#include "core/evaluators.hh"
#include "ilp/dataflow_engine.hh"
#include "predictors/stride_predictor.hh"
#include "profile/profile_collector.hh"
#include "profile/sampling/sketch_collector.hh"
#include "vm/trace_io.hh"

namespace vpprof
{

namespace fs = std::filesystem;

struct TraceRepository::Entry
{
    std::mutex produceMutex;
    std::atomic<bool> produced{false};

    // Immutable once `produced` is set (release-published): replays
    // read these concurrently without locks.
    ColumnarTrace columnar;  ///< resident encoded form
    bool resident = false;   ///< columnar holds the trace
    bool onDisk = false;
    bool tempFile = false;  ///< spill file we own (delete at teardown)
    /**
     * Degraded mode: the trace fits neither the resident budget nor
     * the disk (spill failed, e.g. ENOSPC). Replays re-interpret the
     * workload instead — slower, never wrong.
     */
    bool reinterpret = false;
    std::string path;
    RunResult result;

    /**
     * Whether `path` has passed a Full (checksummed) validation in
     * this process — set when we adopted it, wrote it ourselves, or a
     * replay fully verified it. Later replays open HeaderOnly: the
     * per-replay payload re-hash was measured at ~3x replay cost
     * (bench_cache_robustness), and a file we just proved gains
     * nothing from being re-proved. Cleared whenever a replay has to
     * fall back to the VM, so the next attempt re-verifies in full.
     */
    std::atomic<bool> fileVerified{false};
};

namespace
{

/** Persistent cache-file name for a (workload, input) pair. */
std::string
traceFileName(const std::string &workload, size_t input_idx)
{
    std::ostringstream os;
    os << workload << ".in" << input_idx << ".trace";
    return os.str();
}

/** Block sink that re-assembles records for a record-level consumer. */
class RecordFanBlockSink : public TraceBlockSink
{
  public:
    explicit RecordFanBlockSink(TraceSink *sink) : sink_(sink) {}

    void
    consumeBlock(const TraceBlockView &block) override
    {
        for (uint32_t i = 0; i < block.count; ++i)
            sink_->record(block.record(i));
    }

  private:
    TraceSink *sink_;
};

} // namespace

TraceRepository::TraceRepository(const SessionConfig &config)
    : config_(config)
{
    if (!config_.traceCacheDir.empty()) {
        std::error_code ec;
        fs::create_directories(config_.traceCacheDir, ec);
        if (ec)
            vpprof_fatal("cannot create trace cache directory '",
                         config_.traceCacheDir, "': ", ec.message());
    }
}

TraceRepository::~TraceRepository()
{
    if (!tempDir_.empty()) {
        std::error_code ec;
        fs::remove_all(tempDir_, ec);  // best-effort temp cleanup
    }
}

TraceRepository::Entry &
TraceRepository::entryFor(const Workload &workload, size_t input_idx)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto key = std::make_pair(std::string(workload.name()), input_idx);
    auto [it, inserted] = entries_.try_emplace(key);
    if (inserted) {
        it->second = std::make_unique<Entry>();
        counters_.uniqueTraces.add();
    }
    return *it->second;
}

void
TraceRepository::quarantine(const std::string &path,
                            TraceIoStatus status)
{
    // Rename the sick file aside so the evidence survives for a
    // post-mortem and the next probe sees a clean miss; `.bad` files
    // are never probed (lookups only ever use the exact trace name).
    std::string bad = path + ".bad";
    std::error_code ec;
    fs::rename(path, bad, ec);
    if (ec)
        fs::remove(path, ec);  // last resort: clear the slot
    counters_.corruptQuarantined.add();
    // Diagnostic, not fatal — and rate-limited: a sweep touching a
    // damaged cache directory hits this once per trace file, and
    // stdout consumers (bench JSON, CLI pipelines) must never see
    // these lines interleaved into their output.
    vpprof_warn_limited(8, "quarantined unusable trace cache file ",
                        path, " (", traceIoStatusName(status),
                        "); regenerating");
}

TraceRepository::AdoptOutcome
TraceRepository::adoptCacheFile(Entry &entry, const std::string &path)
{
    VPPROF_TIMED_SPAN("trace.adopt");
    // Adopt a valid file captured by an earlier process; any
    // malformed file (truncated writer, foreign bytes, flipped bits,
    // future format version) is a structured miss, never a crash or
    // a short replay — it is quarantined and the trace re-captured.
    TraceIoStatus status = TraceIoStatus::Ok;
    auto reader = TraceFileReader::tryOpen(path, &status);
    if (!reader) {
        if (status == TraceIoStatus::IoError)
            return AdoptOutcome::Missing;
        quarantine(path, status);
        return AdoptOutcome::Quarantined;
    }

    uint64_t count = reader->recordCount();
    bool resident = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        resident = static_cast<uint64_t>(
                       counters_.residentRecords.value()) +
                       count <=
                   config_.residentRecordBudget;
        if (resident)
            counters_.residentRecords.add(
                static_cast<int64_t>(count));
    }

    entry.fileVerified.store(true, std::memory_order_relaxed);
    if (resident) {
        if (reader->readColumnar(entry.columnar)) {
            // v3: the file payload IS the resident form — one buffer
            // copy, no decode.
            entry.resident = true;
        } else {
            // v1/v2: transcode the record stream into the columnar
            // resident form — this is also how a legacy cache
            // migrates into a v3 session transparently.
            ColumnarTraceBuilder builder;
            TraceRecord rec;
            while (reader->next(rec))
                builder.record(rec);
            if (reader->status() != TraceIoStatus::Ok ||
                reader->recordsRead() != count) {
                // The file shrank between validate() and the bulk
                // read: un-reserve the budget and treat it like any
                // corruption.
                counters_.residentRecords.add(
                    -static_cast<int64_t>(count));
                quarantine(path, reader->status());
                return AdoptOutcome::Quarantined;
            }
            entry.columnar = builder.take();
            entry.resident = true;
        }
    } else {
        entry.onDisk = true;
    }
    counters_.v3BytesMapped.add(reader->mappedBytes());

    entry.result.instructionsExecuted = count;
    entry.result.halted = true;
    entry.path = path;
    counters_.diskLoads.add();
    if (!resident)
        counters_.spilledTraces.add();
    entry.produced.store(true, std::memory_order_release);
    return AdoptOutcome::Adopted;
}

bool
TraceRepository::writeTraceFile(const std::string &path,
                                const ColumnarTrace &trace)
{
    VPPROF_TIMED_SPAN("trace.spill");
    TraceIoStatus st;
    if (defaultTraceFormat() == TraceFormat::V3) {
        // The capture is already encoded: persisting is a framed
        // buffer write, not a second per-record encode.
        st = writeColumnarTraceFile(path, trace);
    } else {
        // Pinned to v2 (VPPROF_TRACE_FORMAT=2): decode the resident
        // blocks back into records for the fixed-width writer.
        TraceFileWriter writer(path, TraceFormat::V2);
        TraceBlockScratch scratch;
        RecordFanBlockSink fan(&writer);
        replayColumnarTrace(trace, scratch, &fan);
        st = writer.close();
    }
    if (st == TraceIoStatus::Ok)
        return true;
    counters_.spillFailures.add();
    vpprof_warn_limited(8, "cannot persist trace to ", path, " (",
                        traceIoStatusName(st),
                        "); continuing without the file");
    return false;
}

std::string
TraceRepository::spillPathFor(const std::string &name, size_t input_idx)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (tempDir_.empty()) {
        std::string dir = (fs::temp_directory_path() /
                           ("vpprof-traces-" +
                            std::to_string(::getpid())))
                              .string();
        std::error_code ec;
        fs::create_directories(dir, ec);
        if (ec) {
            vpprof_warn_limited(4, "cannot create trace spill "
                                "directory '", dir, "': ",
                                ec.message());
            return {};
        }
        tempDir_ = dir;
    }
    return tempDir_ + "/" + traceFileName(name, input_idx);
}

void
TraceRepository::produce(Entry &entry, const Workload &workload,
                         size_t input_idx)
{
    std::string name(workload.name());
    std::string cachePath;
    std::optional<ScopedFileLock> cacheLock;
    bool quarantined = false;
    if (!config_.traceCacheDir.empty()) {
        cachePath = config_.traceCacheDir + "/" +
                    traceFileName(name, input_idx);
        // Advisory cross-process lock around probe + capture +
        // commit: a sibling process sharing this cache directory
        // either finishes its capture first (we adopt it) or blocks
        // until ours is committed. Readers never need the lock —
        // commits are atomic renames.
        {
            VPPROF_TIMED_SPAN("trace.lock_wait");
            cacheLock.emplace(cachePath + ".lock");
        }
        switch (adoptCacheFile(entry, cachePath)) {
          case AdoptOutcome::Adopted:
            return;
          case AdoptOutcome::Quarantined:
            quarantined = true;
            break;
          case AdoptOutcome::Missing:
            break;
        }
    }

    // First use in any process (or the cached copy was unusable):
    // interpret the workload once, encoding columnar blocks as the
    // records stream out — the capture is never held as AoS records.
    ColumnarTraceBuilder builder;
    {
        VPPROF_TIMED_SPAN("trace.capture");
        entry.result = runProgram(workload.program(),
                                  workload.input(input_idx), &builder,
                                  workload.maxInstructions());
    }
    ColumnarTrace trace = builder.take();

    if (!cachePath.empty() && writeTraceFile(cachePath, trace)) {
        entry.path = cachePath;
        // We produced those bytes through the checksumming writer:
        // they are proved for this process without a re-read.
        entry.fileVerified.store(true, std::memory_order_relaxed);
    }

    counters_.vmRuns.add();
    if (quarantined)
        counters_.regenerations.add();
    bool fits = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fits = static_cast<uint64_t>(
                   counters_.residentRecords.value()) +
                   trace.records <=
               config_.residentRecordBudget;
        if (fits)
            counters_.residentRecords.add(
                static_cast<int64_t>(trace.records));
    }

    if (fits) {
        entry.columnar = std::move(trace);
        entry.resident = true;
    } else {
        // Over budget: this trace lives on disk. Reuse the persistent
        // cache file when we just wrote one; otherwise spill into a
        // private temp directory.
        if (entry.path.empty()) {
            std::string spillPath = spillPathFor(name, input_idx);
            bool spilled = false;
            if (!spillPath.empty()) {
                switch (FailpointRegistry::instance().fire("spill")) {
                  case FailpointAction::Fail:
                  case FailpointAction::NoSpace:
                    counters_.spillFailures.add();
                    vpprof_warn_limited(8, "cannot persist trace to ",
                                        spillPath, " (injected spill "
                                        "failure); continuing without "
                                        "the file");
                    break;
                  default:
                    spilled = writeTraceFile(spillPath, trace);
                    break;
                }
            }
            if (spilled) {
                entry.path = spillPath;
                entry.tempFile = true;
                entry.fileVerified.store(true,
                                         std::memory_order_relaxed);
            }
        }
        if (!entry.path.empty()) {
            entry.onDisk = true;
            counters_.spilledTraces.add();
        } else {
            // Nowhere to put it: neither memory (budget) nor disk
            // (spill failed, e.g. ENOSPC). Degrade to re-interpreting
            // the workload on every replay — the experiment still
            // completes, bit-identical, just without the cache.
            entry.reinterpret = true;
            vpprof_warn_limited(4, "trace for ", name, ".in",
                                input_idx, " fits neither memory nor "
                                "disk; degrading to re-interpretation "
                                "per replay");
        }
    }
    entry.produced.store(true, std::memory_order_release);
}

void
TraceRepository::replayFromDisk(Entry &entry, const Workload &workload,
                                size_t input_idx, TraceSink *sink)
{
    // Streams `entry.path` into `sink`. The sink cannot un-consume
    // records, so every recovery step below resumes exactly past the
    // `delivered` prefix — consumers see one contiguous, bit-exact
    // trace no matter how many attempts it took.
    VPPROF_TIMED_SPAN("trace.replay.disk");
    uint64_t delivered = 0;
    auto stream = [&](TraceFileReader &reader) {
        TraceRecord rec;
        while (reader.next(rec)) {
            sink->record(rec);
            ++delivered;
        }
        counters_.v3BlocksDecoded.add(reader.blocksDecoded());
        counters_.v3BytesMapped.add(reader.mappedBytes());
        return reader.status() == TraceIoStatus::Ok &&
               delivered == reader.recordCount();
    };

    // A file already proved this process (adopted, self-written, or
    // fully verified by an earlier replay) opens HeaderOnly; anything
    // else pays the Full checksum pass exactly once.
    bool verified = entry.fileVerified.load(std::memory_order_acquire);
    TraceIoStatus status = TraceIoStatus::Ok;
    auto reader = TraceFileReader::tryOpen(
        entry.path, &status,
        verified ? TraceVerify::HeaderOnly : TraceVerify::Full);
    if (reader && !verified)
        entry.fileVerified.store(true, std::memory_order_release);
    if (reader && stream(*reader))
        return;
    if (reader)
        status = reader->status();

    // Mid-replay failure: the file changed underneath us (or an
    // injected fault fired) after it validated at open. Retry once
    // from disk, skipping the prefix the sink already has...
    counters_.readRetries.add();
    vpprof_warn_limited(8, "trace replay of ", entry.path,
                        " failed (", traceIoStatusName(status),
                        ") after ", delivered,
                        " records; retrying from disk");
    // The retry always re-verifies in full: the failure says the file
    // is not what the earlier proof was about.
    auto retry =
        TraceFileReader::tryOpen(entry.path, &status, TraceVerify::Full);
    if (retry && retry->skip(delivered) && stream(*retry))
        return;
    entry.fileVerified.store(false, std::memory_order_release);

    // ...then regenerate via the VM. Interpretation is deterministic,
    // so the regenerated records past `delivered` are the records the
    // file would have held.
    counters_.regenerations.add();
    vpprof_warn_limited(8, "trace file ", entry.path,
                        " is unreadable; regenerating the replay "
                        "via the VM");
    VPPROF_TIMED_SPAN("trace.regenerate");
    uint64_t seen = 0;
    CallbackTraceSink skipper([&](const TraceRecord &rec) {
        if (seen++ >= delivered)
            sink->record(rec);
    });
    runProgram(workload.program(), workload.input(input_idx), &skipper,
               workload.maxInstructions());
}

RunResult
TraceRepository::replay(const Workload &workload, size_t input_idx,
                        TraceSink *sink)
{
    Entry &entry = entryFor(workload, input_idx);
    if (!entry.produced.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(entry.produceMutex);
        if (!entry.produced.load(std::memory_order_relaxed))
            produce(entry, workload, input_idx);
    }

    if (sink) {
        VPPROF_TIMED_SPAN("trace.replay");
        if (entry.reinterpret) {
            // Degraded mode (spill failed): re-interpret per replay.
            VPPROF_TIMED_SPAN("trace.regenerate");
            runProgram(workload.program(), workload.input(input_idx),
                       sink, workload.maxInstructions());
            counters_.regenerations.add();
        } else if (entry.onDisk) {
            replayFromDisk(entry, workload, input_idx, sink);
        } else {
            TraceBlockScratch scratch;
            RecordFanBlockSink fan(sink);
            replayColumnarTrace(entry.columnar, scratch, &fan);
            counters_.v3BlocksDecoded.add(entry.columnar.blocks);
        }
    }

    counters_.replays.add();
    return entry.result;
}

RunResult
TraceRepository::replayBatch(const Workload &workload, size_t input_idx,
                             EvaluatorBank &bank)
{
    Entry &entry = entryFor(workload, input_idx);
    if (!entry.produced.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(entry.produceMutex);
        if (!entry.produced.load(std::memory_order_relaxed))
            produce(entry, workload, input_idx);
    }

    {
        VPPROF_TIMED_SPAN("trace.replay");
        if (entry.reinterpret) {
            // Degraded mode (spill failed): re-interpret per replay,
            // regrouping the fresh record stream into blocks so the
            // bank sees the same column-batch interface.
            VPPROF_TIMED_SPAN("trace.regenerate");
            BlockAssembler assembler(&bank);
            runProgram(workload.program(), workload.input(input_idx),
                       &assembler, workload.maxInstructions());
            assembler.flush();
            counters_.regenerations.add();
        } else if (entry.onDisk) {
            // Route through the record-level disk path so the full
            // retry -> regenerate recovery ladder (and its resume-
            // exactly-past-the-prefix guarantee) applies unchanged.
            BlockAssembler assembler(&bank);
            replayFromDisk(entry, workload, input_idx, &assembler);
            assembler.flush();
        } else {
            // Hot path: decode each resident block once; the bank
            // fans it to every registered evaluator.
            TraceBlockScratch scratch;
            replayColumnarTrace(entry.columnar, scratch, &bank);
            counters_.v3BlocksDecoded.add(entry.columnar.blocks);
        }
    }

    counters_.replays.add();
    return entry.result;
}

RunResult
TraceRepository::replayInto(const Workload &workload, size_t input_idx,
                            const std::vector<TraceSink *> &sinks)
{
    MultiTraceSink fan;
    for (TraceSink *sink : sinks)
        fan.addSink(sink);
    return replay(workload, input_idx, &fan);
}

TraceRepoStats
TraceRepository::stats() const
{
    // Typed snapshot over the per-instance counters. Each field is an
    // independent relaxed load: monotone counters make the view at
    // worst one event stale per field, never torn — same guarantee the
    // registry snapshot gives (and no mutex on the readers' side).
    TraceRepoStats s;
    s.vmRuns = counters_.vmRuns.value();
    s.diskLoads = counters_.diskLoads.value();
    s.replays = counters_.replays.value();
    s.uniqueTraces = counters_.uniqueTraces.value();
    s.residentRecords =
        static_cast<uint64_t>(counters_.residentRecords.value());
    s.spilledTraces = counters_.spilledTraces.value();
    s.corruptQuarantined = counters_.corruptQuarantined.value();
    s.regenerations = counters_.regenerations.value();
    s.spillFailures = counters_.spillFailures.value();
    s.readRetries = counters_.readRetries.value();
    s.v3BlocksDecoded = counters_.v3BlocksDecoded.value();
    s.v3BytesMapped = counters_.v3BytesMapped.value();
    return s;
}

uint64_t
TraceRepository::vmRuns() const
{
    return counters_.vmRuns.value();
}

void
TraceRepoStats::writeJsonFields(std::ostream &os) const
{
    os << "\"vm_runs\": " << vmRuns
       << ", \"disk_loads\": " << diskLoads
       << ", \"replays\": " << replays
       << ", \"unique_traces\": " << uniqueTraces
       << ", \"spilled_traces\": " << spilledTraces
       << ", \"corrupt_quarantined\": " << corruptQuarantined
       << ", \"regenerations\": " << regenerations
       << ", \"spill_failures\": " << spillFailures
       << ", \"read_retries\": " << readRetries
       << ", \"v3_blocks_decoded\": " << v3BlocksDecoded
       << ", \"v3_bytes_mapped\": " << v3BytesMapped;
}

std::string
repoStatsJson(const TraceRepoStats &stats)
{
    std::ostringstream os;
    os << "{";
    stats.writeJsonFields(os);
    os << "}";
    return os.str();
}

Session::Session(SessionConfig config)
    : config_(config),
      traces_(config),
      runner_(config.jobs)
{
}

Session::~Session() = default;

RunResult
Session::runTrace(const Workload &workload, size_t input_idx,
                  TraceSink *sink)
{
    return traces_.replay(workload, input_idx, sink);
}

RunResult
Session::replayInto(const Workload &workload, size_t input_idx,
                    const std::vector<TraceSink *> &sinks)
{
    return traces_.replayInto(workload, input_idx, sinks);
}

RunResult
Session::replayInto(const Workload &workload, size_t input_idx,
                    EvaluatorBank &bank)
{
    return traces_.replayBatch(workload, input_idx, bank);
}

const ProfileImage &
Session::collectProfile(const Workload &workload, size_t input_idx)
{
    auto key = std::make_pair(std::string(workload.name()), input_idx);
    {
        std::lock_guard<std::mutex> lock(profileMutex_);
        auto it = profiles_.find(key);
        if (it != profiles_.end())
            return it->second;
    }

    VPPROF_TIMED_SPAN("profile.collect");
    ProfileCollector collector(std::string(workload.name()));
    traces_.replay(workload, input_idx, &collector);
    ProfileImage image = collector.takeImage();

    std::lock_guard<std::mutex> lock(profileMutex_);
    // try_emplace: under a race the first insertion wins; both
    // computed images are identical (replay is deterministic).
    auto [it, inserted] = profiles_.try_emplace(key, std::move(image));
    (void)inserted;
    return it->second;
}

const ProfileImage &
Session::collectSampledProfile(const Workload &workload,
                               size_t input_idx,
                               const SamplingConfig &sampling)
{
    if (auto complaint = sampling.validate())
        vpprof_fatal("invalid sampling config: ", *complaint);
    if (sampling.isExact())
        return collectProfile(workload, input_idx);

    auto key = std::make_tuple(std::string(workload.name()), input_idx,
                               sampling.cacheKey());
    {
        std::lock_guard<std::mutex> lock(profileMutex_);
        auto it = sampledProfiles_.find(key);
        if (it != sampledProfiles_.end())
            return it->second;
    }

    VPPROF_TIMED_SPAN("profile.collect_sampled");
    ProfileImage image;
    if (sampling.sketchCapacity > 0) {
        SketchConfig sketch_cfg;
        sketch_cfg.capacity = sampling.sketchCapacity;
        SketchProfileCollector collector(std::string(workload.name()),
                                         sketch_cfg);
        SamplingTraceSink sampler(sampling, &collector);
        traces_.replay(workload, input_idx, &sampler);
        image = collector.takeImage();
    } else {
        ProfileCollector collector(std::string(workload.name()));
        SamplingTraceSink sampler(sampling, &collector);
        traces_.replay(workload, input_idx, &sampler);
        image = collector.takeImage();
    }

    std::lock_guard<std::mutex> lock(profileMutex_);
    // First insertion wins under a race; the kept-record set is a
    // pure function of (config, trace), so both images are identical.
    auto [it, inserted] =
        sampledProfiles_.try_emplace(key, std::move(image));
    (void)inserted;
    return it->second;
}

PhasedProfiles
Session::collectPhasedProfile(const Workload &workload,
                              size_t input_idx)
{
    auto split = workload.phaseSplitPc();
    if (!split)
        vpprof_fatal("workload '", workload.name(),
                     "' has no phase split pc");

    ProfileCollector init_collector(std::string(workload.name()) +
                                    ".init");
    ProfileCollector comp_collector(std::string(workload.name()) +
                                    ".comp");
    bool in_compute = false;
    CallbackTraceSink sink([&](const TraceRecord &rec) {
        if (!in_compute && rec.pc == *split)
            in_compute = true;
        if (in_compute)
            comp_collector.record(rec);
        else
            init_collector.record(rec);
    });
    traces_.replay(workload, input_idx, &sink);

    PhasedProfiles phases;
    phases.init = init_collector.takeImage();
    phases.compute = comp_collector.takeImage();
    return phases;
}

ProfileImage
Session::collectMergedProfile(const Workload &workload,
                              const std::vector<size_t> &inputs)
{
    if (inputs.empty())
        vpprof_fatal("collectMergedProfile: no training inputs");

    // Warm the per-input caches in parallel, then merge in index
    // order so the result is bit-identical for every jobs count.
    runner_.forEach(inputs.size(), [&](size_t i) {
        collectProfile(workload, inputs[i]);
    });
    ProfileImage merged(std::string(workload.name()));
    for (size_t idx : inputs)
        merged.merge(collectProfile(workload, idx));
    return merged;
}

Program
Session::annotatedProgram(const Workload &workload,
                          const std::vector<size_t> &train_inputs,
                          const InserterConfig &config)
{
    std::ostringstream key;
    key << workload.name();
    for (size_t idx : train_inputs)
        key << '|' << idx;

    const ProfileImage *image = nullptr;
    {
        std::lock_guard<std::mutex> lock(profileMutex_);
        auto it = mergedProfiles_.find(key.str());
        if (it != mergedProfiles_.end())
            image = &it->second;
    }
    if (!image) {
        ProfileImage merged = collectMergedProfile(workload,
                                                   train_inputs);
        std::lock_guard<std::mutex> lock(profileMutex_);
        auto [it, inserted] =
            mergedProfiles_.try_emplace(key.str(), std::move(merged));
        (void)inserted;
        image = &it->second;
    }

    Program program = workload.program();  // copy
    insertDirectives(program, *image, config);
    return program;
}

ClassificationAccuracy
Session::evaluateClassification(const Workload &workload,
                                size_t input_idx,
                                const Program &program,
                                Classifier &classifier)
{
    VPPROF_TIMED_SPAN("eval.classification");
    ClassificationEvaluator evaluator(classifier);
    EvaluatorBank bank;
    bank.addBlockSink(&evaluator, &program);
    traces_.replayBatch(workload, input_idx, bank);
    return evaluator.result();
}

FiniteTableStats
Session::evaluateFiniteTable(const Workload &workload, size_t input_idx,
                             const Program &program, VpPolicy policy,
                             const PredictorConfig &config)
{
    VPPROF_TIMED_SPAN("eval.finite_table");
    FiniteTableEvaluator evaluator(policy, config);
    EvaluatorBank bank;
    bank.addBlockSink(&evaluator, &program);
    traces_.replayBatch(workload, input_idx, bank);
    return evaluator.result();
}

IlpResult
Session::evaluateIlp(const Workload &workload, size_t input_idx,
                     const Program &program, const IlpConfig &ilp_config,
                     VpPolicy policy,
                     const PredictorConfig &predictor_config)
{
    VPPROF_TIMED_SPAN("eval.ilp");
    StridePredictor predictor(predictor_config);
    DataflowEngine engine(ilp_config, policy,
                          policy == VpPolicy::None ? nullptr
                                                   : &predictor);
    EvaluatorBank bank;
    bank.addRecordSink(&engine, &program);
    traces_.replayBatch(workload, input_idx, bank);
    return engine.result();
}

FiniteTableStats
Session::evaluateHybridTable(const Workload &workload, size_t input_idx,
                             const Program &program,
                             const HybridConfig &config)
{
    VPPROF_TIMED_SPAN("eval.hybrid_table");
    HybridTableEvaluator evaluator(config);
    EvaluatorBank bank;
    bank.addBlockSink(&evaluator, &program);
    traces_.replayBatch(workload, input_idx, bank);
    return evaluator.result();
}

Session &
defaultSession()
{
    static Session session{SessionConfig{}};
    return session;
}

} // namespace vpprof
