#include "core/session.hh"

#include <filesystem>
#include <sstream>
#include <unistd.h>

#include "common/logging.hh"
#include "core/evaluators.hh"
#include "ilp/dataflow_engine.hh"
#include "predictors/stride_predictor.hh"
#include "profile/profile_collector.hh"
#include "profile/sampling/sketch_collector.hh"
#include "vm/trace_io.hh"

namespace vpprof
{

namespace fs = std::filesystem;

struct TraceRepository::Entry
{
    std::mutex produceMutex;
    std::atomic<bool> produced{false};

    // Immutable once `produced` is set (release-published): replays
    // read these concurrently without locks.
    std::vector<TraceRecord> records;  ///< resident form (may be empty)
    bool onDisk = false;
    bool tempFile = false;  ///< spill file we own (delete at teardown)
    std::string path;
    RunResult result;
};

namespace
{

/** Persistent cache-file name for a (workload, input) pair. */
std::string
traceFileName(const std::string &workload, size_t input_idx)
{
    std::ostringstream os;
    os << workload << ".in" << input_idx << ".trace";
    return os.str();
}

} // namespace

TraceRepository::TraceRepository(const SessionConfig &config)
    : config_(config)
{
    if (!config_.traceCacheDir.empty()) {
        std::error_code ec;
        fs::create_directories(config_.traceCacheDir, ec);
        if (ec)
            vpprof_fatal("cannot create trace cache directory '",
                         config_.traceCacheDir, "': ", ec.message());
    }
}

TraceRepository::~TraceRepository()
{
    if (!tempDir_.empty()) {
        std::error_code ec;
        fs::remove_all(tempDir_, ec);  // best-effort temp cleanup
    }
}

TraceRepository::Entry &
TraceRepository::entryFor(const Workload &workload, size_t input_idx)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto key = std::make_pair(std::string(workload.name()), input_idx);
    auto [it, inserted] = entries_.try_emplace(key);
    if (inserted) {
        it->second = std::make_unique<Entry>();
        ++stats_.uniqueTraces;
    }
    return *it->second;
}

void
TraceRepository::produce(Entry &entry, const Workload &workload,
                         size_t input_idx)
{
    std::string name(workload.name());
    std::string cachePath;
    if (!config_.traceCacheDir.empty()) {
        cachePath = config_.traceCacheDir + "/" +
                    traceFileName(name, input_idx);
        // Adopt a valid file captured by an earlier process; any
        // malformed file (truncated writer, foreign bytes, old format
        // version) is a structured miss, never a crash or a short
        // replay — we just re-capture over it.
        TraceIoStatus status = TraceIoStatus::Ok;
        auto reader = TraceFileReader::tryOpen(cachePath, &status);
        if (reader) {
            uint64_t count = reader->recordCount();
            entry.result.instructionsExecuted = count;
            entry.result.halted = true;
            entry.path = cachePath;

            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.diskLoads;
            if (stats_.residentRecords + count <=
                config_.residentRecordBudget) {
                entry.records.reserve(count);
                TraceRecord rec;
                while (reader->next(rec))
                    entry.records.push_back(rec);
                stats_.residentRecords += entry.records.size();
            } else {
                entry.onDisk = true;
                ++stats_.spilledTraces;
            }
            entry.produced.store(true, std::memory_order_release);
            return;
        }
        // Diagnostic, not fatal — and rate-limited: a sweep touching
        // a damaged cache directory hits this once per trace file,
        // and stdout consumers (bench JSON, CLI pipelines) must never
        // see these lines interleaved into their output.
        if (status != TraceIoStatus::IoError)
            vpprof_warn_limited(8, "ignoring unusable trace cache "
                                "file ", cachePath, " (",
                                traceIoStatusName(status),
                                "); re-capturing");
    }

    // First use in any process: interpret the workload once.
    VectorTraceSink captured;
    entry.result = runProgram(workload.program(),
                              workload.input(input_idx), &captured,
                              workload.maxInstructions());
    std::vector<TraceRecord> records = captured.takeTrace();

    if (!cachePath.empty()) {
        TraceFileWriter writer(cachePath);
        for (const TraceRecord &rec : records)
            writer.record(rec);
        writer.close();
        entry.path = cachePath;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.vmRuns;
    if (stats_.residentRecords + records.size() <=
        config_.residentRecordBudget) {
        stats_.residentRecords += records.size();
        entry.records = std::move(records);
    } else {
        // Over budget: this trace lives on disk. Reuse the persistent
        // cache file when we just wrote one; otherwise spill into a
        // private temp directory.
        if (entry.path.empty()) {
            if (tempDir_.empty()) {
                tempDir_ = (fs::temp_directory_path() /
                            ("vpprof-traces-" +
                             std::to_string(::getpid())))
                               .string();
                std::error_code ec;
                fs::create_directories(tempDir_, ec);
                if (ec)
                    vpprof_fatal("cannot create trace spill "
                                 "directory '", tempDir_, "': ",
                                 ec.message());
            }
            entry.path = tempDir_ + "/" +
                         traceFileName(name, input_idx);
            entry.tempFile = true;
            TraceFileWriter writer(entry.path);
            for (const TraceRecord &rec : records)
                writer.record(rec);
            writer.close();
        }
        entry.onDisk = true;
        ++stats_.spilledTraces;
    }
    entry.produced.store(true, std::memory_order_release);
}

RunResult
TraceRepository::replay(const Workload &workload, size_t input_idx,
                        TraceSink *sink)
{
    Entry &entry = entryFor(workload, input_idx);
    if (!entry.produced.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(entry.produceMutex);
        if (!entry.produced.load(std::memory_order_relaxed))
            produce(entry, workload, input_idx);
    }

    if (sink) {
        if (entry.onDisk) {
            // Strict reader: the repository wrote this file itself,
            // so corruption here is an environment failure worth a
            // loud fatal, not a silent re-run.
            TraceFileReader reader(entry.path);
            reader.replay(sink);
        } else {
            for (const TraceRecord &rec : entry.records)
                sink->record(rec);
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.replays;
    return entry.result;
}

RunResult
TraceRepository::replayInto(const Workload &workload, size_t input_idx,
                            const std::vector<TraceSink *> &sinks)
{
    MultiTraceSink fan;
    for (TraceSink *sink : sinks)
        fan.addSink(sink);
    return replay(workload, input_idx, &fan);
}

TraceRepoStats
TraceRepository::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

uint64_t
TraceRepository::vmRuns() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_.vmRuns;
}

Session::Session(SessionConfig config)
    : config_(config),
      traces_(config),
      runner_(config.jobs)
{
}

Session::~Session() = default;

RunResult
Session::runTrace(const Workload &workload, size_t input_idx,
                  TraceSink *sink)
{
    return traces_.replay(workload, input_idx, sink);
}

RunResult
Session::replayInto(const Workload &workload, size_t input_idx,
                    const std::vector<TraceSink *> &sinks)
{
    return traces_.replayInto(workload, input_idx, sinks);
}

const ProfileImage &
Session::collectProfile(const Workload &workload, size_t input_idx)
{
    auto key = std::make_pair(std::string(workload.name()), input_idx);
    {
        std::lock_guard<std::mutex> lock(profileMutex_);
        auto it = profiles_.find(key);
        if (it != profiles_.end())
            return it->second;
    }

    ProfileCollector collector(std::string(workload.name()));
    traces_.replay(workload, input_idx, &collector);
    ProfileImage image = collector.takeImage();

    std::lock_guard<std::mutex> lock(profileMutex_);
    // try_emplace: under a race the first insertion wins; both
    // computed images are identical (replay is deterministic).
    auto [it, inserted] = profiles_.try_emplace(key, std::move(image));
    (void)inserted;
    return it->second;
}

const ProfileImage &
Session::collectSampledProfile(const Workload &workload,
                               size_t input_idx,
                               const SamplingConfig &sampling)
{
    if (auto complaint = sampling.validate())
        vpprof_fatal("invalid sampling config: ", *complaint);
    if (sampling.isExact())
        return collectProfile(workload, input_idx);

    auto key = std::make_tuple(std::string(workload.name()), input_idx,
                               sampling.cacheKey());
    {
        std::lock_guard<std::mutex> lock(profileMutex_);
        auto it = sampledProfiles_.find(key);
        if (it != sampledProfiles_.end())
            return it->second;
    }

    ProfileImage image;
    if (sampling.sketchCapacity > 0) {
        SketchConfig sketch_cfg;
        sketch_cfg.capacity = sampling.sketchCapacity;
        SketchProfileCollector collector(std::string(workload.name()),
                                         sketch_cfg);
        SamplingTraceSink sampler(sampling, &collector);
        traces_.replay(workload, input_idx, &sampler);
        image = collector.takeImage();
    } else {
        ProfileCollector collector(std::string(workload.name()));
        SamplingTraceSink sampler(sampling, &collector);
        traces_.replay(workload, input_idx, &sampler);
        image = collector.takeImage();
    }

    std::lock_guard<std::mutex> lock(profileMutex_);
    // First insertion wins under a race; the kept-record set is a
    // pure function of (config, trace), so both images are identical.
    auto [it, inserted] =
        sampledProfiles_.try_emplace(key, std::move(image));
    (void)inserted;
    return it->second;
}

PhasedProfiles
Session::collectPhasedProfile(const Workload &workload,
                              size_t input_idx)
{
    auto split = workload.phaseSplitPc();
    if (!split)
        vpprof_fatal("workload '", workload.name(),
                     "' has no phase split pc");

    ProfileCollector init_collector(std::string(workload.name()) +
                                    ".init");
    ProfileCollector comp_collector(std::string(workload.name()) +
                                    ".comp");
    bool in_compute = false;
    CallbackTraceSink sink([&](const TraceRecord &rec) {
        if (!in_compute && rec.pc == *split)
            in_compute = true;
        if (in_compute)
            comp_collector.record(rec);
        else
            init_collector.record(rec);
    });
    traces_.replay(workload, input_idx, &sink);

    PhasedProfiles phases;
    phases.init = init_collector.takeImage();
    phases.compute = comp_collector.takeImage();
    return phases;
}

ProfileImage
Session::collectMergedProfile(const Workload &workload,
                              const std::vector<size_t> &inputs)
{
    if (inputs.empty())
        vpprof_fatal("collectMergedProfile: no training inputs");

    // Warm the per-input caches in parallel, then merge in index
    // order so the result is bit-identical for every jobs count.
    runner_.forEach(inputs.size(), [&](size_t i) {
        collectProfile(workload, inputs[i]);
    });
    ProfileImage merged(std::string(workload.name()));
    for (size_t idx : inputs)
        merged.merge(collectProfile(workload, idx));
    return merged;
}

Program
Session::annotatedProgram(const Workload &workload,
                          const std::vector<size_t> &train_inputs,
                          const InserterConfig &config)
{
    std::ostringstream key;
    key << workload.name();
    for (size_t idx : train_inputs)
        key << '|' << idx;

    const ProfileImage *image = nullptr;
    {
        std::lock_guard<std::mutex> lock(profileMutex_);
        auto it = mergedProfiles_.find(key.str());
        if (it != mergedProfiles_.end())
            image = &it->second;
    }
    if (!image) {
        ProfileImage merged = collectMergedProfile(workload,
                                                   train_inputs);
        std::lock_guard<std::mutex> lock(profileMutex_);
        auto [it, inserted] =
            mergedProfiles_.try_emplace(key.str(), std::move(merged));
        (void)inserted;
        image = &it->second;
    }

    Program program = workload.program();  // copy
    insertDirectives(program, *image, config);
    return program;
}

ClassificationAccuracy
Session::evaluateClassification(const Workload &workload,
                                size_t input_idx,
                                const Program &program,
                                Classifier &classifier)
{
    ClassificationEvaluator evaluator(classifier);
    DirectiveOverrideSink annotated(program, &evaluator);
    traces_.replay(workload, input_idx, &annotated);
    return evaluator.result();
}

FiniteTableStats
Session::evaluateFiniteTable(const Workload &workload, size_t input_idx,
                             const Program &program, VpPolicy policy,
                             const PredictorConfig &config)
{
    FiniteTableEvaluator evaluator(policy, config);
    DirectiveOverrideSink annotated(program, &evaluator);
    traces_.replay(workload, input_idx, &annotated);
    return evaluator.result();
}

IlpResult
Session::evaluateIlp(const Workload &workload, size_t input_idx,
                     const Program &program, const IlpConfig &ilp_config,
                     VpPolicy policy,
                     const PredictorConfig &predictor_config)
{
    StridePredictor predictor(predictor_config);
    DataflowEngine engine(ilp_config, policy,
                          policy == VpPolicy::None ? nullptr
                                                   : &predictor);
    DirectiveOverrideSink annotated(program, &engine);
    traces_.replay(workload, input_idx, &annotated);
    return engine.result();
}

FiniteTableStats
Session::evaluateHybridTable(const Workload &workload, size_t input_idx,
                             const Program &program,
                             const HybridConfig &config)
{
    HybridTableEvaluator evaluator(config);
    DirectiveOverrideSink annotated(program, &evaluator);
    traces_.replay(workload, input_idx, &annotated);
    return evaluator.result();
}

Session &
defaultSession()
{
    static Session session{SessionConfig{}};
    return session;
}

} // namespace vpprof
