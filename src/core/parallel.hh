/**
 * @file
 * ExperimentRunner: a small fixed-size thread pool that fans
 * independent experiment cells — (workload × input × threshold) sweep
 * points — out across cores with deterministic, index-ordered result
 * collection.
 *
 * Determinism contract: forEach(n, fn) calls fn(i) exactly once for
 * every i in [0, n), in an unspecified order and possibly concurrently.
 * Callers write results into a pre-sized vector at index i and perform
 * any cross-cell reduction *after* forEach returns, in index order, so
 * the outcome is bit-identical for every jobs count (the determinism
 * test pins jobs=1 against jobs=8 across the whole suite).
 *
 * Re-entrancy audit (what a cell body may touch):
 *  - Value predictors, classifiers, ProfileCollector and the dataflow
 *    engines keep all state in instance members — no mutable statics —
 *    but predict()/lookup() update LRU clocks and classifier counters
 *    train, so every cell must construct its OWN instances; instances
 *    are never shared across threads.
 *  - Session/TraceRepository calls are internally synchronized and may
 *    be shared freely across cells.
 *  - Stats accumulators (RatioStat, MeanStat, Histogram,
 *    CountingTraceSink, ProfileImage) are mergeable: accumulate
 *    per-cell, then merge(…) in index order after the barrier.
 */

#ifndef VPPROF_CORE_PARALLEL_HH
#define VPPROF_CORE_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vpprof
{

/** Fixed-size worker pool for embarrassingly parallel sweep cells. */
class ExperimentRunner
{
  public:
    /**
     * @param jobs Worker count; 0 picks the hardware concurrency.
     *        jobs == 1 never spawns threads — every cell runs inline
     *        on the calling thread (the determinism baseline).
     */
    explicit ExperimentRunner(unsigned jobs = 0);

    ~ExperimentRunner();

    ExperimentRunner(const ExperimentRunner &) = delete;
    ExperimentRunner &operator=(const ExperimentRunner &) = delete;

    unsigned jobs() const { return jobs_; }

    /**
     * Run fn(i) for every i in [0, n); blocks until all cells finish.
     * The calling thread participates, so the pool is never idle while
     * the caller waits. Nested calls from inside a cell run inline
     * (no deadlock), as do calls when jobs() == 1.
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn);

    /**
     * forEach with index-ordered result collection: out[i] = fn(i).
     */
    template <typename R>
    std::vector<R>
    map(size_t n, const std::function<R(size_t)> &fn)
    {
        std::vector<R> out(n);
        forEach(n, [&](size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    void workerLoop();

    /** Pull and run cells of the current batch until it is drained. */
    void drainBatch();

    unsigned jobs_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;   ///< workers wait for a batch
    std::condition_variable done_;   ///< forEach waits for completion

    // Current batch, guarded by mutex_ (cells pull the next index under
    // the lock; cells themselves run unlocked).
    const std::function<void(size_t)> *fn_ = nullptr;
    size_t n_ = 0;
    size_t next_ = 0;
    size_t completed_ = 0;
    uint64_t generation_ = 0;
    uint64_t batchPublishNs_ = 0;  ///< forEach publish time (queue-wait)
    bool shutdown_ = false;
};

} // namespace vpprof

#endif // VPPROF_CORE_PARALLEL_HH
