/**
 * @file
 * The trace-once, evaluate-many Session (the SHADE workflow, in
 * process form): a TraceRepository runs the VM exactly once per
 * (workload, input), streaming the dynamic trace into a cached buffer
 * — spilling to binary trace_io files above a resident-size cap — and
 * then replays the cached trace into any number of consumers: profile
 * collectors, classifiers, finite/hybrid table evaluations and the ILP
 * engine.
 *
 * Directives are pure metadata (they never change control flow or
 * values), so ONE raw trace serves every annotation threshold: replays
 * rewrite the per-record directive from the consumer's annotated
 * program via DirectiveOverrideSink. A threshold sweep that used to
 * re-interpret the workload dozens of times now interprets it once.
 *
 * All Session entry points are thread-safe; sweep cells running under
 * the ExperimentRunner share one Session freely.
 */

#ifndef VPPROF_CORE_SESSION_HH
#define VPPROF_CORE_SESSION_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "core/experiment.hh"
#include "core/parallel.hh"
#include "profile/sampling/sampling_policy.hh"

namespace vpprof
{

/** Tunables for a Session. */
struct SessionConfig
{
    /** Sweep-cell parallelism (ExperimentRunner width); 0 = #cores. */
    unsigned jobs = 1;

    /**
     * Directory holding persistent trace files for cross-process
     * reuse (the CLI's --trace-cache). Empty: traces live only for
     * this process, spilling to a private temp directory when the
     * resident budget overflows.
     */
    std::string traceCacheDir;

    /**
     * Aggregate in-memory trace budget, in records (~56 bytes each).
     * Traces that would push the total past the budget are kept on
     * disk and replayed through trace_io instead. 0 forces every
     * trace to disk (exercises the spill path).
     */
    uint64_t residentRecordBudget = 24'000'000;
};

/** Counters describing how a repository served its consumers. */
struct TraceRepoStats
{
    uint64_t vmRuns = 0;        ///< full VM interpretations performed
    uint64_t diskLoads = 0;     ///< traces adopted from the cache dir
    uint64_t replays = 0;       ///< replays served to consumers
    uint64_t uniqueTraces = 0;  ///< distinct (workload, input) keys
    uint64_t residentRecords = 0;  ///< records currently held in memory
    uint64_t spilledTraces = 0;    ///< traces living on disk
};

/**
 * Owns one cached dynamic trace per (workload, input): produced at
 * most once per process — by the VM, or adopted from a valid file in
 * the persistent cache directory — and replayed read-only thereafter.
 * Thread-safe; concurrent replays of one trace are lock-free.
 */
class TraceRepository
{
  public:
    explicit TraceRepository(const SessionConfig &config);

    /** Removes private temp spill files (not the persistent cache). */
    ~TraceRepository();

    TraceRepository(const TraceRepository &) = delete;
    TraceRepository &operator=(const TraceRepository &) = delete;

    /**
     * Replay (workload, input)'s trace into `sink`, producing it first
     * if this is the key's first use. Returns the original run result.
     */
    RunResult replay(const Workload &workload, size_t input_idx,
                     TraceSink *sink);

    /** One shared pass fanned out to several consumers. */
    RunResult replayInto(const Workload &workload, size_t input_idx,
                         const std::vector<TraceSink *> &sinks);

    TraceRepoStats stats() const;

    /** VM interpretations performed (the trace-once assertion hook). */
    uint64_t vmRuns() const;

  private:
    struct Entry;

    Entry &entryFor(const Workload &workload, size_t input_idx);
    void produce(Entry &entry, const Workload &workload,
                 size_t input_idx);

    SessionConfig config_;

    mutable std::mutex mutex_;  ///< guards entries_, stats_, tempDir_
    std::map<std::pair<std::string, size_t>, std::unique_ptr<Entry>>
        entries_;
    TraceRepoStats stats_;
    std::string tempDir_;  ///< created lazily on first spill
};

/**
 * One experiment session: a TraceRepository, an ExperimentRunner, and
 * memoized profile images / merged training profiles on top, exposing
 * replay-backed versions of the experiment pipelines. The free
 * functions in experiment.hh are thin wrappers over a process-wide
 * default Session.
 */
class Session
{
  public:
    explicit Session(SessionConfig config = {});
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    const SessionConfig &config() const { return config_; }
    TraceRepository &traces() { return traces_; }
    ExperimentRunner &runner() { return runner_; }

    /** Replay the (workload, input) trace into an arbitrary sink. */
    RunResult runTrace(const Workload &workload, size_t input_idx,
                       TraceSink *sink);

    /** One shared replay pass fanned out to several consumers. */
    RunResult replayInto(const Workload &workload, size_t input_idx,
                         const std::vector<TraceSink *> &sinks);

    /** Phase-2 profile of one run; memoized per (workload, input). */
    const ProfileImage &collectProfile(const Workload &workload,
                                       size_t input_idx);

    /**
     * Sampled phase-2 profile of one run, collected through the
     * sampled-profiling subsystem: the cached trace is replayed
     * through a SamplingTraceSink decorator into an exact collector —
     * or a memory-bounded SketchProfileCollector when the config asks
     * for one. Memoized per (workload, input, config.cacheKey());
     * exact configs share collectProfile()'s cache. Deterministic for
     * every jobs count: the kept-record set is a pure function of the
     * config and the trace.
     */
    const ProfileImage &collectSampledProfile(
        const Workload &workload, size_t input_idx,
        const SamplingConfig &sampling);

    /** Phase-2 profile split at the workload's phaseSplitPc(). */
    PhasedProfiles collectPhasedProfile(const Workload &workload,
                                        size_t input_idx);

    /**
     * Merged profile over several inputs: one VM pass per input (each
     * memoized), merged in index order. Inputs are profiled in
     * parallel across the runner when jobs > 1; the merge order makes
     * the result independent of the jobs count.
     */
    ProfileImage collectMergedProfile(const Workload &workload,
                                      const std::vector<size_t> &inputs);

    /**
     * The full three-phase methodology against cached traces; the
     * merged training profile is memoized per (workload, inputs) so a
     * threshold sweep re-annotates without re-profiling.
     */
    Program annotatedProgram(const Workload &workload,
                             const std::vector<size_t> &train_inputs,
                             const InserterConfig &config);

    /**
     * Subsection 5.1 classification accuracy over the cached trace,
     * with directives taken from `program` (pass workload.program()
     * for the un-annotated FSM baseline).
     */
    ClassificationAccuracy evaluateClassification(
        const Workload &workload, size_t input_idx,
        const Program &program, Classifier &classifier);

    /** Subsection 5.2 finite-table evaluation over the cached trace. */
    FiniteTableStats evaluateFiniteTable(const Workload &workload,
                                         size_t input_idx,
                                         const Program &program,
                                         VpPolicy policy,
                                         const PredictorConfig &config);

    /** Subsection 5.3 abstract-machine ILP over the cached trace. */
    IlpResult evaluateIlp(const Workload &workload, size_t input_idx,
                          const Program &program,
                          const IlpConfig &ilp_config, VpPolicy policy,
                          const PredictorConfig &predictor_config);

    /** Section 3.2 hybrid two-table evaluation over the cached trace. */
    FiniteTableStats evaluateHybridTable(const Workload &workload,
                                         size_t input_idx,
                                         const Program &program,
                                         const HybridConfig &config);

  private:
    SessionConfig config_;
    TraceRepository traces_;
    ExperimentRunner runner_;

    std::mutex profileMutex_;
    std::map<std::pair<std::string, size_t>, ProfileImage> profiles_;
    std::map<std::string, ProfileImage> mergedProfiles_;
    /** Keyed by (workload, input, sampling cache key). */
    std::map<std::tuple<std::string, size_t, std::string>, ProfileImage>
        sampledProfiles_;
};

/**
 * The process-wide Session backing the experiment.hh free functions
 * (jobs=1: parallelism is opted into by constructing an explicit
 * Session). Repeated profile/annotation requests across a test or
 * bench process hit its caches instead of re-interpreting workloads.
 */
Session &defaultSession();

} // namespace vpprof

#endif // VPPROF_CORE_SESSION_HH
