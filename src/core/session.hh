/**
 * @file
 * The trace-once, evaluate-many Session (the SHADE workflow, in
 * process form): a TraceRepository runs the VM exactly once per
 * (workload, input), streaming the dynamic trace into a cached buffer
 * — spilling to binary trace_io files above a resident-size cap — and
 * then replays the cached trace into any number of consumers: profile
 * collectors, classifiers, finite/hybrid table evaluations and the ILP
 * engine.
 *
 * Directives are pure metadata (they never change control flow or
 * values), so ONE raw trace serves every annotation threshold: replays
 * rewrite the per-record directive from the consumer's annotated
 * program via DirectiveOverrideSink. A threshold sweep that used to
 * re-interpret the workload dozens of times now interprets it once.
 *
 * All Session entry points are thread-safe; sweep cells running under
 * the ExperimentRunner share one Session freely.
 */

#ifndef VPPROF_CORE_SESSION_HH
#define VPPROF_CORE_SESSION_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "common/telemetry/metrics.hh"
#include "core/batch_replay.hh"
#include "core/experiment.hh"
#include "core/parallel.hh"
#include "profile/sampling/sampling_policy.hh"
#include "vm/trace_io.hh"

namespace vpprof
{

/** Tunables for a Session. */
struct SessionConfig
{
    /** Sweep-cell parallelism (ExperimentRunner width); 0 = #cores. */
    unsigned jobs = 1;

    /**
     * Directory holding persistent trace files for cross-process
     * reuse (the CLI's --trace-cache). Empty: traces live only for
     * this process, spilling to a private temp directory when the
     * resident budget overflows.
     */
    std::string traceCacheDir;

    /**
     * Aggregate in-memory trace budget, in records. Traces that would
     * push the total past the budget are kept on disk and replayed
     * through trace_io instead. 0 forces every trace to disk
     * (exercises the spill path). Resident traces are held in the
     * columnar encoded form (~8-12 bytes per record instead of the
     * 56-byte AoS record), which is why the default is 4x the old
     * AoS-era budget for the same memory ceiling.
     */
    uint64_t residentRecordBudget = 96'000'000;
};

/**
 * Counters describing how a repository served its consumers, and how
 * it recovered when the filesystem misbehaved. The recovery counters
 * account for every fault the repository absorbed: crash-consistency
 * tests assert them, the CLI prints them under --stats, and the
 * benches record them next to wall times.
 *
 * This struct is a typed snapshot VIEW: the live values are
 * telemetry-backed counters (registry names `trace.*`, see
 * DESIGN.md §10), so --stats, tests, bench JSON and --metrics-out all
 * read one source of truth. stats() reads each counter individually
 * (lock-free); a snapshot taken while another thread is mid-update
 * may be one event stale per counter, but at any quiescent point it
 * is exact.
 */
struct TraceRepoStats
{
    uint64_t vmRuns = 0;        ///< trace-producing VM interpretations
    uint64_t diskLoads = 0;     ///< traces adopted from the cache dir
    uint64_t replays = 0;       ///< replays served to consumers
    uint64_t uniqueTraces = 0;  ///< distinct (workload, input) keys
    uint64_t residentRecords = 0;  ///< records currently held in memory
    uint64_t spilledTraces = 0;    ///< traces living on disk

    /** Unusable cache files renamed aside to `<file>.bad`. */
    uint64_t corruptQuarantined = 0;
    /**
     * Times a trace was re-produced by the VM because a persisted
     * copy was unusable: re-captures after a quarantine, mid-replay
     * fallbacks, and every degraded re-interpretation replay. These
     * deliberately do NOT count into vmRuns, so the trace-once
     * invariant (vmRuns <= uniqueTraces) keeps holding under faults.
     */
    uint64_t regenerations = 0;
    /** Failed attempts to persist a trace (cache write or spill). */
    uint64_t spillFailures = 0;
    /** Mid-replay read errors retried once from disk. */
    uint64_t readRetries = 0;

    /** Columnar (v3) blocks decoded: resident batch fans + v3 file
     *  reads. The decode-amplification observable — one batched pass
     *  decodes each block once however many evaluators listen. */
    uint64_t v3BlocksDecoded = 0;
    /** Bytes of v3 trace files mapped (or buffered) by readers. */
    uint64_t v3BytesMapped = 0;

    /**
     * The counters as JSON object members (no surrounding braces):
     * `"vm_runs": N, "disk_loads": N, ...`. The one definition of the
     * snake_case names BENCH_session.json entries and the perf-gate
     * baselines use.
     */
    void writeJsonFields(std::ostream &os) const;
};

/**
 * The stats as one complete JSON object (writeJsonFields wrapped in
 * braces): the single serializer behind `vpprof_cli --stats-json`,
 * the daemon protocol's `stats` response and vpprofd's --stats dump,
 * so the three surfaces can never drift apart.
 */
std::string repoStatsJson(const TraceRepoStats &stats);

/**
 * Owns one cached dynamic trace per (workload, input): produced at
 * most once per process — by the VM, or adopted from a valid file in
 * the persistent cache directory — and replayed read-only thereafter.
 * Thread-safe; concurrent replays of one trace are lock-free.
 *
 * Failure model (see DESIGN.md §9): the repository never aborts on a
 * sick cache. An unusable cache file (truncated, corrupt, wrong
 * version) is quarantined — renamed to `<file>.bad` — and the trace
 * is regenerated by the VM; quarantined files are never re-probed
 * within a process (each key is produced at most once, and the probe
 * only ever looks at the exact `<workload>.in<N>.trace` name). A
 * mid-replay read error is retried once from disk, resuming past the
 * records the sink already consumed, then falls back to regenerating
 * the tail via the VM — replay is deterministic, so consumers see
 * bit-identical records either way. A spill that fails (e.g. ENOSPC)
 * degrades the trace to re-interpretation mode: replays re-run the VM
 * with a rate-limited warning instead of dying. Captures into a
 * shared cache directory serialize on an advisory `<file>.lock`
 * flock, so concurrent processes sharing one --trace-cache neither
 * duplicate VM work nor race the probe-then-commit sequence.
 */
class TraceRepository
{
  public:
    explicit TraceRepository(const SessionConfig &config);

    /** Removes private temp spill files (not the persistent cache). */
    ~TraceRepository();

    TraceRepository(const TraceRepository &) = delete;
    TraceRepository &operator=(const TraceRepository &) = delete;

    /**
     * Replay (workload, input)'s trace into `sink`, producing it first
     * if this is the key's first use. Returns the original run result.
     */
    RunResult replay(const Workload &workload, size_t input_idx,
                     TraceSink *sink);

    /** One shared pass fanned out to several consumers. */
    RunResult replayInto(const Workload &workload, size_t input_idx,
                         const std::vector<TraceSink *> &sinks);

    /**
     * Batched replay: decode each trace block once and fan the SoA
     * view to every evaluator in the bank (resident traces feed the
     * bank directly; disk/degraded traces stream through the existing
     * record-level recovery ladder re-blocked by a BlockAssembler, so
     * fault recovery and bit-identity carry over unchanged).
     */
    RunResult replayBatch(const Workload &workload, size_t input_idx,
                          EvaluatorBank &bank);

    TraceRepoStats stats() const;

    /** VM interpretations performed (the trace-once assertion hook). */
    uint64_t vmRuns() const;

  private:
    struct Entry;

    /** What probing the persistent cache for a key found. */
    enum class AdoptOutcome
    {
        Adopted,     ///< valid file adopted; entry is produced
        Missing,     ///< no usable file (absent/unreadable); capture
        Quarantined, ///< sick file renamed aside; capture (and count)
    };

    Entry &entryFor(const Workload &workload, size_t input_idx);
    void produce(Entry &entry, const Workload &workload,
                 size_t input_idx);
    AdoptOutcome adoptCacheFile(Entry &entry, const std::string &path);
    void quarantine(const std::string &path, TraceIoStatus status);
    bool writeTraceFile(const std::string &path,
                        const ColumnarTrace &trace);
    void replayFromDisk(Entry &entry, const Workload &workload,
                        size_t input_idx, TraceSink *sink);
    /** Temp-dir spill path for a key; empty when the dir can't exist. */
    std::string spillPathFor(const std::string &name, size_t input_idx);

    /**
     * The live counters behind TraceRepoStats: per-repository values
     * (value() feeds stats()) mirrored into the process-wide
     * telemetry registry under the same `trace.*` names, aggregated
     * across repositories for --metrics-out. Increments are relaxed
     * atomics — no lock on the serving path; only the
     * residentRecords budget reservation still runs under mutex_ so
     * the check-then-add stays atomic.
     */
    struct Counters
    {
        telemetry::ScopedCounter vmRuns{"trace.vm_runs"};
        telemetry::ScopedCounter diskLoads{"trace.disk_loads"};
        telemetry::ScopedCounter replays{"trace.replays"};
        telemetry::ScopedCounter uniqueTraces{"trace.unique_traces"};
        telemetry::ScopedGauge residentRecords{
            "trace.resident_records"};
        telemetry::ScopedCounter spilledTraces{"trace.spilled_traces"};
        telemetry::ScopedCounter corruptQuarantined{
            "trace.corrupt_quarantined"};
        telemetry::ScopedCounter regenerations{"trace.regenerations"};
        telemetry::ScopedCounter spillFailures{"trace.spill_failures"};
        telemetry::ScopedCounter readRetries{"trace.read_retries"};
        telemetry::ScopedCounter v3BlocksDecoded{
            "trace.v3.blocks_decoded"};
        telemetry::ScopedCounter v3BytesMapped{"trace.v3.bytes_mapped"};
    };

    SessionConfig config_;

    mutable std::mutex mutex_;  ///< guards entries_, tempDir_, budget
    std::map<std::pair<std::string, size_t>, std::unique_ptr<Entry>>
        entries_;
    Counters counters_;
    std::string tempDir_;  ///< created lazily on first spill
};

/**
 * One experiment session: a TraceRepository, an ExperimentRunner, and
 * memoized profile images / merged training profiles on top, exposing
 * replay-backed versions of the experiment pipelines. The free
 * functions in experiment.hh are thin wrappers over a process-wide
 * default Session.
 */
class Session
{
  public:
    explicit Session(SessionConfig config = {});
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    const SessionConfig &config() const { return config_; }
    TraceRepository &traces() { return traces_; }
    ExperimentRunner &runner() { return runner_; }

    /** Replay the (workload, input) trace into an arbitrary sink. */
    RunResult runTrace(const Workload &workload, size_t input_idx,
                       TraceSink *sink);

    /** One shared replay pass fanned out to several consumers. */
    RunResult replayInto(const Workload &workload, size_t input_idx,
                         const std::vector<TraceSink *> &sinks);

    /**
     * One batched replay pass: each trace block decodes once and fans
     * out to every evaluator in the bank, with per-slot directive
     * columns replacing the per-record DirectiveOverrideSink copies.
     * The pass delivers the identical record stream a serial replay
     * would — evaluators cannot tell the difference.
     */
    RunResult replayInto(const Workload &workload, size_t input_idx,
                         EvaluatorBank &bank);

    /** Phase-2 profile of one run; memoized per (workload, input). */
    const ProfileImage &collectProfile(const Workload &workload,
                                       size_t input_idx);

    /**
     * Sampled phase-2 profile of one run, collected through the
     * sampled-profiling subsystem: the cached trace is replayed
     * through a SamplingTraceSink decorator into an exact collector —
     * or a memory-bounded SketchProfileCollector when the config asks
     * for one. Memoized per (workload, input, config.cacheKey());
     * exact configs share collectProfile()'s cache. Deterministic for
     * every jobs count: the kept-record set is a pure function of the
     * config and the trace.
     */
    const ProfileImage &collectSampledProfile(
        const Workload &workload, size_t input_idx,
        const SamplingConfig &sampling);

    /** Phase-2 profile split at the workload's phaseSplitPc(). */
    PhasedProfiles collectPhasedProfile(const Workload &workload,
                                        size_t input_idx);

    /**
     * Merged profile over several inputs: one VM pass per input (each
     * memoized), merged in index order. Inputs are profiled in
     * parallel across the runner when jobs > 1; the merge order makes
     * the result independent of the jobs count.
     */
    ProfileImage collectMergedProfile(const Workload &workload,
                                      const std::vector<size_t> &inputs);

    /**
     * The full three-phase methodology against cached traces; the
     * merged training profile is memoized per (workload, inputs) so a
     * threshold sweep re-annotates without re-profiling.
     */
    Program annotatedProgram(const Workload &workload,
                             const std::vector<size_t> &train_inputs,
                             const InserterConfig &config);

    /**
     * Subsection 5.1 classification accuracy over the cached trace,
     * with directives taken from `program` (pass workload.program()
     * for the un-annotated FSM baseline).
     */
    ClassificationAccuracy evaluateClassification(
        const Workload &workload, size_t input_idx,
        const Program &program, Classifier &classifier);

    /** Subsection 5.2 finite-table evaluation over the cached trace. */
    FiniteTableStats evaluateFiniteTable(const Workload &workload,
                                         size_t input_idx,
                                         const Program &program,
                                         VpPolicy policy,
                                         const PredictorConfig &config);

    /** Subsection 5.3 abstract-machine ILP over the cached trace. */
    IlpResult evaluateIlp(const Workload &workload, size_t input_idx,
                          const Program &program,
                          const IlpConfig &ilp_config, VpPolicy policy,
                          const PredictorConfig &predictor_config);

    /** Section 3.2 hybrid two-table evaluation over the cached trace. */
    FiniteTableStats evaluateHybridTable(const Workload &workload,
                                         size_t input_idx,
                                         const Program &program,
                                         const HybridConfig &config);

  private:
    SessionConfig config_;
    TraceRepository traces_;
    ExperimentRunner runner_;

    std::mutex profileMutex_;
    std::map<std::pair<std::string, size_t>, ProfileImage> profiles_;
    std::map<std::string, ProfileImage> mergedProfiles_;
    /** Keyed by (workload, input, sampling cache key). */
    std::map<std::tuple<std::string, size_t, std::string>, ProfileImage>
        sampledProfiles_;
};

/**
 * The process-wide Session backing the experiment.hh free functions
 * (jobs=1: parallelism is opted into by constructing an explicit
 * Session). Repeated profile/annotation requests across a test or
 * bench process hit its caches instead of re-interpreting workloads.
 */
Session &defaultSession();

} // namespace vpprof

#endif // VPPROF_CORE_SESSION_HH
