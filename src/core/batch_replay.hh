/**
 * @file
 * Batch replay: decode each cached trace block ONCE and fan it out to
 * many evaluators simultaneously — the paper's one-profile-serves-many
 * premise applied to our own replay layer. Where a configuration
 * sweep used to stream the same trace K times (once per evaluator,
 * each behind its own record-copying DirectiveOverrideSink), an
 * EvaluatorBank streams it once: the directive column is rewritten
 * per distinct annotation program (a column fill, not a per-record
 * copy), and each evaluator consumes the shared SoA view.
 *
 * Two consumer shapes share one fan-out:
 *  - block sinks (TraceBlockSink — the evaluators' native batch path)
 *    receive the column view directly;
 *  - record sinks (any existing TraceSink, e.g. the ILP dataflow
 *    engine) receive re-assembled records from the same decoded block.
 *
 * BlockAssembler is the bridge in the other direction: it turns any
 * record-level source (a v1/v2 trace file, a VM regeneration, the
 * repository's recovery ladder) into blocks feeding the same bank, so
 * every replay source — resident columnar, v3 file, compat formats,
 * fault-recovery tails — drives evaluators through one code path and
 * stays bit-identical to serial replay by construction.
 */

#ifndef VPPROF_CORE_BATCH_REPLAY_HH
#define VPPROF_CORE_BATCH_REPLAY_HH

#include <vector>

#include "isa/program.hh"
#include "vm/trace_block.hh"

namespace vpprof
{

/**
 * A set of trace consumers sharing one decode pass. Each slot
 * optionally names an annotation Program whose directives replace the
 * trace's own (the column form of DirectiveOverrideSink); slots
 * naming the same Program share one rewritten column per block.
 *
 * Not thread-safe: one bank drives one replay pass. Records are
 * delivered to every slot in registration order, in trace order —
 * exactly the stream a serial replay would deliver.
 */
class EvaluatorBank : public TraceBlockSink
{
  public:
    /** Add a record-level consumer (assembled per record). */
    void addRecordSink(TraceSink *sink,
                       const Program *annotation = nullptr);

    /** Add a column-level consumer (the fast path). */
    void addBlockSink(TraceBlockSink *sink,
                      const Program *annotation = nullptr);

    size_t size() const { return slots_.size(); }

    void consumeBlock(const TraceBlockView &block) override;

  private:
    struct Slot
    {
        TraceSink *sink = nullptr;       // exactly one of sink/block
        TraceBlockSink *block = nullptr;
        int dirColumn = -1;              // index into dirColumns_; -1 raw
    };

    int dirColumnFor(const Program *annotation);

    std::vector<Slot> slots_;
    std::vector<const Program *> programs_;
    std::vector<std::vector<uint8_t>> dirColumns_;
};

/**
 * TraceSink that regroups a record stream into blocks for a
 * TraceBlockSink (normally an EvaluatorBank). Call flush() after the
 * final record to deliver the partial tail block. Block boundaries
 * carry no meaning downstream, so a resumed recovery-ladder stream
 * re-blocked at different offsets is indistinguishable from the
 * original pass.
 */
class BlockAssembler : public TraceSink
{
  public:
    explicit BlockAssembler(TraceBlockSink *sink) : sink_(sink) {}

    ~BlockAssembler() override { flush(); }

    void
    record(const TraceRecord &rec) override
    {
        uint32_t i = count_;
        scratch_.seq[i] = rec.seq;
        scratch_.pc[i] = rec.pc;
        scratch_.op[i] = static_cast<uint8_t>(rec.op);
        scratch_.directive[i] = static_cast<uint8_t>(rec.directive);
        scratch_.writesReg[i] = rec.writesReg ? 1 : 0;
        scratch_.dest[i] = rec.dest;
        scratch_.value[i] = rec.value;
        scratch_.numSrcs[i] = rec.numSrcs;
        scratch_.src0[i] = rec.srcs[0];
        scratch_.src1[i] = rec.srcs[1];
        scratch_.isMem[i] = rec.isMem ? 1 : 0;
        scratch_.memAddr[i] = rec.memAddr;
        if (++count_ == kTraceBlockCapacity)
            flush();
    }

    /** Deliver buffered records as a (possibly partial) block. */
    void
    flush()
    {
        if (count_ == 0)
            return;
        sink_->consumeBlock(scratch_.view(count_, scratch_.seq[0]));
        count_ = 0;
    }

  private:
    TraceBlockSink *sink_;
    TraceBlockScratch scratch_;
    uint32_t count_ = 0;
};

} // namespace vpprof

#endif // VPPROF_CORE_BATCH_REPLAY_HH
