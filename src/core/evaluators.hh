/**
 * @file
 * Streaming evaluators: the per-record measurement loops of Section 5,
 * factored out of the experiment free functions into reusable
 * TraceSinks so the same code runs attached directly to a Machine
 * (one-shot evaluation) or replayed from a Session's cached trace
 * (trace-once, evaluate-many). Several evaluators can share one pass
 * over a trace via MultiTraceSink.
 *
 * Re-entrancy contract: every evaluator owns its predictor tables and
 * counters; nothing here touches global state, so concurrent
 * evaluations are safe as long as each thread drives its own evaluator
 * instances (and its own Classifier — classifiers hold run-time
 * counters too).
 */

#ifndef VPPROF_CORE_EVALUATORS_HH
#define VPPROF_CORE_EVALUATORS_HH

#include "core/experiment.hh"
#include "predictors/hybrid_predictor.hh"
#include "predictors/stride_predictor.hh"
#include "vm/trace.hh"
#include "vm/trace_block.hh"

namespace vpprof
{

/**
 * Rewrites each record's directive from a (possibly annotated) static
 * program before forwarding to an inner sink.
 *
 * Directives are pure metadata: they never change control flow or
 * computed values, only the `directive` field the Machine copies into
 * each record. One raw trace captured from the un-annotated program
 * therefore replays for *any* annotation of the same program — the
 * observation the trace-once Session architecture rests on.
 */
class DirectiveOverrideSink : public TraceSink
{
  public:
    /** @param program Annotation source; held by reference, not owned. */
    DirectiveOverrideSink(const Program &program, TraceSink *inner)
        : program_(program), inner_(inner)
    {
    }

    void
    record(const TraceRecord &rec) override
    {
        TraceRecord out = rec;
        out.directive = program_.at(rec.pc).directive;
        inner_->record(out);
    }

  private:
    const Program &program_;
    TraceSink *inner_;
};

/**
 * The classification-accuracy loop of Subsection 5.1: an infinite
 * stride predictor attempts every value-producing instruction; the
 * classifier rules each attempt in or out.
 */
class ClassificationEvaluator : public TraceSink, public TraceBlockSink
{
  public:
    /** @param classifier Ruled-in/out decisions; held by reference. */
    explicit ClassificationEvaluator(Classifier &classifier);

    void record(const TraceRecord &rec) override;

    /** Column-batch path; bit-identical to record-at-a-time replay. */
    void consumeBlock(const TraceBlockView &block) override;

    const ClassificationAccuracy &result() const { return acc_; }

  private:
    void step(uint64_t pc, int64_t value, Directive directive);

    Classifier &classifier_;
    StridePredictor predictor_;
    ClassificationAccuracy acc_;
};

/**
 * The finite-table loop of Subsection 5.2: a finite stride predictor
 * driven either by per-entry saturating counters (VpPolicy::Fsm) or by
 * opcode directives with allocate-tagged-only (VpPolicy::Profile).
 */
class FiniteTableEvaluator : public TraceSink, public TraceBlockSink
{
  public:
    FiniteTableEvaluator(VpPolicy policy, const PredictorConfig &config);

    void record(const TraceRecord &rec) override;

    /** Column-batch path; bit-identical to record-at-a-time replay. */
    void consumeBlock(const TraceBlockView &block) override;

    /** Stats so far (evictions included). */
    FiniteTableStats result() const;

  private:
    void step(uint64_t pc, int64_t value, Directive directive);

    VpPolicy policy_;
    StridePredictor predictor_;
    FiniteTableStats stats_;
};

/**
 * The hybrid two-table loop (Section 3.2's proposal): stride plus
 * last-value sub-tables, steered and allocated purely by directives.
 */
class HybridTableEvaluator : public TraceSink, public TraceBlockSink
{
  public:
    explicit HybridTableEvaluator(const HybridConfig &config);

    void record(const TraceRecord &rec) override;

    /** Column-batch path; bit-identical to record-at-a-time replay. */
    void consumeBlock(const TraceBlockView &block) override;

    FiniteTableStats result() const;

  private:
    void step(uint64_t pc, int64_t value, Directive directive);

    HybridPredictor predictor_;
    FiniteTableStats stats_;
};

} // namespace vpprof

#endif // VPPROF_CORE_EVALUATORS_HH
