#include "core/batch_replay.hh"

#include "common/logging.hh"

namespace vpprof
{

int
EvaluatorBank::dirColumnFor(const Program *annotation)
{
    if (annotation == nullptr)
        return -1;
    for (size_t i = 0; i < programs_.size(); ++i)
        if (programs_[i] == annotation)
            return static_cast<int>(i);
    programs_.push_back(annotation);
    dirColumns_.emplace_back(kTraceBlockCapacity);
    return static_cast<int>(programs_.size() - 1);
}

void
EvaluatorBank::addRecordSink(TraceSink *sink, const Program *annotation)
{
    if (sink == nullptr)
        vpprof_panic("EvaluatorBank::addRecordSink: null sink");
    Slot slot;
    slot.sink = sink;
    slot.dirColumn = dirColumnFor(annotation);
    slots_.push_back(slot);
}

void
EvaluatorBank::addBlockSink(TraceBlockSink *sink, const Program *annotation)
{
    if (sink == nullptr)
        vpprof_panic("EvaluatorBank::addBlockSink: null sink");
    Slot slot;
    slot.block = sink;
    slot.dirColumn = dirColumnFor(annotation);
    slots_.push_back(slot);
}

void
EvaluatorBank::consumeBlock(const TraceBlockView &block)
{
    // Rewrite the directive column once per distinct annotation
    // program; every slot sharing that program reuses the fill.
    for (size_t p = 0; p < programs_.size(); ++p) {
        const Program &prog = *programs_[p];
        uint8_t *col = dirColumns_[p].data();
        for (uint32_t i = 0; i < block.count; ++i)
            col[i] = static_cast<uint8_t>(prog.at(block.pc[i]).directive);
    }
    for (const Slot &slot : slots_) {
        TraceBlockView view = block;
        if (slot.dirColumn >= 0)
            view.directive = dirColumns_[slot.dirColumn].data();
        if (slot.block != nullptr) {
            slot.block->consumeBlock(view);
        } else {
            for (uint32_t i = 0; i < view.count; ++i)
                slot.sink->record(view.record(i));
        }
    }
}

} // namespace vpprof
