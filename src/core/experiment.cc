#include "core/experiment.hh"

#include "common/logging.hh"
#include "common/telemetry/telemetry.hh"
#include "core/evaluators.hh"
#include "core/session.hh"
#include "predictors/stride_predictor.hh"
#include "profile/profile_collector.hh"

namespace vpprof
{

// The workload-keyed pipelines delegate to the process-wide Session:
// each (workload, input) pair is interpreted at most once per process
// and replayed from the cached trace thereafter. The raw
// (Program, MemoryImage) evaluators below cannot be keyed, so they
// drive the Machine directly — through the same evaluator sinks the
// Session uses, so both paths share one measurement loop.

RunResult
runTrace(const Workload &workload, size_t input_idx, TraceSink *sink)
{
    return defaultSession().runTrace(workload, input_idx, sink);
}

RunResult
runProgram(const Program &program, const MemoryImage &image,
           TraceSink *sink, uint64_t max_insts)
{
    // One coarse span per VM run — never per instruction.
    VPPROF_TIMED_SPAN("vm.interpret");
    static const telemetry::Counter vm_runs("vm.runs");
    vm_runs.add();
    Machine machine(program, image);
    RunResult result = machine.run(sink, max_insts);
    if (!result.halted)
        vpprof_fatal("program '", program.name(),
                     "' hit the instruction limit (", max_insts, ")");
    return result;
}

ProfileImage
collectProfile(const Workload &workload, size_t input_idx)
{
    return defaultSession().collectProfile(workload, input_idx);
}

PhasedProfiles
collectPhasedProfile(const Workload &workload, size_t input_idx)
{
    return defaultSession().collectPhasedProfile(workload, input_idx);
}

std::vector<size_t>
trainingInputsFor(const Workload &workload, size_t eval_idx)
{
    std::vector<size_t> inputs;
    for (size_t i = 0; i < workload.numInputSets(); ++i) {
        if (i != eval_idx)
            inputs.push_back(i);
    }
    return inputs;
}

ProfileImage
collectMergedProfile(const Workload &workload,
                     const std::vector<size_t> &inputs)
{
    return defaultSession().collectMergedProfile(workload, inputs);
}

Program
annotatedProgram(const Workload &workload,
                 const std::vector<size_t> &train_inputs,
                 const InserterConfig &config)
{
    return defaultSession().annotatedProgram(workload, train_inputs,
                                             config);
}

ClassificationAccuracy
evaluateClassification(const Program &program, const MemoryImage &image,
                       Classifier &classifier)
{
    ClassificationEvaluator evaluator(classifier);
    runProgram(program, image, &evaluator);
    return evaluator.result();
}

FiniteTableStats
evaluateFiniteTable(const Program &program, const MemoryImage &image,
                    VpPolicy policy, const PredictorConfig &config)
{
    FiniteTableEvaluator evaluator(policy, config);
    runProgram(program, image, &evaluator);
    return evaluator.result();
}

IlpResult
evaluateIlp(const Program &program, const MemoryImage &image,
            const IlpConfig &ilp_config, VpPolicy policy,
            const PredictorConfig &predictor_config)
{
    StridePredictor predictor(predictor_config);
    DataflowEngine engine(ilp_config, policy,
                          policy == VpPolicy::None ? nullptr
                                                   : &predictor);
    runProgram(program, image, &engine);
    return engine.result();
}

FiniteTableStats
evaluateHybridTable(const Program &program, const MemoryImage &image,
                    const HybridConfig &config)
{
    HybridTableEvaluator evaluator(config);
    runProgram(program, image, &evaluator);
    return evaluator.result();
}

PredictorConfig
paperFiniteConfig(bool with_counters)
{
    PredictorConfig config;
    config.numEntries = 512;
    config.associativity = 2;
    config.counterBits = with_counters ? 2 : 0;
    config.counterInit = 1;
    return config;
}

PredictorConfig
infiniteConfig()
{
    PredictorConfig config;
    config.numEntries = 0;
    config.counterBits = 0;
    return config;
}

} // namespace vpprof
