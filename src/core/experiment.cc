#include "core/experiment.hh"

#include "common/logging.hh"
#include "predictors/stride_predictor.hh"
#include "profile/profile_collector.hh"

namespace vpprof
{

RunResult
runTrace(const Workload &workload, size_t input_idx, TraceSink *sink)
{
    return runProgram(workload.program(), workload.input(input_idx),
                      sink, workload.maxInstructions());
}

RunResult
runProgram(const Program &program, const MemoryImage &image,
           TraceSink *sink, uint64_t max_insts)
{
    Machine machine(program, image);
    RunResult result = machine.run(sink, max_insts);
    if (!result.halted)
        vpprof_fatal("program '", program.name(),
                     "' hit the instruction limit (", max_insts, ")");
    return result;
}

ProfileImage
collectProfile(const Workload &workload, size_t input_idx)
{
    ProfileCollector collector(std::string(workload.name()));
    runTrace(workload, input_idx, &collector);
    return collector.takeImage();
}

PhasedProfiles
collectPhasedProfile(const Workload &workload, size_t input_idx)
{
    auto split = workload.phaseSplitPc();
    if (!split)
        vpprof_fatal("workload '", workload.name(),
                     "' has no phase split pc");

    ProfileCollector init_collector(std::string(workload.name()) +
                                    ".init");
    ProfileCollector comp_collector(std::string(workload.name()) +
                                    ".comp");
    bool in_compute = false;
    CallbackTraceSink sink([&](const TraceRecord &rec) {
        if (!in_compute && rec.pc == *split)
            in_compute = true;
        if (in_compute)
            comp_collector.record(rec);
        else
            init_collector.record(rec);
    });
    runTrace(workload, input_idx, &sink);

    PhasedProfiles phases;
    phases.init = init_collector.takeImage();
    phases.compute = comp_collector.takeImage();
    return phases;
}

std::vector<size_t>
trainingInputsFor(const Workload &workload, size_t eval_idx)
{
    std::vector<size_t> inputs;
    for (size_t i = 0; i < workload.numInputSets(); ++i) {
        if (i != eval_idx)
            inputs.push_back(i);
    }
    return inputs;
}

ProfileImage
collectMergedProfile(const Workload &workload,
                     const std::vector<size_t> &inputs)
{
    if (inputs.empty())
        vpprof_fatal("collectMergedProfile: no training inputs");
    ProfileImage merged(std::string(workload.name()));
    for (size_t idx : inputs)
        merged.merge(collectProfile(workload, idx));
    return merged;
}

Program
annotatedProgram(const Workload &workload,
                 const std::vector<size_t> &train_inputs,
                 const InserterConfig &config)
{
    ProfileImage image = collectMergedProfile(workload, train_inputs);
    Program program = workload.program();  // copy
    insertDirectives(program, image, config);
    return program;
}

ClassificationAccuracy
evaluateClassification(const Program &program, const MemoryImage &image,
                       Classifier &classifier)
{
    StridePredictor predictor(infiniteConfig());
    ClassificationAccuracy acc;

    CallbackTraceSink sink([&](const TraceRecord &rec) {
        if (!rec.writesReg)
            return;
        Prediction pred = predictor.predict(rec.pc, rec.directive);
        bool correct = pred.hit && pred.value == rec.value;
        if (pred.hit) {
            bool take = classifier.shouldPredict(rec.pc, rec.directive);
            if (correct) {
                ++acc.corrects;
                if (take)
                    ++acc.correctsAccepted;
            } else {
                ++acc.mispredictions;
                if (!take)
                    ++acc.mispredictionsCaught;
            }
            classifier.train(rec.pc, correct);
        }
        predictor.update(rec.pc, rec.value, correct, rec.directive,
                         true);
    });
    runProgram(program, image, &sink);
    return acc;
}

FiniteTableStats
evaluateFiniteTable(const Program &program, const MemoryImage &image,
                    VpPolicy policy, const PredictorConfig &config)
{
    if (policy != VpPolicy::Fsm && policy != VpPolicy::Profile)
        vpprof_panic("evaluateFiniteTable: policy must be Fsm or "
                     "Profile");
    StridePredictor predictor(config);
    FiniteTableStats stats;

    CallbackTraceSink sink([&](const TraceRecord &rec) {
        if (!rec.writesReg)
            return;
        ++stats.producers;
        bool tagged = rec.directive != Directive::None;
        bool candidate = policy == VpPolicy::Profile ? tagged : true;
        if (candidate)
            ++stats.candidates;

        Prediction pred = predictor.predict(rec.pc, rec.directive);
        bool use = policy == VpPolicy::Fsm
            ? pred.hit && pred.counterApproves
            : pred.hit && tagged;
        bool correct = pred.hit && pred.value == rec.value;
        if (use) {
            if (correct)
                ++stats.correctTaken;
            else
                ++stats.incorrectTaken;
        }
        predictor.update(rec.pc, rec.value, correct, rec.directive,
                         candidate);
    });
    runProgram(program, image, &sink);
    stats.evictions = predictor.evictions();
    return stats;
}

IlpResult
evaluateIlp(const Program &program, const MemoryImage &image,
            const IlpConfig &ilp_config, VpPolicy policy,
            const PredictorConfig &predictor_config)
{
    StridePredictor predictor(predictor_config);
    DataflowEngine engine(ilp_config, policy,
                          policy == VpPolicy::None ? nullptr
                                                   : &predictor);
    runProgram(program, image, &engine);
    return engine.result();
}

FiniteTableStats
evaluateHybridTable(const Program &program, const MemoryImage &image,
                    const HybridConfig &config)
{
    HybridPredictor predictor(config);
    FiniteTableStats stats;

    CallbackTraceSink sink([&](const TraceRecord &rec) {
        if (!rec.writesReg)
            return;
        ++stats.producers;
        bool tagged = rec.directive != Directive::None;
        if (tagged)
            ++stats.candidates;

        Prediction pred = predictor.predict(rec.pc, rec.directive);
        bool correct = pred.hit && pred.value == rec.value;
        if (pred.hit && tagged) {
            if (correct)
                ++stats.correctTaken;
            else
                ++stats.incorrectTaken;
        }
        predictor.update(rec.pc, rec.value, correct, rec.directive,
                         tagged);
    });
    runProgram(program, image, &sink);
    stats.evictions = predictor.evictions();
    return stats;
}

PredictorConfig
paperFiniteConfig(bool with_counters)
{
    PredictorConfig config;
    config.numEntries = 512;
    config.associativity = 2;
    config.counterBits = with_counters ? 2 : 0;
    config.counterInit = 1;
    return config;
}

PredictorConfig
infiniteConfig()
{
    PredictorConfig config;
    config.numEntries = 0;
    config.counterBits = 0;
    return config;
}

} // namespace vpprof
