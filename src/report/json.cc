#include "report/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vpprof
{
namespace report
{

const JsonValue *
JsonValue::get(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = object_.find(std::string(key));
    return it == object_.end() ? nullptr : &it->second;
}

double
JsonValue::numberOr(std::string_view key, double fallback) const
{
    const JsonValue *v = get(key);
    return v && v->isNumber() ? v->asNumber() : fallback;
}

std::string
JsonValue::stringOr(std::string_view key, std::string_view fallback) const
{
    const JsonValue *v = get(key);
    return v && v->isString() ? v->asString() : std::string(fallback);
}

namespace
{

/** Recursive-descent RFC 8259 parser over a string_view. */
struct Parser
{
    const char *cur;
    const char *end;
    const char *begin;
    std::string error;

    static constexpr int kMaxDepth = 128;

    bool
    fail(const std::string &what)
    {
        if (error.empty()) {
            error = what + " at offset " +
                    std::to_string(cur - begin);
        }
        return false;
    }

    void
    skipWs()
    {
        while (cur < end && (*cur == ' ' || *cur == '\t' ||
                             *cur == '\n' || *cur == '\r'))
            ++cur;
    }

    bool
    consume(char c)
    {
        if (cur < end && *cur == c) {
            ++cur;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, size_t len)
    {
        if (static_cast<size_t>(end - cur) < len ||
            std::memcmp(cur, word, len) != 0)
            return fail(std::string("expected '") + word + "'");
        cur += len;
        return true;
    }

    bool
    parseHex4(unsigned &out)
    {
        if (end - cur < 4)
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = cur[i];
            unsigned digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<unsigned>(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<unsigned>(c - 'A') + 10;
            else
                return fail("bad hex digit in \\u escape");
            out = out * 16 + digit;
        }
        cur += 4;
        return true;
    }

    static void
    appendUtf8(std::string &s, unsigned cp)
    {
        if (cp < 0x80) {
            s.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            s.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (cur < end) {
            unsigned char c = static_cast<unsigned char>(*cur);
            if (c == '"') {
                ++cur;
                return true;
            }
            if (c == '\\') {
                ++cur;
                if (cur >= end)
                    break;
                char esc = *cur++;
                switch (esc) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'u': {
                      unsigned cp;
                      if (!parseHex4(cp))
                          return false;
                      if (cp >= 0xD800 && cp <= 0xDBFF) {
                          // High surrogate: a low one must follow.
                          if (end - cur < 2 || cur[0] != '\\' ||
                              cur[1] != 'u')
                              return fail("lone high surrogate");
                          cur += 2;
                          unsigned lo;
                          if (!parseHex4(lo))
                              return false;
                          if (lo < 0xDC00 || lo > 0xDFFF)
                              return fail("bad low surrogate");
                          cp = 0x10000 + ((cp - 0xD800) << 10) +
                               (lo - 0xDC00);
                      } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                          return fail("lone low surrogate");
                      }
                      appendUtf8(out, cp);
                      break;
                  }
                  default:
                      return fail("unknown escape");
                }
                continue;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            out.push_back(static_cast<char>(c));
            ++cur;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *start = cur;
        if (consume('-')) {}
        if (cur >= end || !std::isdigit(static_cast<unsigned char>(*cur)))
            return fail("malformed number");
        if (*cur == '0') {
            ++cur;
        } else {
            while (cur < end &&
                   std::isdigit(static_cast<unsigned char>(*cur)))
                ++cur;
        }
        if (consume('.')) {
            if (cur >= end ||
                !std::isdigit(static_cast<unsigned char>(*cur)))
                return fail("malformed fraction");
            while (cur < end &&
                   std::isdigit(static_cast<unsigned char>(*cur)))
                ++cur;
        }
        if (cur < end && (*cur == 'e' || *cur == 'E')) {
            ++cur;
            if (cur < end && (*cur == '+' || *cur == '-'))
                ++cur;
            if (cur >= end ||
                !std::isdigit(static_cast<unsigned char>(*cur)))
                return fail("malformed exponent");
            while (cur < end &&
                   std::isdigit(static_cast<unsigned char>(*cur)))
                ++cur;
        }
        std::string text(start, cur);
        out = JsonValue(std::strtod(text.c_str(), nullptr));
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (cur >= end)
            return fail("unexpected end of input");
        switch (*cur) {
          case '{': {
              ++cur;
              JsonValue::Object obj;
              skipWs();
              if (consume('}')) {
                  out = JsonValue(std::move(obj));
                  return true;
              }
              while (true) {
                  skipWs();
                  std::string key;
                  if (!parseString(key))
                      return false;
                  skipWs();
                  if (!consume(':'))
                      return fail("expected ':' after object key");
                  JsonValue value;
                  if (!parseValue(value, depth + 1))
                      return false;
                  obj[std::move(key)] = std::move(value);
                  skipWs();
                  if (consume(','))
                      continue;
                  if (consume('}'))
                      break;
                  return fail("expected ',' or '}' in object");
              }
              out = JsonValue(std::move(obj));
              return true;
          }
          case '[': {
              ++cur;
              JsonValue::Array arr;
              skipWs();
              if (consume(']')) {
                  out = JsonValue(std::move(arr));
                  return true;
              }
              while (true) {
                  JsonValue value;
                  if (!parseValue(value, depth + 1))
                      return false;
                  arr.push_back(std::move(value));
                  skipWs();
                  if (consume(','))
                      continue;
                  if (consume(']'))
                      break;
                  return fail("expected ',' or ']' in array");
              }
              out = JsonValue(std::move(arr));
              return true;
          }
          case '"': {
              std::string s;
              if (!parseString(s))
                  return false;
              out = JsonValue(std::move(s));
              return true;
          }
          case 't':
              if (!literal("true", 4))
                  return false;
              out = JsonValue(true);
              return true;
          case 'f':
              if (!literal("false", 5))
                  return false;
              out = JsonValue(false);
              return true;
          case 'n':
              if (!literal("null", 4))
                  return false;
              out = JsonValue();
              return true;
          default:
              return parseNumber(out);
        }
    }
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string *error)
{
    Parser p{text.data(), text.data() + text.size(), text.data(), {}};
    JsonValue value;
    if (!p.parseValue(value, 0)) {
        if (error)
            *error = p.error;
        return std::nullopt;
    }
    p.skipWs();
    if (p.cur != p.end) {
        p.fail("trailing garbage after document");
        if (error)
            *error = p.error;
        return std::nullopt;
    }
    return value;
}

std::string
formatJsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    // Exact small integers print without a decimal point: every
    // counter the benches emit stays bit-stable through text.
    if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", value);
        return buf;
    }
    // Shortest precision that survives a strtod round trip.
    char buf[40];
    for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value)
            return buf;
    }
    return buf;
}

std::string
quoteJsonString(std::string_view s)
{
    std::string out = "\"";
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out += "\"";
    return out;
}

} // namespace report
} // namespace vpprof
