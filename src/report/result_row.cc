#include "report/result_row.hh"

#include <sstream>

#include "report/json.hh"

namespace vpprof
{
namespace report
{

std::string
resultsFileNameFor(std::string_view bench)
{
    return "RESULTS_" + std::string(bench) + ".json";
}

std::string
writeResultsJson(const ResultsFile &file)
{
    std::ostringstream out;
    out << "{\n  \"bench\": " << quoteJsonString(file.bench)
        << ",\n  \"schema\": 1,\n  \"rows\": [\n";
    for (size_t i = 0; i < file.rows.size(); ++i) {
        const ResultRow &row = file.rows[i];
        out << "    {\"experiment\": " << quoteJsonString(row.experiment)
            << ", \"cell\": " << quoteJsonString(row.cell)
            << ", \"measured\": " << formatJsonNumber(row.measured);
        if (row.paper)
            out << ", \"paper\": " << formatJsonNumber(*row.paper);
        if (!row.unit.empty())
            out << ", \"unit\": " << quoteJsonString(row.unit);
        out << "}" << (i + 1 < file.rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
}

std::optional<ResultsFile>
parseResultsJson(std::string_view text, std::string *error)
{
    auto setError = [&](const std::string &what) {
        if (error)
            *error = what;
    };

    std::string json_error;
    std::optional<JsonValue> doc = parseJson(text, &json_error);
    if (!doc) {
        setError("invalid JSON: " + json_error);
        return std::nullopt;
    }
    if (!doc->isObject()) {
        setError("results document is not an object");
        return std::nullopt;
    }

    ResultsFile file;
    const JsonValue *bench = doc->get("bench");
    if (!bench || !bench->isString()) {
        setError("missing string field 'bench'");
        return std::nullopt;
    }
    file.bench = bench->asString();

    const JsonValue *rows = doc->get("rows");
    if (!rows || !rows->isArray()) {
        setError("missing array field 'rows'");
        return std::nullopt;
    }
    file.rows.reserve(rows->asArray().size());
    for (size_t i = 0; i < rows->asArray().size(); ++i) {
        const JsonValue &entry = rows->asArray()[i];
        std::string where = "rows[" + std::to_string(i) + "]";
        if (!entry.isObject()) {
            setError(where + " is not an object");
            return std::nullopt;
        }
        ResultRow row;
        const JsonValue *experiment = entry.get("experiment");
        const JsonValue *cell = entry.get("cell");
        const JsonValue *measured = entry.get("measured");
        if (!experiment || !experiment->isString() || !cell ||
            !cell->isString() || !measured || !measured->isNumber()) {
            setError(where + " needs string 'experiment'/'cell' and "
                             "number 'measured'");
            return std::nullopt;
        }
        row.experiment = experiment->asString();
        row.cell = cell->asString();
        row.measured = measured->asNumber();
        if (const JsonValue *paper = entry.get("paper")) {
            if (!paper->isNumber()) {
                setError(where + ".paper is not a number");
                return std::nullopt;
            }
            row.paper = paper->asNumber();
        }
        row.unit = entry.stringOr("unit", "");
        file.rows.push_back(std::move(row));
    }
    return file;
}

} // namespace report
} // namespace vpprof
