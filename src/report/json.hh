/**
 * @file
 * Minimal JSON document model + parser for the results/verification
 * subsystem.
 *
 * Everything this repository verifies is JSON it wrote itself
 * (RESULTS_<bench>.json, BENCH_*.json, the golden rule specs), so the
 * parser targets strict RFC 8259 documents: no comments, no trailing
 * commas, objects keep their keys in sorted order (std::map) because
 * no consumer depends on insertion order. Numbers are doubles —
 * every counter this repo emits fits a double exactly (< 2^53).
 *
 * formatJsonNumber() is the writing-side counterpart: it prints the
 * shortest decimal form that parses back to the identical double, so
 * a write -> parse -> write cycle is a fixed point (the round-trip
 * guarantee the RESULTS files are tested for).
 */

#ifndef VPPROF_REPORT_JSON_HH
#define VPPROF_REPORT_JSON_HH

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vpprof
{
namespace report
{

class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<JsonValue>;
    using Object = std::map<std::string, JsonValue>;

    JsonValue() = default;
    explicit JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    explicit JsonValue(double n) : kind_(Kind::Number), number_(n) {}
    explicit JsonValue(std::string s)
        : kind_(Kind::String), string_(std::move(s))
    {
    }
    explicit JsonValue(Array a) : kind_(Kind::Array), array_(std::move(a))
    {
    }
    explicit JsonValue(Object o)
        : kind_(Kind::Object), object_(std::move(o))
    {
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return number_; }
    const std::string &asString() const { return string_; }
    const Array &asArray() const { return array_; }
    const Object &asObject() const { return object_; }
    Array &asArray() { return array_; }
    Object &asObject() { return object_; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *get(std::string_view key) const;

    /** get(key)->asNumber() with a default for absent/non-number. */
    double numberOr(std::string_view key, double fallback) const;

    /** get(key)->asString() with a default for absent/non-string. */
    std::string stringOr(std::string_view key,
                         std::string_view fallback) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/**
 * Parse a complete JSON document (trailing whitespace allowed,
 * trailing garbage is an error). On failure returns nullopt and, when
 * `error` is non-null, a one-line diagnostic with the byte offset.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *error = nullptr);

/**
 * The shortest decimal string that strtod parses back to exactly
 * `value`. Integral values below 2^53 print without a decimal point.
 * Non-finite values (never produced by the benches) print as null.
 */
std::string formatJsonNumber(double value);

/** `s` as a JSON string literal, quotes included. */
std::string quoteJsonString(std::string_view s);

} // namespace report
} // namespace vpprof

#endif // VPPROF_REPORT_JSON_HH
