/**
 * @file
 * Declarative shape rules: the machine-checked form of the
 * EXPERIMENTS.md verdicts. A golden spec (golden/shape/*.json) lists
 * rules over ResultRow cells; the engine evaluates them against the
 * RESULTS_<bench>.json files a bench run produced.
 *
 * Rule kinds:
 *  - ordering:  adjacent cells in `cells` must be non-increasing
 *               (each a >= next - slack; `strict` demands a > next).
 *               Encodes "who wins".
 *  - trend:     the cell series is monotone in `direction`
 *               ("increasing"/"decreasing"), each step tolerating a
 *               counter-move of `slack` measured units. Encodes the
 *               §5 threshold-sweep trends.
 *  - tolerance: |measured - target| <= abs_tol + rel_tol_pct% of
 *               |target|, where target is the rule's `expect` or the
 *               row's own paper value. Encodes "within a few points
 *               of the paper".
 *  - regime:    the cell lies inside [min, max] (either bound
 *               optional). Encodes regime membership and acceptance
 *               bars.
 *
 * Cells are addressed as "<cell>" within the spec's experiment or
 * "<experiment>:<cell>" across experiments. A rule whose referenced
 * experiment produced no rows at all is *skipped* (the bench did not
 * run — normal for partial CI runs) unless the caller requires
 * completeness; a rule whose experiment ran but whose cell is absent
 * FAILS, because that means an emitter regressed.
 */

#ifndef VPPROF_REPORT_SHAPE_RULES_HH
#define VPPROF_REPORT_SHAPE_RULES_HH

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "report/result_row.hh"

namespace vpprof
{
namespace report
{

enum class RuleKind { Ordering, Trend, Tolerance, Regime };

std::string_view ruleKindName(RuleKind kind);

struct ShapeRule
{
    std::string id;          ///< unique, e.g. "fig_5_1.prof90_beats_fsm"
    std::string experiment;  ///< default experiment for bare cell refs
    RuleKind kind = RuleKind::Regime;
    std::string note;        ///< human rationale, echoed in diagnostics

    std::vector<std::string> cells;  ///< refs; tolerance/regime use [0]

    // ordering / trend
    bool strict = false;
    double slack = 0.0;
    std::string direction;  ///< trend: "increasing" | "decreasing"

    // tolerance
    std::optional<double> expect;
    double absTol = 0.0;
    double relTolPct = 0.0;

    // regime
    std::optional<double> min;
    std::optional<double> max;
};

/** One golden spec file: rules sharing a default experiment. */
struct RuleSpec
{
    std::string experiment;
    std::vector<ShapeRule> rules;
};

/**
 * Parse a golden spec document:
 *   {"experiment": "fig_5_1", "rules": [{"id": ..., "kind": ...}]}
 * Unknown keys are rejected so a typo in a spec cannot silently relax
 * a check.
 */
std::optional<RuleSpec> parseRuleSpec(std::string_view text,
                                      std::string *error = nullptr);

/** All emitted rows, indexed by (experiment, cell). */
class ResultIndex
{
  public:
    void add(const ResultsFile &file);

    bool hasExperiment(const std::string &experiment) const;

    /**
     * Resolve a cell reference ("cell" or "experiment:cell") against
     * a default experiment. nullptr when absent.
     */
    const ResultRow *find(const std::string &default_experiment,
                          const std::string &ref) const;

    /** The experiment a reference points into. */
    static std::string experimentOf(const std::string &default_experiment,
                                    const std::string &ref);

    size_t size() const { return rows_.size(); }

  private:
    std::map<std::pair<std::string, std::string>, ResultRow> rows_;
};

struct RuleOutcome
{
    enum class Status { Pass, Fail, Skipped };

    std::string id;
    Status status = Status::Skipped;
    std::string diagnostic;  ///< per-rule values / failure reason
};

/** Evaluate one rule against the emitted rows. */
RuleOutcome evaluateRule(const ShapeRule &rule, const ResultIndex &index);

} // namespace report
} // namespace vpprof

#endif // VPPROF_REPORT_SHAPE_RULES_HH
