#include "report/perf_gate.hh"

#include <cmath>
#include <map>
#include <string>

#include "report/json.hh"

namespace vpprof
{
namespace report
{

namespace
{

enum class LeafClass { Counter, Timing, Ignored };

/** One flattened session entry: dotted metric path -> (value, class). */
using FlatEntry = std::map<std::string, std::pair<double, LeafClass>>;

bool
isTimingName(const std::string &leaf)
{
    return leaf == "wall_ms" || leaf == "sum" || leaf == "p50" ||
           leaf == "p95" || leaf == "p99";
}

void
flattenEntry(const JsonValue &entry, FlatEntry &out)
{
    for (const auto &[key, value] : entry.asObject()) {
        if (!value.isNumber()) {
            if (key == "metrics" && value.isObject()) {
                if (const JsonValue *counters = value.get("counters")) {
                    for (const auto &[name, v] : counters->asObject())
                        if (v.isNumber())
                            out["metrics." + name] = {
                                v.asNumber(), LeafClass::Counter};
                }
                // Gauges are point-in-time values (e.g. resident
                // records at snapshot instant): not gated.
                if (const JsonValue *hists = value.get("histograms")) {
                    for (const auto &[name, h] : hists->asObject()) {
                        if (!h.isObject())
                            continue;
                        for (const auto &[stat, v] : h.asObject()) {
                            if (!v.isNumber())
                                continue;
                            LeafClass cls = stat == "count"
                                                ? LeafClass::Counter
                                                : isTimingName(stat)
                                                    ? LeafClass::Timing
                                                    : LeafClass::Ignored;
                            if (cls != LeafClass::Ignored)
                                out["metrics." + name + "." + stat] = {
                                    v.asNumber(), cls};
                        }
                    }
                }
            }
            continue;
        }
        if (key == "jobs")
            continue;  // configuration, not a measurement
        LeafClass cls = isTimingName(key) ? LeafClass::Timing
                                          : LeafClass::Counter;
        out[key] = {value.asNumber(), cls};
    }
}

} // namespace

PerfGateReport
runPerfGate(const JsonValue &baseline, const JsonValue &current,
            const PerfGateConfig &config)
{
    PerfGateReport report;
    if (!baseline.isObject() || !current.isObject()) {
        report.notes.push_back(
            "perf gate: baseline or current document is not an object");
        return report;
    }

    for (const auto &[bench, base_entry] : baseline.asObject()) {
        if (!base_entry.isObject() || !base_entry.get("wall_ms")) {
            report.notes.push_back("perf gate: '" + bench +
                                   "' is not a session entry, skipped");
            continue;
        }
        const JsonValue *cur_entry = current.get(bench);
        if (!cur_entry) {
            report.notes.push_back("perf gate: '" + bench +
                                   "' not in current run, skipped");
            continue;
        }
        if (!cur_entry->isObject()) {
            report.notes.push_back("perf gate: '" + bench +
                                   "' malformed in current run");
            continue;
        }

        FlatEntry base_flat, cur_flat;
        flattenEntry(base_entry, base_flat);
        flattenEntry(*cur_entry, cur_flat);
        ++report.benchesCompared;

        for (const auto &[metric, base_leaf] : base_flat) {
            auto it = cur_flat.find(metric);
            if (it == cur_flat.end()) {
                report.notes.push_back("perf gate: " + bench + "." +
                                       metric +
                                       " absent from current run");
                continue;
            }
            ++report.leavesCompared;
            auto [base_value, cls] = base_leaf;
            double cur_value = it->second.first;

            double margin_pct = cls == LeafClass::Timing
                                    ? config.wallMarginPct
                                    : config.counterMarginPct;
            double allowed =
                base_value * (1.0 + margin_pct / 100.0);
            if (cls == LeafClass::Counter)
                allowed = std::max(allowed,
                                   base_value + config.counterAbsSlack);
            if (cur_value > allowed) {
                PerfFinding finding;
                finding.bench = bench;
                finding.metric = metric;
                finding.baseline = base_value;
                finding.current = cur_value;
                finding.marginPct = margin_pct;
                report.regressions.push_back(std::move(finding));
            }
        }
    }

    for (const auto &[bench, entry] : current.asObject()) {
        if (entry.isObject() && entry.get("wall_ms") &&
            !baseline.get(bench))
            report.notes.push_back("perf gate: '" + bench +
                                   "' has no baseline yet");
    }
    return report;
}

} // namespace report
} // namespace vpprof
