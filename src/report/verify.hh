/**
 * @file
 * The verify driver behind `vpprof_cli verify`: loads the golden
 * specs (golden/shape/*.json) and perf baselines
 * (golden/perf/BENCH_*.json), the RESULTS_*.json and BENCH_*.json a
 * bench run produced, evaluates every shape rule and the perf gate,
 * and renders a pass/fail report with per-rule diagnostics.
 *
 * Partial runs are first-class: rules whose experiment produced no
 * rows are skipped (CI's quick legs run a bench subset), unless
 * `requireAll` demands the full suite (the nightly job). A rule whose
 * experiment ran but whose cell is missing always fails.
 */

#ifndef VPPROF_REPORT_VERIFY_HH
#define VPPROF_REPORT_VERIFY_HH

#include <string>
#include <vector>

#include "report/perf_gate.hh"
#include "report/shape_rules.hh"

namespace vpprof
{
namespace report
{

struct VerifyOptions
{
    std::string goldenDir;        ///< holds shape/ and perf/
    std::string resultsDir = "."; ///< holds RESULTS_* and BENCH_*
    bool requireAll = false;      ///< skipped rules become failures
    bool perfGate = true;         ///< run the BENCH_* comparison
    PerfGateConfig perf;
};

struct VerifyReport
{
    std::vector<RuleOutcome> rules;
    PerfGateReport perf;
    /** Setup problems: unreadable dirs, malformed specs/results. */
    std::vector<std::string> errors;
    bool requireAll = false;

    size_t rulesPassed = 0;
    size_t rulesFailed = 0;
    size_t rulesSkipped = 0;
    size_t resultRowsLoaded = 0;
    size_t resultFilesLoaded = 0;

    bool
    ok() const
    {
        return errors.empty() && rulesFailed == 0 && perf.ok() &&
               !(requireAll && rulesSkipped > 0);
    }
};

VerifyReport runVerify(const VerifyOptions &options);

/** Human-readable multi-line report (what the CLI prints). */
std::string renderVerifyReport(const VerifyReport &report);

} // namespace report
} // namespace vpprof

#endif // VPPROF_REPORT_VERIFY_HH
