#include "report/verify.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "report/json.hh"

namespace fs = std::filesystem;

namespace vpprof
{
namespace report
{

namespace
{

std::optional<std::string>
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Sorted paths under `dir` whose filename matches prefix/suffix. */
std::vector<fs::path>
listMatching(const fs::path &dir, std::string_view prefix,
             std::string_view suffix)
{
    std::vector<fs::path> paths;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        std::string name = entry.path().filename().string();
        if (name.size() >= prefix.size() + suffix.size() &&
            name.compare(0, prefix.size(), prefix) == 0 &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

} // namespace

VerifyReport
runVerify(const VerifyOptions &options)
{
    VerifyReport report;
    report.requireAll = options.requireAll;

    fs::path golden(options.goldenDir);
    fs::path results(options.resultsDir);
    if (!fs::is_directory(golden)) {
        report.errors.push_back("golden directory '" +
                                options.goldenDir + "' does not exist");
        return report;
    }

    // ---- load golden shape specs ---------------------------------
    std::vector<RuleSpec> specs;
    std::set<std::string> rule_ids;
    for (const fs::path &path : listMatching(golden / "shape", "", ".json")) {
        std::optional<std::string> text = readFile(path);
        if (!text) {
            report.errors.push_back("cannot read " + path.string());
            continue;
        }
        std::string error;
        std::optional<RuleSpec> spec = parseRuleSpec(*text, &error);
        if (!spec) {
            report.errors.push_back(path.string() + ": " + error);
            continue;
        }
        for (const ShapeRule &rule : spec->rules) {
            if (!rule_ids.insert(rule.id).second)
                report.errors.push_back(path.string() +
                                        ": duplicate rule id '" +
                                        rule.id + "'");
        }
        specs.push_back(std::move(*spec));
    }
    if (specs.empty())
        report.errors.push_back("no golden specs under " +
                                (golden / "shape").string());

    // ---- load emitted results ------------------------------------
    ResultIndex index;
    for (const fs::path &path :
         listMatching(results, "RESULTS_", ".json")) {
        std::optional<std::string> text = readFile(path);
        if (!text) {
            report.errors.push_back("cannot read " + path.string());
            continue;
        }
        std::string error;
        std::optional<ResultsFile> file =
            parseResultsJson(*text, &error);
        if (!file) {
            report.errors.push_back(path.string() + ": " + error);
            continue;
        }
        report.resultRowsLoaded += file->rows.size();
        ++report.resultFilesLoaded;
        index.add(*file);
    }

    // ---- evaluate rules ------------------------------------------
    for (const RuleSpec &spec : specs) {
        for (const ShapeRule &rule : spec.rules) {
            RuleOutcome outcome = evaluateRule(rule, index);
            switch (outcome.status) {
              case RuleOutcome::Status::Pass: ++report.rulesPassed; break;
              case RuleOutcome::Status::Fail: ++report.rulesFailed; break;
              case RuleOutcome::Status::Skipped:
                  ++report.rulesSkipped;
                  break;
            }
            report.rules.push_back(std::move(outcome));
        }
    }

    // ---- perf gate ------------------------------------------------
    if (options.perfGate) {
        std::vector<fs::path> baselines =
            listMatching(golden / "perf", "BENCH_", ".json");
        if (baselines.empty())
            report.perf.notes.push_back(
                "perf gate: no baselines under " +
                (golden / "perf").string());
        for (const fs::path &base_path : baselines) {
            std::string name = base_path.filename().string();
            std::optional<std::string> base_text = readFile(base_path);
            if (!base_text) {
                report.errors.push_back("cannot read " +
                                        base_path.string());
                continue;
            }
            std::string error;
            std::optional<JsonValue> base_doc =
                parseJson(*base_text, &error);
            if (!base_doc) {
                report.errors.push_back(base_path.string() + ": " +
                                        error);
                continue;
            }
            std::optional<std::string> cur_text =
                readFile(results / name);
            if (!cur_text) {
                report.perf.notes.push_back(
                    "perf gate: " + name +
                    " not produced by this run, skipped");
                continue;
            }
            std::optional<JsonValue> cur_doc =
                parseJson(*cur_text, &error);
            if (!cur_doc) {
                report.errors.push_back((results / name).string() +
                                        ": " + error);
                continue;
            }
            PerfGateReport gate =
                runPerfGate(*base_doc, *cur_doc, options.perf);
            report.perf.benchesCompared += gate.benchesCompared;
            report.perf.leavesCompared += gate.leavesCompared;
            for (PerfFinding &finding : gate.regressions)
                report.perf.regressions.push_back(std::move(finding));
            for (std::string &note : gate.notes)
                report.perf.notes.push_back(std::move(note));
        }
    }

    return report;
}

std::string
renderVerifyReport(const VerifyReport &report)
{
    std::ostringstream out;
    for (const std::string &error : report.errors)
        out << "ERROR  " << error << "\n";

    for (const RuleOutcome &outcome : report.rules) {
        const char *tag =
            outcome.status == RuleOutcome::Status::Pass
                ? "PASS "
                : outcome.status == RuleOutcome::Status::Fail
                      ? "FAIL "
                      : report.requireAll ? "MISS " : "SKIP ";
        out << tag << " " << outcome.id;
        if (!outcome.diagnostic.empty())
            out << ": " << outcome.diagnostic;
        out << "\n";
    }

    for (const std::string &note : report.perf.notes)
        out << "note   " << note << "\n";
    for (const PerfFinding &finding : report.perf.regressions) {
        out << "PERF  " << finding.bench << "." << finding.metric
            << ": " << finding.current << " vs baseline "
            << finding.baseline << " (margin " << finding.marginPct
            << "%)\n";
    }

    out << "verify: " << report.rulesPassed << " passed, "
        << report.rulesFailed << " failed, " << report.rulesSkipped
        << (report.requireAll ? " missing" : " skipped") << " ("
        << report.resultRowsLoaded << " rows from "
        << report.resultFilesLoaded << " results files); perf gate: "
        << report.perf.regressions.size() << " regressions over "
        << report.perf.leavesCompared << " metrics in "
        << report.perf.benchesCompared << " benches\n";
    out << (report.ok() ? "verify: OK\n" : "verify: FAILED\n");
    return out.str();
}

} // namespace report
} // namespace vpprof
