/**
 * @file
 * Noise-aware perf gate: compares a freshly produced BENCH_*.json
 * against a committed baseline and fails on regressions beyond
 * configurable relative margins.
 *
 * The gate understands the session-entry schema bench_util emits
 * (one object per bench: wall_ms, jobs, trace-repository counters and
 * an embedded telemetry metrics snapshot) and classifies every
 * numeric leaf into one of two noise classes:
 *
 *  - counters (vm_runs, replays, unique_traces, metrics counters,
 *    histogram counts): deterministic by the trace-once design, so
 *    the default margin is 0% — any increase is a regression;
 *  - timings (wall_ms, histogram sum/p50/p95/p99): machine- and
 *    load-dependent, so they get a wide relative margin.
 *
 * Decreases never fail (improvements are free); "jobs" and gauges
 * (point-in-time values) are not gated. Benches present only in the
 * baseline or only in the current run are reported as notes, not
 * failures, so partial CI runs can gate the subset they executed.
 */

#ifndef VPPROF_REPORT_PERF_GATE_HH
#define VPPROF_REPORT_PERF_GATE_HH

#include <string>
#include <vector>

namespace vpprof
{
namespace report
{

class JsonValue;

struct PerfGateConfig
{
    /** Relative margin for timing-class leaves, percent. */
    double wallMarginPct = 50.0;
    /** Relative margin for counter-class leaves, percent. */
    double counterMarginPct = 0.0;
    /**
     * Counter increases up to this absolute amount pass even at 0%
     * margin — absorbs one-off events (a single extra warning line)
     * without letting real volume regressions through.
     */
    double counterAbsSlack = 0.0;
};

struct PerfFinding
{
    std::string bench;   ///< e.g. "bench_fig_2_2"
    std::string metric;  ///< dotted path, e.g. "metrics.trace.vm_runs"
    double baseline = 0.0;
    double current = 0.0;
    double marginPct = 0.0;
};

struct PerfGateReport
{
    std::vector<PerfFinding> regressions;
    std::vector<std::string> notes;  ///< skips, schema surprises
    size_t leavesCompared = 0;
    size_t benchesCompared = 0;

    bool ok() const { return regressions.empty(); }
};

/**
 * Gate `current` against `baseline` (both parsed BENCH_*.json
 * documents in the session-entry schema). Entries that do not look
 * like session entries (no "wall_ms") are skipped with a note, so
 * pointing the gate at e.g. BENCH_sampling.json degrades gracefully.
 */
PerfGateReport runPerfGate(const JsonValue &baseline,
                           const JsonValue &current,
                           const PerfGateConfig &config);

} // namespace report
} // namespace vpprof

#endif // VPPROF_REPORT_PERF_GATE_HH
