/**
 * @file
 * Structured bench results. Every figure/table bench emits its
 * per-cell numbers as ResultRow records — (experiment, cell) keys a
 * measured value, with the paper's reported value attached where the
 * text gives one — and finishBench() writes them to
 * RESULTS_<bench>.json. The verify subsystem (shape_rules.hh) then
 * checks the EXPERIMENTS.md shape verdicts against these files
 * instead of against prose.
 *
 * Cell naming convention: '/'-separated lowercase components, subject
 * first, e.g. "average/prof@90", "go/d_correct@80",
 * "suite/low_interval_mass_pct". Golden rules address cells as
 * "<cell>" within their own experiment or "<experiment>:<cell>"
 * across experiments.
 */

#ifndef VPPROF_REPORT_RESULT_ROW_HH
#define VPPROF_REPORT_RESULT_ROW_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vpprof
{
namespace report
{

struct ResultRow
{
    std::string experiment;  ///< e.g. "fig_5_1", "table_5_2"
    std::string cell;        ///< e.g. "average/prof@90"
    double measured = 0.0;
    std::optional<double> paper;  ///< paper's number, where reported
    std::string unit;             ///< "%", "x", "pp", "" (count)

    bool operator==(const ResultRow &) const = default;
};

/** One bench's emitted rows, as stored in RESULTS_<bench>.json. */
struct ResultsFile
{
    std::string bench;  ///< producing binary, e.g. "bench_fig_2_2"
    std::vector<ResultRow> rows;

    bool operator==(const ResultsFile &) const = default;
};

/** "RESULTS_<bench>.json" */
std::string resultsFileNameFor(std::string_view bench);

/**
 * Serialize to the canonical RESULTS JSON. Numbers use shortest
 * round-trip formatting, so write -> parse -> write is a fixed point.
 */
std::string writeResultsJson(const ResultsFile &file);

/**
 * Parse a RESULTS_<bench>.json document. Returns nullopt (and a
 * diagnostic in `error`) on malformed JSON or a missing/invalid
 * required field.
 */
std::optional<ResultsFile> parseResultsJson(std::string_view text,
                                            std::string *error = nullptr);

} // namespace report
} // namespace vpprof

#endif // VPPROF_REPORT_RESULT_ROW_HH
