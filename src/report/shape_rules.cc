#include "report/shape_rules.hh"

#include <cmath>
#include <set>
#include <sstream>

#include "report/json.hh"

namespace vpprof
{
namespace report
{

std::string_view
ruleKindName(RuleKind kind)
{
    switch (kind) {
      case RuleKind::Ordering: return "ordering";
      case RuleKind::Trend: return "trend";
      case RuleKind::Tolerance: return "tolerance";
      case RuleKind::Regime: return "regime";
    }
    return "?";
}

namespace
{

std::optional<RuleKind>
parseRuleKind(const std::string &name)
{
    if (name == "ordering")
        return RuleKind::Ordering;
    if (name == "trend")
        return RuleKind::Trend;
    if (name == "tolerance")
        return RuleKind::Tolerance;
    if (name == "regime")
        return RuleKind::Regime;
    return std::nullopt;
}

const std::set<std::string> kKnownRuleKeys = {
    "id",     "kind",   "note",      "cells",  "cell",
    "strict", "slack",  "direction", "expect", "abs_tol",
    "rel_tol_pct", "min", "max",
};

} // namespace

std::optional<RuleSpec>
parseRuleSpec(std::string_view text, std::string *error)
{
    auto setError = [&](const std::string &what) {
        if (error)
            *error = what;
    };

    std::string json_error;
    std::optional<JsonValue> doc = parseJson(text, &json_error);
    if (!doc) {
        setError("invalid JSON: " + json_error);
        return std::nullopt;
    }
    const JsonValue *experiment =
        doc->isObject() ? doc->get("experiment") : nullptr;
    const JsonValue *rules = doc->isObject() ? doc->get("rules") : nullptr;
    if (!experiment || !experiment->isString() || !rules ||
        !rules->isArray()) {
        setError("spec needs string 'experiment' and array 'rules'");
        return std::nullopt;
    }

    RuleSpec spec;
    spec.experiment = experiment->asString();
    for (size_t i = 0; i < rules->asArray().size(); ++i) {
        const JsonValue &entry = rules->asArray()[i];
        std::string where = "rules[" + std::to_string(i) + "]";
        if (!entry.isObject()) {
            setError(where + " is not an object");
            return std::nullopt;
        }
        for (const auto &[key, value] : entry.asObject()) {
            (void)value;
            if (!kKnownRuleKeys.count(key)) {
                setError(where + ": unknown key '" + key + "'");
                return std::nullopt;
            }
        }

        ShapeRule rule;
        rule.experiment = spec.experiment;
        const JsonValue *id = entry.get("id");
        const JsonValue *kind = entry.get("kind");
        if (!id || !id->isString() || !kind || !kind->isString()) {
            setError(where + " needs string 'id' and 'kind'");
            return std::nullopt;
        }
        rule.id = id->asString();
        std::optional<RuleKind> parsed_kind =
            parseRuleKind(kind->asString());
        if (!parsed_kind) {
            setError(where + ": unknown kind '" + kind->asString() +
                     "'");
            return std::nullopt;
        }
        rule.kind = *parsed_kind;
        rule.note = entry.stringOr("note", "");

        if (const JsonValue *cells = entry.get("cells")) {
            if (!cells->isArray()) {
                setError(where + ".cells is not an array");
                return std::nullopt;
            }
            for (const JsonValue &cell : cells->asArray()) {
                if (!cell.isString()) {
                    setError(where + ".cells holds a non-string");
                    return std::nullopt;
                }
                rule.cells.push_back(cell.asString());
            }
        }
        if (const JsonValue *cell = entry.get("cell")) {
            if (!cell->isString()) {
                setError(where + ".cell is not a string");
                return std::nullopt;
            }
            rule.cells.push_back(cell->asString());
        }

        if (const JsonValue *strict = entry.get("strict")) {
            if (!strict->isBool()) {
                setError(where + ".strict is not a bool");
                return std::nullopt;
            }
            rule.strict = strict->asBool();
        }
        rule.slack = entry.numberOr("slack", 0.0);
        rule.direction = entry.stringOr("direction", "");
        if (const JsonValue *expect = entry.get("expect")) {
            if (!expect->isNumber()) {
                setError(where + ".expect is not a number");
                return std::nullopt;
            }
            rule.expect = expect->asNumber();
        }
        rule.absTol = entry.numberOr("abs_tol", 0.0);
        rule.relTolPct = entry.numberOr("rel_tol_pct", 0.0);
        if (const JsonValue *min = entry.get("min")) {
            if (!min->isNumber()) {
                setError(where + ".min is not a number");
                return std::nullopt;
            }
            rule.min = min->asNumber();
        }
        if (const JsonValue *max = entry.get("max")) {
            if (!max->isNumber()) {
                setError(where + ".max is not a number");
                return std::nullopt;
            }
            rule.max = max->asNumber();
        }

        // Structural validation, so a broken spec fails loudly at
        // parse time rather than producing vacuous passes.
        size_t need = rule.kind == RuleKind::Ordering ||
                              rule.kind == RuleKind::Trend
                          ? 2
                          : 1;
        if (rule.cells.size() < need) {
            setError(where + " (" + rule.id + "): kind '" +
                     std::string(ruleKindName(rule.kind)) + "' needs " +
                     std::to_string(need) + "+ cell refs");
            return std::nullopt;
        }
        if (rule.kind == RuleKind::Trend &&
            rule.direction != "increasing" &&
            rule.direction != "decreasing") {
            setError(where + " (" + rule.id +
                     "): trend needs direction "
                     "'increasing' or 'decreasing'");
            return std::nullopt;
        }
        if (rule.kind == RuleKind::Regime && !rule.min && !rule.max) {
            setError(where + " (" + rule.id +
                     "): regime needs 'min' and/or 'max'");
            return std::nullopt;
        }
        if (rule.kind == RuleKind::Tolerance && !rule.expect &&
            rule.absTol == 0.0 && rule.relTolPct == 0.0) {
            setError(where + " (" + rule.id +
                     "): tolerance needs 'abs_tol' and/or "
                     "'rel_tol_pct'");
            return std::nullopt;
        }
        spec.rules.push_back(std::move(rule));
    }
    return spec;
}

void
ResultIndex::add(const ResultsFile &file)
{
    for (const ResultRow &row : file.rows)
        rows_[{row.experiment, row.cell}] = row;
}

bool
ResultIndex::hasExperiment(const std::string &experiment) const
{
    auto it = rows_.lower_bound({experiment, ""});
    return it != rows_.end() && it->first.first == experiment;
}

std::string
ResultIndex::experimentOf(const std::string &default_experiment,
                          const std::string &ref)
{
    size_t colon = ref.find(':');
    return colon == std::string::npos ? default_experiment
                                      : ref.substr(0, colon);
}

const ResultRow *
ResultIndex::find(const std::string &default_experiment,
                  const std::string &ref) const
{
    size_t colon = ref.find(':');
    std::string experiment = colon == std::string::npos
                                 ? default_experiment
                                 : ref.substr(0, colon);
    std::string cell =
        colon == std::string::npos ? ref : ref.substr(colon + 1);
    auto it = rows_.find({experiment, cell});
    return it == rows_.end() ? nullptr : &it->second;
}

namespace
{

std::string
formatValue(double v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

} // namespace

RuleOutcome
evaluateRule(const ShapeRule &rule, const ResultIndex &index)
{
    RuleOutcome outcome;
    outcome.id = rule.id;

    // A rule over an experiment with no rows at all is a skip: the
    // producing bench did not run in this (partial) results set.
    for (const std::string &ref : rule.cells) {
        std::string experiment =
            ResultIndex::experimentOf(rule.experiment, ref);
        if (!index.hasExperiment(experiment)) {
            outcome.status = RuleOutcome::Status::Skipped;
            outcome.diagnostic =
                "experiment '" + experiment + "' has no results";
            return outcome;
        }
    }

    std::vector<const ResultRow *> rows;
    for (const std::string &ref : rule.cells) {
        const ResultRow *row = index.find(rule.experiment, ref);
        if (!row) {
            // The bench ran but did not emit this cell: an emitter
            // regression, not a partial run.
            outcome.status = RuleOutcome::Status::Fail;
            outcome.diagnostic = "cell '" + ref +
                                 "' missing from experiment '" +
                                 rule.experiment + "' results";
            return outcome;
        }
        rows.push_back(row);
    }

    std::ostringstream diag;
    bool passed = true;
    switch (rule.kind) {
      case RuleKind::Ordering: {
          for (size_t i = 0; i + 1 < rows.size(); ++i) {
              double a = rows[i]->measured;
              double b = rows[i + 1]->measured;
              bool ok = rule.strict ? a > b - rule.slack
                                    : a >= b - rule.slack;
              if (!ok) {
                  passed = false;
                  diag << "expected " << rule.cells[i] << " ("
                       << formatValue(a) << ") "
                       << (rule.strict ? ">" : ">=") << " "
                       << rule.cells[i + 1] << " (" << formatValue(b)
                       << ")";
                  if (rule.slack > 0)
                      diag << " within slack " << rule.slack;
                  break;
              }
          }
          if (passed) {
              diag << "ordering holds:";
              for (size_t i = 0; i < rows.size(); ++i)
                  diag << (i ? " >= " : " ")
                       << formatValue(rows[i]->measured);
          }
          break;
      }
      case RuleKind::Trend: {
          bool increasing = rule.direction == "increasing";
          for (size_t i = 0; i + 1 < rows.size(); ++i) {
              double a = rows[i]->measured;
              double b = rows[i + 1]->measured;
              bool ok = increasing ? b >= a - rule.slack
                                   : b <= a + rule.slack;
              if (!ok) {
                  passed = false;
                  diag << "series not " << rule.direction << " at step "
                       << rule.cells[i] << " -> " << rule.cells[i + 1]
                       << " (" << formatValue(a) << " -> "
                       << formatValue(b) << ", slack " << rule.slack
                       << ")";
                  break;
              }
          }
          if (passed) {
              diag << rule.direction << " series:";
              for (const ResultRow *row : rows)
                  diag << " " << formatValue(row->measured);
          }
          break;
      }
      case RuleKind::Tolerance: {
          const ResultRow *row = rows[0];
          std::optional<double> target =
              rule.expect ? rule.expect : row->paper;
          if (!target) {
              passed = false;
              diag << "cell '" << rule.cells[0]
                   << "' carries no paper value and the rule sets no "
                      "'expect'";
              break;
          }
          double band = rule.absTol +
                        rule.relTolPct / 100.0 * std::fabs(*target);
          double delta = std::fabs(row->measured - *target);
          passed = delta <= band;
          diag << "measured " << formatValue(row->measured)
               << " vs target " << formatValue(*target) << " (|delta| "
               << formatValue(delta) << (passed ? " <= " : " > ")
               << "band " << formatValue(band) << ")";
          break;
      }
      case RuleKind::Regime: {
          double v = rows[0]->measured;
          if (rule.min && v < *rule.min) {
              passed = false;
              diag << "measured " << formatValue(v) << " below min "
                   << formatValue(*rule.min);
          } else if (rule.max && v > *rule.max) {
              passed = false;
              diag << "measured " << formatValue(v) << " above max "
                   << formatValue(*rule.max);
          } else {
              diag << "measured " << formatValue(v) << " within [";
              diag << (rule.min ? formatValue(*rule.min) : "-inf")
                   << ", "
                   << (rule.max ? formatValue(*rule.max) : "+inf")
                   << "]";
          }
          break;
      }
    }

    outcome.status =
        passed ? RuleOutcome::Status::Pass : RuleOutcome::Status::Fail;
    outcome.diagnostic = diag.str();
    if (!passed && !rule.note.empty())
        outcome.diagnostic += " — " + rule.note;
    return outcome;
}

} // namespace report
} // namespace vpprof
