/**
 * @file
 * ProfileCollector: the profiling phase of the methodology (Phase #2 of
 * Figure 3.1). It consumes a dynamic trace, emulates an infinite stride
 * predictor and an infinite last-value predictor side by side, and
 * accumulates the per-instruction statistics that form the profile
 * image: prediction accuracy and stride efficiency ratio.
 */

#ifndef VPPROF_PROFILE_PROFILE_COLLECTOR_HH
#define VPPROF_PROFILE_PROFILE_COLLECTOR_HH

#include <memory>
#include <string>

#include "predictors/last_value_predictor.hh"
#include "predictors/stride_predictor.hh"
#include "profile/profile_image.hh"
#include "vm/trace.hh"

namespace vpprof
{

/**
 * A trace sink that builds a ProfileImage. Only value-producing
 * instructions (those writing a destination register) are observed, per
 * the paper's convention.
 */
class ProfileCollector : public TraceSink
{
  public:
    /** @param program_name Name recorded into the produced image. */
    explicit ProfileCollector(std::string program_name);

    void record(const TraceRecord &rec) override;

    /** The image accumulated so far. */
    const ProfileImage &image() const { return image_; }

    /**
     * Move the image out and reset to a pristine collector: the next
     * record starts a fresh image under the same program name, with
     * cold predictors and producersSeen() == 0. Safe to reuse for
     * another run (per-phase or per-epoch profiling).
     */
    ProfileImage takeImage();

    /** Value-producing records observed since the last takeImage(). */
    uint64_t producersSeen() const { return producersSeen_; }

  private:
    ProfileImage image_;
    StridePredictor stride_;
    LastValuePredictor lastValue_;
    uint64_t producersSeen_ = 0;
};

} // namespace vpprof

#endif // VPPROF_PROFILE_PROFILE_COLLECTOR_HH
