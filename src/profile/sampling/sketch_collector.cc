#include "profile/sampling/sketch_collector.hh"

#include "common/logging.hh"

namespace vpprof
{

SketchProfileCollector::SketchProfileCollector(std::string program_name,
                                               const SketchConfig &config)
    : program_(std::move(program_name)),
      config_(config),
      sketch_(config.sketchWidth, config.sketchDepth)
{
    if (config_.capacity == 0)
        vpprof_fatal("SketchProfileCollector capacity must be > 0");
    if (config_.promoteThreshold == 0)
        config_.promoteThreshold = 1;
    hot_.reserve(config_.capacity);
}

void
SketchProfileCollector::record(const TraceRecord &rec)
{
    if (!rec.writesReg)
        return;
    ++producersSeen_;

    auto it = hot_.find(rec.pc);
    if (it == hot_.end()) {
        ++coldProducers_;
        uint64_t estimate = sketch_.addAndEstimate(rec.pc);
        if (estimate < config_.promoteThreshold ||
            hot_.size() >= config_.capacity)
            return;
        it = hot_.try_emplace(rec.pc).first;
    }

    HotEntry &entry = it->second;
    PcProfile &prof = entry.profile;
    prof.opClass = classOf(rec.op);
    ++prof.executions;

    // Inline emulation of the infinite stride and last-value
    // predictors, record for record identical to ProfileCollector:
    // both predict only once a value has been observed, and the
    // stride is the difference of the two most recent values.
    if (entry.seen) {
        int64_t stride_pred = static_cast<int64_t>(
            static_cast<uint64_t>(entry.lastValue) +
            static_cast<uint64_t>(entry.stride));
        ++prof.attempts;
        if (stride_pred == rec.value) {
            ++prof.correct;
            if (entry.stride != 0)
                ++prof.correctNonZeroStride;
        }
        ++prof.lastValueAttempts;
        if (entry.lastValue == rec.value)
            ++prof.lastValueCorrect;
        entry.stride = static_cast<int64_t>(
            static_cast<uint64_t>(rec.value) -
            static_cast<uint64_t>(entry.lastValue));
    }
    entry.lastValue = rec.value;
    entry.seen = true;
}

ProfileImage
SketchProfileCollector::takeImage()
{
    ProfileImage image(program_);
    for (const auto &[pc, entry] : hot_)
        image.at(pc) = entry.profile;
    hot_.clear();
    sketch_.reset();
    producersSeen_ = 0;
    coldProducers_ = 0;
    return image;
}

size_t
SketchProfileCollector::memoryBytes() const
{
    // Bucket-array + node costs of the hash map are implementation
    // detail; the dominant, capacity-governed terms are enough for
    // the memory-bound contract the tests check.
    return sketch_.memoryBytes() +
           hot_.size() * (sizeof(HotEntry) + sizeof(uint64_t) +
                          2 * sizeof(void *));
}

} // namespace vpprof
