/**
 * @file
 * A count-min sketch over 64-bit keys: fixed-memory approximate
 * frequency counting for the cold tail of a profiled instruction
 * stream. Estimates never undercount (the classic CMS guarantee), so
 * a promotion test "estimate >= threshold" can miss no genuinely hot
 * instruction; it can only promote a few cold ones early, which costs
 * one bounded table slot, never correctness.
 *
 * Hashing is splitmix64 seeded per row — deterministic across
 * platforms and runs, like every other source of randomness in vpprof.
 */

#ifndef VPPROF_PROFILE_SAMPLING_COUNT_MIN_SKETCH_HH
#define VPPROF_PROFILE_SAMPLING_COUNT_MIN_SKETCH_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/random.hh"

namespace vpprof
{

/** Fixed-size count-min sketch; memory = depth * width * 8 bytes. */
class CountMinSketch
{
  public:
    /**
     * @param width Counters per row (rounded up to a power of two).
     * @param depth Independent hash rows (typically 4).
     */
    explicit CountMinSketch(size_t width = 1024, size_t depth = 4)
        : depth_(depth == 0 ? 1 : depth)
    {
        size_t w = 16;
        while (w < width)
            w <<= 1;
        mask_ = w - 1;
        rows_.assign(depth_ * w, 0);
        seeds_.resize(depth_);
        uint64_t sm = 0x5eedc0de5eedc0deull;
        for (uint64_t &seed : seeds_)
            seed = splitmix64(sm);
    }

    /** Add `amount` to the key's counters. */
    void
    add(uint64_t key, uint64_t amount = 1)
    {
        size_t w = mask_ + 1;
        for (size_t d = 0; d < depth_; ++d)
            rows_[d * w + slot(key, d)] += amount;
    }

    /** Point estimate: min over rows; >= the true count, never <. */
    uint64_t
    estimate(uint64_t key) const
    {
        size_t w = mask_ + 1;
        uint64_t best = rows_[slot(key, 0)];
        for (size_t d = 1; d < depth_; ++d)
            best = std::min(best, rows_[d * w + slot(key, d)]);
        return best;
    }

    /** add() then estimate(), in one pass over the rows. */
    uint64_t
    addAndEstimate(uint64_t key, uint64_t amount = 1)
    {
        size_t w = mask_ + 1;
        uint64_t best = UINT64_MAX;
        for (size_t d = 0; d < depth_; ++d) {
            uint64_t &cell = rows_[d * w + slot(key, d)];
            cell += amount;
            best = std::min(best, cell);
        }
        return best;
    }

    void reset() { std::fill(rows_.begin(), rows_.end(), 0); }

    size_t width() const { return mask_ + 1; }
    size_t depth() const { return depth_; }

    /** Resident footprint of the counter array, in bytes. */
    size_t memoryBytes() const { return rows_.size() * sizeof(uint64_t); }

  private:
    size_t
    slot(uint64_t key, size_t d) const
    {
        uint64_t state = seeds_[d] ^ key;
        return static_cast<size_t>(splitmix64(state)) & mask_;
    }

    size_t depth_;
    size_t mask_ = 0;
    std::vector<uint64_t> rows_;
    std::vector<uint64_t> seeds_;
};

} // namespace vpprof

#endif // VPPROF_PROFILE_SAMPLING_COUNT_MIN_SKETCH_HH
