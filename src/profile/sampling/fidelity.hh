/**
 * @file
 * ProfileFidelity: how much directive quality a sampled profile lost
 * relative to the exact profile of the same run. The comparison is in
 * the units the methodology actually consumes: (a) the directive each
 * pc would earn under a DirectiveRule — statically and weighted by
 * dynamic execution count — and (b) the error in the two profiled
 * ratios (prediction accuracy, stride efficiency). The downstream
 * check (misprediction delta of a finite predictor table driven by
 * each profile's annotations) is expressed over plain counters so
 * this layer stays independent of the evaluator layer above it.
 */

#ifndef VPPROF_PROFILE_SAMPLING_FIDELITY_HH
#define VPPROF_PROFILE_SAMPLING_FIDELITY_HH

#include <cstdint>

#include "profile/profile_image.hh"

namespace vpprof
{

/** Fidelity of a sampled profile against the exact profile. */
struct ProfileFidelity
{
    size_t exactPcs = 0;    ///< pcs in the exact image
    size_t sampledPcs = 0;  ///< pcs in the sampled image
    size_t agreeingPcs = 0; ///< exact pcs with the same directive

    uint64_t exactExecutions = 0;    ///< total executions (exact)
    uint64_t agreeingExecutions = 0; ///< executions on agreeing pcs

    /** Mean |accuracy_exact - accuracy_sampled| over attempted pcs. */
    double meanAccuracyErrorPct = 0.0;

    /** Mean |strideRatio_exact - strideRatio_sampled| likewise. */
    double meanStrideRatioErrorPct = 0.0;

    /** Share of exact-profile pcs earning the same directive (%). */
    double
    directiveAgreementPercent() const
    {
        return exactPcs == 0
            ? 100.0 : 100.0 * static_cast<double>(agreeingPcs)
                          / static_cast<double>(exactPcs);
    }

    /** Same, weighted by each pc's dynamic execution count (%). */
    double
    weightedAgreementPercent() const
    {
        return exactExecutions == 0
            ? 100.0 : 100.0 * static_cast<double>(agreeingExecutions)
                          / static_cast<double>(exactExecutions);
    }
};

/**
 * Compare a sampled image against the exact image of the same run.
 * Every pc of the exact image is judged; a pc absent from the sampled
 * image earns Directive::None there (the honest consequence of never
 * sampling it).
 */
ProfileFidelity compareProfiles(const ProfileImage &exact,
                                const ProfileImage &sampled,
                                const DirectiveRule &rule = {});

/**
 * Same comparison with a distinct rule for the sampled side —
 * typically `rule.scaledToSampling(keptFraction)`, so a sampled
 * profile is not stripped of tags merely for having proportionally
 * fewer attempts than the full trace.
 */
ProfileFidelity compareProfiles(const ProfileImage &exact,
                                const ProfileImage &sampled,
                                const DirectiveRule &rule,
                                const DirectiveRule &sampledRule);

/** Counters of one downstream finite-table evaluation. */
struct DownstreamCounts
{
    uint64_t producers = 0;     ///< dynamic value-producing instrs
    uint64_t correctTaken = 0;  ///< consumed correct predictions
    uint64_t incorrectTaken = 0;///< consumed mispredictions
};

/** Downstream effect of profiling error on a predictor table. */
struct DownstreamDelta
{
    double exactCorrectPct = 0.0;    ///< correct / producers (exact)
    double sampledCorrectPct = 0.0;  ///< same for the sampled profile
    double exactMispredictPct = 0.0;
    double sampledMispredictPct = 0.0;

    /** Misprediction-share change, sampled - exact (pct points). */
    double
    mispredictDeltaPct() const
    {
        return sampledMispredictPct - exactMispredictPct;
    }

    /** Correct-share change, sampled - exact (pct points). */
    double
    correctDeltaPct() const
    {
        return sampledCorrectPct - exactCorrectPct;
    }
};

/** Compare two downstream evaluations of the same trace. */
DownstreamDelta compareDownstream(const DownstreamCounts &exact,
                                  const DownstreamCounts &sampled);

} // namespace vpprof

#endif // VPPROF_PROFILE_SAMPLING_FIDELITY_HH
