/**
 * @file
 * Sampled profiling policies (the tentpole of the sampled-profiling
 * subsystem): composable TraceSink decorators that forward only a
 * chosen fraction of the dynamic trace to an inner consumer, so a
 * profile of directive quality can be collected at a fraction of the
 * full-instrumentation cost the paper's Phase-2 methodology implies.
 *
 * Three policies, all keyed off the record's dynamic sequence number
 * so the kept set is a pure function of (policy, rate, seed) — the
 * same records are kept on every replay, for every jobs count, and on
 * every platform:
 *
 *  - Periodic: keep record i iff i % rate == 0 (classic 1-in-N).
 *  - Random:   keep with probability 1/rate, decided by a splitmix64
 *              hash of (seed, i) — a seeded, stateless PRNG draw.
 *  - Burst:    keep `burstLen` consecutive records, then skip
 *              (rate-1)*burstLen, so within a burst every value of a
 *              hot instruction is observed and stride chains stay
 *              intact.
 *
 * rate == 1 always keeps everything, for every policy: a 1-in-1
 * "sampled" profile is bit-identical to the exact profile.
 */

#ifndef VPPROF_PROFILE_SAMPLING_SAMPLING_POLICY_HH
#define VPPROF_PROFILE_SAMPLING_SAMPLING_POLICY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "vm/trace.hh"

namespace vpprof
{

/** How a SamplingTraceSink picks the records it forwards. */
enum class SamplingPolicy : uint8_t
{
    Exact,    ///< keep everything (no sampling decorator needed)
    Periodic, ///< 1-in-N by dynamic sequence number
    Random,   ///< seeded hash-based coin flip per record
    Burst,    ///< windows of consecutive records (stride-preserving)
};

/** Printable policy name ("exact", "periodic", "random", "burst"). */
std::string_view samplingPolicyName(SamplingPolicy policy);

/** Parse a policy name; nullopt when unknown. */
std::optional<SamplingPolicy> parseSamplingPolicy(std::string_view name);

/** Tunables of one sampled-profiling configuration. */
struct SamplingConfig
{
    SamplingPolicy policy = SamplingPolicy::Exact;

    /** Keep ~1 record in `rate` (must be >= 1; 1 keeps everything). */
    uint64_t rate = 1;

    /**
     * Consecutive records per observation window (Burst only). Long
     * windows are what make burst sampling fidelity-preserving: every
     * occurrence of a pc inside a window is consecutive, so stride
     * chains are observed exactly, and the one stale-stride miss at
     * each window boundary is amortized over the window
     * (bench_sampling_fidelity: 1024 holds >= 90% execution-weighted
     * directive agreement at 1-in-8 sampling; 64 caps near 85%).
     */
    uint64_t burstLen = 1024;

    /** PRNG seed for the Random policy. */
    uint64_t seed = 1;

    /**
     * When > 0, collect through a SketchProfileCollector bounded to
     * this many resident per-instruction entries (plus a count-min
     * sketch for the cold tail) instead of the exact collector.
     */
    size_t sketchCapacity = 0;

    /** True when this config observes the full trace exactly. */
    bool
    isExact() const
    {
        return (policy == SamplingPolicy::Exact || rate <= 1) &&
               sketchCapacity == 0;
    }

    /**
     * Validate the knobs; returns a human-readable complaint or
     * nullopt when the config is usable. Callers (the CLI) must treat
     * a complaint as a hard error, never as "fall back to exact".
     */
    std::optional<std::string> validate() const;

    /**
     * Canonical memoization key: equal keys <=> identical sampled
     * profiles. Exact configs all share one key.
     */
    std::string cacheKey() const;
};

/**
 * The sampling decorator: forwards the policy-selected subset of
 * records to the inner sink and drops the rest before any downstream
 * work happens (predictor lookups, counter updates), which is where
 * the profiling-cost reduction comes from.
 */
class SamplingTraceSink : public TraceSink
{
  public:
    /**
     * @param config Must validate() clean (checked; fatal otherwise).
     * @param inner  Receiver of the kept records; not owned.
     */
    SamplingTraceSink(const SamplingConfig &config, TraceSink *inner);

    void record(const TraceRecord &rec) override;

    /** Records offered to the decorator so far. */
    uint64_t recordsSeen() const { return seen_; }

    /** Records forwarded to the inner sink so far. */
    uint64_t recordsKept() const { return kept_; }

    /** True when the policy keeps this record (pure, stateless). */
    static bool keeps(const SamplingConfig &config,
                      const TraceRecord &rec);

  private:
    SamplingConfig config_;
    TraceSink *inner_;
    uint64_t seen_ = 0;
    uint64_t kept_ = 0;
};

} // namespace vpprof

#endif // VPPROF_PROFILE_SAMPLING_SAMPLING_POLICY_HH
