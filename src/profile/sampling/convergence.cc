#include "profile/sampling/convergence.hh"

namespace vpprof
{

ConvergenceTracker::ConvergenceTracker(ProfileCollector &collector,
                                       const ConvergenceConfig &config)
    : collector_(collector), config_(config)
{
}

void
ConvergenceTracker::record(const TraceRecord &rec)
{
    if (converged_ && config_.earlyExit) {
        ++skipped_;
        return;
    }
    collector_.record(rec);
    if (!rec.writesReg)
        return;
    ++producers_;
    if (producers_ % config_.checkIntervalProducers == 0)
        snapshot();
}

void
ConvergenceTracker::snapshot()
{
    ++snapshots_;
    std::map<uint64_t, Directive> current;
    for (const auto &[pc, prof] : collector_.image().entries()) {
        Directive d = classifyDirective(prof, config_.rule);
        if (d != Directive::None)
            current.emplace(pc, d);
    }

    // Agreement over the union of tagged pcs: a pc tagged in only one
    // snapshot counts as a disagreement (the assignment changed).
    size_t agree = 0, unionSize = prev_.size();
    for (const auto &[pc, d] : current) {
        auto it = prev_.find(pc);
        if (it == prev_.end())
            ++unionSize;
        else if (it->second == d)
            ++agree;
    }
    lastAgreement_ =
        unionSize == 0 ? 100.0
                       : 100.0 * static_cast<double>(agree) /
                             static_cast<double>(unionSize);

    if (snapshots_ > 1 &&
        lastAgreement_ >= config_.stableAgreementPercent)
        ++stableRun_;
    else
        stableRun_ = 0;

    if (!converged_ && stableRun_ >= config_.stableChecks) {
        converged_ = true;
        producersAtConvergence_ = producers_;
    }
    prev_ = std::move(current);
}

} // namespace vpprof
