#include "profile/sampling/sampling_policy.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"

namespace vpprof
{

std::string_view
samplingPolicyName(SamplingPolicy policy)
{
    switch (policy) {
      case SamplingPolicy::Exact: return "exact";
      case SamplingPolicy::Periodic: return "periodic";
      case SamplingPolicy::Random: return "random";
      case SamplingPolicy::Burst: return "burst";
    }
    return "?";
}

std::optional<SamplingPolicy>
parseSamplingPolicy(std::string_view name)
{
    if (name == "exact")
        return SamplingPolicy::Exact;
    if (name == "periodic")
        return SamplingPolicy::Periodic;
    if (name == "random")
        return SamplingPolicy::Random;
    if (name == "burst")
        return SamplingPolicy::Burst;
    return std::nullopt;
}

std::optional<std::string>
SamplingConfig::validate() const
{
    if (rate == 0)
        return "sample rate must be >= 1 (got 0)";
    if (policy == SamplingPolicy::Burst && burstLen == 0)
        return "burst length must be >= 1 (got 0)";
    if (policy == SamplingPolicy::Exact && rate != 1)
        return "policy 'exact' cannot take a sample rate other than 1";
    return std::nullopt;
}

std::string
SamplingConfig::cacheKey() const
{
    if (isExact())
        return "exact";
    std::ostringstream os;
    os << samplingPolicyName(policy) << "/" << rate;
    if (policy == SamplingPolicy::Burst)
        os << "/w" << burstLen;
    if (policy == SamplingPolicy::Random)
        os << "/s" << seed;
    if (sketchCapacity > 0)
        os << "/sketch" << sketchCapacity;
    return os.str();
}

SamplingTraceSink::SamplingTraceSink(const SamplingConfig &config,
                                     TraceSink *inner)
    : config_(config), inner_(inner)
{
    if (auto complaint = config.validate())
        vpprof_fatal("invalid sampling config: ", *complaint);
}

bool
SamplingTraceSink::keeps(const SamplingConfig &config,
                         const TraceRecord &rec)
{
    if (config.rate <= 1)
        return true;
    switch (config.policy) {
      case SamplingPolicy::Exact:
        return true;
      case SamplingPolicy::Periodic:
        return rec.seq % config.rate == 0;
      case SamplingPolicy::Random: {
        // One stateless splitmix64 draw per record: the decision
        // depends only on (seed, seq), never on how many records this
        // sink instance has already seen, so fused replays and
        // partial replays sample identically.
        uint64_t state = config.seed ^
                         (rec.seq * 0x9e3779b97f4a7c15ull);
        return splitmix64(state) % config.rate == 0;
      }
      case SamplingPolicy::Burst:
        return rec.seq % (config.burstLen * config.rate) <
               config.burstLen;
    }
    return true;
}

void
SamplingTraceSink::record(const TraceRecord &rec)
{
    ++seen_;
    if (!keeps(config_, rec))
        return;
    ++kept_;
    inner_->record(rec);
}

} // namespace vpprof
