/**
 * @file
 * SketchProfileCollector: a memory-bounded profiling sink. Where
 * ProfileCollector keeps one map entry (plus two infinite predictor
 * entries) for every static instruction it ever sees, this collector
 * holds full per-instruction statistics only for a bounded set of
 * "hot" instructions and pushes the cold tail into a count-min sketch
 * that costs fixed memory regardless of how many distinct pcs flow by.
 *
 * Promotion: an unresident pc is counted in the sketch; once its
 * (never-undercounting) estimate reaches `promoteThreshold` and a hot
 * slot is free, it is promoted and profiled exactly from then on. A
 * hot instruction executing millions of times loses only its first
 * ~promoteThreshold observations — noise at profiling scale — while
 * memory stays O(capacity + sketch), not O(distinct pcs).
 *
 * The emitted ProfileImage is the same type every downstream consumer
 * (directive inserter, classifiers, hybrid tables, ILP evaluation)
 * already takes, so bounded-memory profiles are drop-in.
 */

#ifndef VPPROF_PROFILE_SAMPLING_SKETCH_COLLECTOR_HH
#define VPPROF_PROFILE_SAMPLING_SKETCH_COLLECTOR_HH

#include <string>
#include <unordered_map>

#include "profile/profile_image.hh"
#include "profile/sampling/count_min_sketch.hh"
#include "vm/trace.hh"

namespace vpprof
{

/** Memory knobs for a SketchProfileCollector. */
struct SketchConfig
{
    /** Max resident fully-profiled instructions (> 0). */
    size_t capacity = 4096;

    /** Sketch estimate at which a pc earns a hot slot. */
    uint64_t promoteThreshold = 8;

    /** Count-min sketch geometry for the cold tail. */
    size_t sketchWidth = 4096;
    size_t sketchDepth = 4;
};

/**
 * A trace sink that builds a ProfileImage within a fixed memory
 * budget. Observes value-producing records only, like
 * ProfileCollector, and matches its statistics exactly for every pc
 * resident from that pc's first observation.
 */
class SketchProfileCollector : public TraceSink
{
  public:
    SketchProfileCollector(std::string program_name,
                           const SketchConfig &config = {});

    void record(const TraceRecord &rec) override;

    /**
     * Emit the image of the hot set and reset to a pristine, reusable
     * collector (same contract as ProfileCollector::takeImage()).
     */
    ProfileImage takeImage();

    /** Value-producing records observed since the last takeImage(). */
    uint64_t producersSeen() const { return producersSeen_; }

    /** Producers observed while their pc was unresident (cold). */
    uint64_t coldProducers() const { return coldProducers_; }

    /** Resident fully-profiled pcs (<= capacity, always). */
    size_t hotPcs() const { return hot_.size(); }

    /** Sketch estimate of a pc's execution count (cold tail view). */
    uint64_t coldEstimate(uint64_t pc) const
    {
        return sketch_.estimate(pc);
    }

    /** Approximate resident footprint in bytes (bound checked by
     *  tests against a synthetic long-tail trace). */
    size_t memoryBytes() const;

  private:
    /** Full stats plus inline infinite-predictor state for one pc. */
    struct HotEntry
    {
        PcProfile profile;
        bool seen = false;     ///< one value observed (predictors warm)
        int64_t lastValue = 0;
        int64_t stride = 0;
    };

    std::string program_;
    SketchConfig config_;
    std::unordered_map<uint64_t, HotEntry> hot_;
    CountMinSketch sketch_;
    uint64_t producersSeen_ = 0;
    uint64_t coldProducers_ = 0;
};

} // namespace vpprof

#endif // VPPROF_PROFILE_SAMPLING_SKETCH_COLLECTOR_HH
