/**
 * @file
 * ConvergenceTracker: early-exit profiling. The paper's methodology
 * profiles a whole training run, but the quantity the compiler
 * actually consumes — the per-instruction directive assignment — is
 * usually decided long before the trace ends: hot instructions settle
 * into their accuracy/stride-ratio bands early. The tracker
 * periodically snapshots the directive assignment the evolving
 * profile would produce and declares convergence once consecutive
 * snapshots agree; with early-exit enabled it then stops feeding the
 * collector, so the remaining replay costs a branch per record.
 */

#ifndef VPPROF_PROFILE_SAMPLING_CONVERGENCE_HH
#define VPPROF_PROFILE_SAMPLING_CONVERGENCE_HH

#include <map>

#include "profile/profile_collector.hh"
#include "profile/profile_image.hh"
#include "vm/trace.hh"

namespace vpprof
{

/** Knobs of the convergence check. */
struct ConvergenceConfig
{
    /** Producer records between directive snapshots. */
    uint64_t checkIntervalProducers = 65'536;

    /**
     * Two consecutive snapshots "agree" when at least this share of
     * the pcs in either snapshot keeps its directive (%).
     */
    double stableAgreementPercent = 99.5;

    /** Consecutive agreeing snapshots that declare convergence. */
    unsigned stableChecks = 2;

    /** Stop feeding the collector once converged. */
    bool earlyExit = false;

    /** Classification rule the snapshots are taken under. */
    DirectiveRule rule;
};

/**
 * A TraceSink decorator around a ProfileCollector that reports when
 * the collector's directive assignment has stabilized.
 */
class ConvergenceTracker : public TraceSink
{
  public:
    /** @param collector Profiled through; held by reference. */
    ConvergenceTracker(ProfileCollector &collector,
                       const ConvergenceConfig &config = {});

    void record(const TraceRecord &rec) override;

    bool converged() const { return converged_; }

    /** Producers observed when convergence fired (0 = never). */
    uint64_t producersAtConvergence() const
    {
        return producersAtConvergence_;
    }

    /** Records dropped after convergence (early-exit savings). */
    uint64_t recordsSkipped() const { return skipped_; }

    unsigned snapshotsTaken() const { return snapshots_; }

    /** Agreement between the last two snapshots (% of pcs). */
    double lastAgreementPercent() const { return lastAgreement_; }

  private:
    void snapshot();

    ProfileCollector &collector_;
    ConvergenceConfig config_;
    std::map<uint64_t, Directive> prev_;
    uint64_t producers_ = 0;
    uint64_t skipped_ = 0;
    unsigned snapshots_ = 0;
    unsigned stableRun_ = 0;
    double lastAgreement_ = 0.0;
    bool converged_ = false;
    uint64_t producersAtConvergence_ = 0;
};

} // namespace vpprof

#endif // VPPROF_PROFILE_SAMPLING_CONVERGENCE_HH
