#include "profile/sampling/fidelity.hh"

#include <cmath>

namespace vpprof
{

ProfileFidelity
compareProfiles(const ProfileImage &exact, const ProfileImage &sampled,
                const DirectiveRule &rule)
{
    return compareProfiles(exact, sampled, rule, rule);
}

ProfileFidelity
compareProfiles(const ProfileImage &exact, const ProfileImage &sampled,
                const DirectiveRule &rule,
                const DirectiveRule &sampledRule)
{
    ProfileFidelity f;
    f.exactPcs = exact.size();
    f.sampledPcs = sampled.size();

    static const PcProfile kEmpty{};
    double accErrSum = 0.0, strideErrSum = 0.0;
    size_t accPcs = 0, stridePcs = 0;

    for (const auto &[pc, e] : exact.entries()) {
        const PcProfile *s = sampled.find(pc);
        const PcProfile &sp = s ? *s : kEmpty;

        f.exactExecutions += e.executions;
        if (classifyDirective(e, rule) ==
            classifyDirective(sp, sampledRule)) {
            ++f.agreeingPcs;
            f.agreeingExecutions += e.executions;
        }
        if (e.attempts > 0) {
            accErrSum +=
                std::abs(e.accuracyPercent() - sp.accuracyPercent());
            ++accPcs;
        }
        if (e.correct > 0) {
            strideErrSum += std::abs(e.strideEfficiencyPercent() -
                                     sp.strideEfficiencyPercent());
            ++stridePcs;
        }
    }
    if (accPcs > 0)
        f.meanAccuracyErrorPct = accErrSum / static_cast<double>(accPcs);
    if (stridePcs > 0)
        f.meanStrideRatioErrorPct =
            strideErrSum / static_cast<double>(stridePcs);
    return f;
}

namespace
{

double
pct(uint64_t part, uint64_t whole)
{
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part) /
                            static_cast<double>(whole);
}

} // namespace

DownstreamDelta
compareDownstream(const DownstreamCounts &exact,
                  const DownstreamCounts &sampled)
{
    DownstreamDelta d;
    d.exactCorrectPct = pct(exact.correctTaken, exact.producers);
    d.sampledCorrectPct = pct(sampled.correctTaken, sampled.producers);
    d.exactMispredictPct = pct(exact.incorrectTaken, exact.producers);
    d.sampledMispredictPct =
        pct(sampled.incorrectTaken, sampled.producers);
    return d;
}

} // namespace vpprof
