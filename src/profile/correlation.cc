#include "profile/correlation.hh"

#include <cmath>

#include "common/logging.hh"

namespace vpprof
{

namespace
{

/** Shared alignment walk; `extract` maps a PcProfile to the metric. */
template <typename Extract>
AlignedProfileVectors
align(const std::vector<ProfileImage> &images, Extract extract)
{
    AlignedProfileVectors out;
    out.pcs = commonPcs(images);
    out.runs.resize(images.size());
    for (size_t j = 0; j < images.size(); ++j) {
        out.runs[j].reserve(out.pcs.size());
        for (uint64_t pc : out.pcs) {
            const PcProfile *prof = images[j].find(pc);
            // commonPcs guarantees presence.
            out.runs[j].push_back(extract(*prof));
        }
    }
    return out;
}

} // namespace

AlignedProfileVectors
alignAccuracy(const std::vector<ProfileImage> &images)
{
    return align(images, [](const PcProfile &p) {
        return p.accuracyPercent();
    });
}

AlignedProfileVectors
alignStrideEfficiency(const std::vector<ProfileImage> &images)
{
    return align(images, [](const PcProfile &p) {
        return p.strideEfficiencyPercent();
    });
}

std::vector<double>
maxDistance(const AlignedProfileVectors &vectors)
{
    if (vectors.numRuns() < 2)
        vpprof_panic("maxDistance needs at least two runs");
    size_t n = vectors.numRuns();
    size_t k = vectors.dimension();
    std::vector<double> metric(k, 0.0);
    for (size_t i = 0; i < k; ++i) {
        double worst = 0.0;
        for (size_t a = 0; a < n; ++a) {
            for (size_t b = a + 1; b < n; ++b) {
                double d = std::fabs(vectors.runs[a][i] -
                                     vectors.runs[b][i]);
                if (d > worst)
                    worst = d;
            }
        }
        metric[i] = worst;
    }
    return metric;
}

std::vector<double>
averageDistance(const AlignedProfileVectors &vectors)
{
    if (vectors.numRuns() < 2)
        vpprof_panic("averageDistance needs at least two runs");
    size_t n = vectors.numRuns();
    size_t k = vectors.dimension();
    double num_pairs = static_cast<double>(n * (n - 1) / 2);
    std::vector<double> metric(k, 0.0);
    for (size_t i = 0; i < k; ++i) {
        double sum = 0.0;
        for (size_t a = 0; a < n; ++a) {
            for (size_t b = a + 1; b < n; ++b) {
                sum += std::fabs(vectors.runs[a][i] -
                                 vectors.runs[b][i]);
            }
        }
        metric[i] = sum / num_pairs;
    }
    return metric;
}

Histogram
decileSpread(const std::vector<double> &coordinates)
{
    Histogram h = makeDecileHistogram();
    for (double x : coordinates)
        h.addSample(x);
    return h;
}

} // namespace vpprof
