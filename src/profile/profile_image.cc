#include "profile/profile_image.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace vpprof
{

Directive
classifyDirective(const PcProfile &profile, const DirectiveRule &rule)
{
    if (profile.attempts < rule.minAttempts)
        return Directive::None;
    if (profile.accuracyPercent() < rule.accuracyThresholdPercent)
        return Directive::None;
    return profile.strideEfficiencyPercent() > rule.strideThresholdPercent
               ? Directive::Stride
               : Directive::LastValue;
}

DirectiveRule
DirectiveRule::scaledToSampling(double keptFraction) const
{
    DirectiveRule scaled = *this;
    if (keptFraction > 0.0 && keptFraction < 1.0) {
        auto floor_attempts = static_cast<uint64_t>(
            static_cast<double>(minAttempts) * keptFraction + 0.5);
        scaled.minAttempts = floor_attempts < 2 ? 2 : floor_attempts;
    }
    return scaled;
}

const PcProfile *
ProfileImage::find(uint64_t pc) const
{
    auto it = entries_.find(pc);
    return it == entries_.end() ? nullptr : &it->second;
}

void
ProfileImage::merge(const ProfileImage &other)
{
    for (const auto &[pc, prof] : other.entries_) {
        PcProfile &mine = entries_[pc];
        mine.executions += prof.executions;
        mine.attempts += prof.attempts;
        mine.correct += prof.correct;
        mine.correctNonZeroStride += prof.correctNonZeroStride;
        mine.lastValueCorrect += prof.lastValueCorrect;
        mine.lastValueAttempts += prof.lastValueAttempts;
        mine.opClass = prof.opClass;
    }
}

void
ProfileImage::save(std::ostream &os) const
{
    os << "# vpprof profile image v1\n";
    os << "program " << program_ << '\n';
    os << "# pc executions attempts correct correctNonZeroStride"
          " lvAttempts lvCorrect opclass\n";
    for (const auto &[pc, p] : entries_) {
        os << pc << ' ' << p.executions << ' ' << p.attempts << ' '
           << p.correct << ' ' << p.correctNonZeroStride << ' '
           << p.lastValueAttempts << ' ' << p.lastValueCorrect << ' '
           << static_cast<unsigned>(p.opClass) << '\n';
    }
}

void
ProfileImage::saveFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        vpprof_fatal("cannot open profile image for writing: ", path);
    save(os);
}

ProfileImage
ProfileImage::load(std::istream &is)
{
    ProfileImage image;
    std::string line;
    bool saw_header = false;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string first;
        ls >> first;
        if (first == "program") {
            std::string name;
            ls >> name;
            image.program_ = name;
            saw_header = true;
            continue;
        }
        uint64_t pc = 0;
        try {
            pc = std::stoull(first);
        } catch (const std::exception &) {
            vpprof_fatal("malformed profile image line: ", line);
        }
        PcProfile p;
        unsigned cls = 0;
        ls >> p.executions >> p.attempts >> p.correct
           >> p.correctNonZeroStride >> p.lastValueAttempts
           >> p.lastValueCorrect >> cls;
        if (!ls)
            vpprof_fatal("malformed profile image line: ", line);
        if (p.correct > p.attempts || p.correctNonZeroStride > p.correct ||
            p.lastValueCorrect > p.lastValueAttempts) {
            vpprof_fatal("inconsistent counters in profile image line: ",
                         line);
        }
        p.opClass = static_cast<OpClass>(cls);
        image.entries_[pc] = p;
    }
    if (!saw_header)
        vpprof_fatal("profile image missing 'program' header");
    return image;
}

ProfileImage
ProfileImage::loadFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        vpprof_fatal("cannot open profile image: ", path);
    return load(is);
}

std::vector<uint64_t>
commonPcs(const std::vector<ProfileImage> &images)
{
    std::vector<uint64_t> common;
    if (images.empty())
        return common;
    for (const auto &[pc, prof] : images[0].entries()) {
        if (prof.attempts == 0)
            continue;
        bool in_all = true;
        for (size_t j = 1; j < images.size(); ++j) {
            const PcProfile *other = images[j].find(pc);
            if (!other || other->attempts == 0) {
                in_all = false;
                break;
            }
        }
        if (in_all)
            common.push_back(pc);
    }
    return common;
}

} // namespace vpprof
