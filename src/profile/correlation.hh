/**
 * @file
 * Cross-run similarity metrics of Section 4.
 *
 * Running a program n times with different inputs yields n profile
 * images. Viewing each image as a vector (one coordinate per
 * instruction common to all runs), the paper measures the resemblance
 * between the vectors with two metrics:
 *
 *  - M(V)max (Equation 4.1): per coordinate, the maximum distance
 *    between the corresponding coordinates of each pair of vectors;
 *  - M(V)average (Equation 4.2): per coordinate, the arithmetic-average
 *    pairwise distance.
 *
 * The same machinery applied to stride-efficiency vectors produces
 * M(S)average (Figure 4.3). Coordinates concentrated in the low deciles
 * mean the runs agree, i.e., profiling is input-independent.
 */

#ifndef VPPROF_PROFILE_CORRELATION_HH
#define VPPROF_PROFILE_CORRELATION_HH

#include <cstdint>
#include <vector>

#include "common/histogram.hh"
#include "profile/profile_image.hh"

namespace vpprof
{

/**
 * Profile vectors aligned over the instructions common to all runs:
 * runs[j][i] is the metric value of instruction pcs[i] in run j.
 */
struct AlignedProfileVectors
{
    std::vector<uint64_t> pcs;
    std::vector<std::vector<double>> runs;

    /** Number of coordinates (aligned instructions). */
    size_t dimension() const { return pcs.size(); }

    /** Number of runs. */
    size_t numRuns() const { return runs.size(); }
};

/**
 * Align prediction-accuracy vectors (percent) over the pcs profiled in
 * every image. Instructions appearing only in some runs are omitted,
 * per Section 4.
 */
AlignedProfileVectors
alignAccuracy(const std::vector<ProfileImage> &images);

/** Align stride-efficiency-ratio vectors (percent). */
AlignedProfileVectors
alignStrideEfficiency(const std::vector<ProfileImage> &images);

/**
 * Equation 4.1: per coordinate, max over all vector pairs of the
 * absolute coordinate difference. Needs >= 2 runs.
 */
std::vector<double> maxDistance(const AlignedProfileVectors &vectors);

/**
 * Equation 4.2: per coordinate, the arithmetic mean over all vector
 * pairs of the absolute coordinate difference. Needs >= 2 runs.
 */
std::vector<double> averageDistance(const AlignedProfileVectors &vectors);

/**
 * Bucket metric coordinates into the paper's deciles
 * ([0,10], (10,20], ..., (90,100]) for the Figure 4.x histograms.
 */
Histogram decileSpread(const std::vector<double> &coordinates);

} // namespace vpprof

#endif // VPPROF_PROFILE_CORRELATION_HH
