#include "profile/profile_collector.hh"

namespace vpprof
{

namespace
{

/** Infinite, unclassified predictor configuration for profiling. */
PredictorConfig
profilingConfig()
{
    PredictorConfig cfg;
    cfg.numEntries = 0;   // infinite
    cfg.counterBits = 0;  // no FSM during profiling
    return cfg;
}

} // namespace

ProfileCollector::ProfileCollector(std::string program_name)
    : image_(std::move(program_name)),
      stride_(profilingConfig()),
      lastValue_(profilingConfig())
{
}

void
ProfileCollector::record(const TraceRecord &rec)
{
    if (!rec.writesReg)
        return;
    ++producersSeen_;

    PcProfile &prof = image_.at(rec.pc);
    prof.opClass = classOf(rec.op);
    ++prof.executions;

    Prediction sp = stride_.predict(rec.pc);
    if (sp.hit) {
        ++prof.attempts;
        if (sp.value == rec.value) {
            ++prof.correct;
            if (sp.usedNonZeroStride)
                ++prof.correctNonZeroStride;
        }
    }
    stride_.update(rec.pc, rec.value, sp.hit && sp.value == rec.value);

    Prediction lp = lastValue_.predict(rec.pc);
    if (lp.hit) {
        ++prof.lastValueAttempts;
        if (lp.value == rec.value)
            ++prof.lastValueCorrect;
    }
    lastValue_.update(rec.pc, rec.value, lp.hit && lp.value == rec.value);
}

ProfileImage
ProfileCollector::takeImage()
{
    ProfileImage out = std::move(image_);
    image_ = ProfileImage(std::string(out.programName()));
    stride_.reset();
    lastValue_.reset();
    producersSeen_ = 0;
    return out;
}

} // namespace vpprof
