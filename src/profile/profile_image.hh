/**
 * @file
 * The profile image: per-instruction value-predictability statistics
 * collected during a profiling run (Section 3.2, Table 3.1).
 *
 * The paper's profile image file holds, per instruction address, the
 * prediction accuracy and the stride efficiency ratio. We persist the
 * underlying counters instead of the ratios so images from multiple
 * training runs can be merged exactly; the ratios are derived views.
 */

#ifndef VPPROF_PROFILE_PROFILE_IMAGE_HH
#define VPPROF_PROFILE_PROFILE_IMAGE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "isa/directive.hh"
#include "isa/opcode.hh"

namespace vpprof
{

/** Per-instruction profiling counters and their derived ratios. */
struct PcProfile
{
    uint64_t executions = 0;  ///< dynamic occurrences (value producers)
    uint64_t attempts = 0;    ///< stride-predictor predictions attempted
    uint64_t correct = 0;     ///< correct stride-predictor predictions
    /** Correct predictions formed with a non-zero stride. */
    uint64_t correctNonZeroStride = 0;
    /** Correct predictions of the companion last-value predictor. */
    uint64_t lastValueCorrect = 0;
    /** Last-value predictions attempted. */
    uint64_t lastValueAttempts = 0;
    OpClass opClass = OpClass::IntAlu;

    /** Exact counter equality (bit-identical profiles in tests). */
    bool
    operator==(const PcProfile &o) const
    {
        return executions == o.executions && attempts == o.attempts &&
               correct == o.correct &&
               correctNonZeroStride == o.correctNonZeroStride &&
               lastValueCorrect == o.lastValueCorrect &&
               lastValueAttempts == o.lastValueAttempts &&
               opClass == o.opClass;
    }

    /** Stride-predictor prediction accuracy in percent (0 if untried). */
    double
    accuracyPercent() const
    {
        return attempts == 0
            ? 0.0 : 100.0 * static_cast<double>(correct)
                        / static_cast<double>(attempts);
    }

    /** Last-value-predictor accuracy in percent. */
    double
    lastValueAccuracyPercent() const
    {
        return lastValueAttempts == 0
            ? 0.0 : 100.0 * static_cast<double>(lastValueCorrect)
                        / static_cast<double>(lastValueAttempts);
    }

    /**
     * Stride efficiency ratio in percent: the share of correct
     * predictions that used a non-zero stride (Subsection 2.5).
     * 0 when the instruction never predicted correctly.
     */
    double
    strideEfficiencyPercent() const
    {
        return correct == 0
            ? 0.0 : 100.0 * static_cast<double>(correctNonZeroStride)
                        / static_cast<double>(correct);
    }
};

/**
 * The paper's Section 3.2 classification rule, decoupled from the
 * compiler pass so profile-level consumers (convergence tracking,
 * fidelity comparison) can ask "what directive would this profile
 * earn?" without a Program in hand. The compiler's InserterConfig
 * mirrors these fields and delegates here.
 */
struct DirectiveRule
{
    /** Tag predictable at or above this prediction accuracy (%). */
    double accuracyThresholdPercent = 90.0;

    /** Above this stride efficiency ratio (%): "stride", else
     *  "last-value". */
    double strideThresholdPercent = 50.0;

    /** Minimum profiled attempts before an instruction may be tagged. */
    uint64_t minAttempts = 4;

    /**
     * The rule to judge a profile that observed only `keptFraction`
     * of the trace: the accuracy and stride-ratio thresholds carry
     * over unchanged (they are ratios), but the attempt-support floor
     * scales with the observed fraction — demanding the full-trace
     * support from a 1-in-N profile would strip tags from every
     * moderately-hot instruction for lack of samples, not for lack of
     * predictability. Clamped below at 2 attempts so a single lucky
     * prediction can never tag an instruction.
     */
    DirectiveRule scaledToSampling(double keptFraction) const;
};

/** The directive a profile earns under a rule (None if below it). */
Directive classifyDirective(const PcProfile &profile,
                            const DirectiveRule &rule);

/**
 * A profile image: the per-pc table produced by one (or several merged)
 * profiling runs of one program.
 */
class ProfileImage
{
  public:
    ProfileImage() = default;

    /** @param program Name of the profiled program. */
    explicit ProfileImage(std::string program)
        : program_(std::move(program))
    {
    }

    const std::string &programName() const { return program_; }

    /** Mutable per-pc record, created on first touch. */
    PcProfile &at(uint64_t pc) { return entries_[pc]; }

    /** Lookup; nullptr when the pc was never profiled. */
    const PcProfile *find(uint64_t pc) const;

    /** Number of distinct profiled instructions. */
    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Ordered iteration over (pc, profile) pairs. */
    const std::map<uint64_t, PcProfile> &entries() const
    {
        return entries_;
    }

    /**
     * Merge another image of the same program by summing counters
     * (multi-run profiling, Section 3.2: "the program can be run either
     * single or multiple times").
     */
    void merge(const ProfileImage &other);

    /** Bit-identical image contents (name ignored; tests, fidelity). */
    bool
    operator==(const ProfileImage &o) const
    {
        return entries_ == o.entries_;
    }

    /** Serialize as the text profile-image file format. */
    void save(std::ostream &os) const;
    void saveFile(const std::string &path) const;

    /** Parse a text profile-image file; fatal on malformed input. */
    static ProfileImage load(std::istream &is);
    static ProfileImage loadFile(const std::string &path);

  private:
    std::string program_;
    std::map<uint64_t, PcProfile> entries_;
};

/**
 * The set of pcs profiled in every one of the given images — Section 4
 * keeps only instructions that appear in all runs when building its
 * metric vectors.
 */
std::vector<uint64_t> commonPcs(const std::vector<ProfileImage> &images);

} // namespace vpprof

#endif // VPPROF_PROFILE_PROFILE_IMAGE_HH
