/**
 * @file
 * The profile image: per-instruction value-predictability statistics
 * collected during a profiling run (Section 3.2, Table 3.1).
 *
 * The paper's profile image file holds, per instruction address, the
 * prediction accuracy and the stride efficiency ratio. We persist the
 * underlying counters instead of the ratios so images from multiple
 * training runs can be merged exactly; the ratios are derived views.
 */

#ifndef VPPROF_PROFILE_PROFILE_IMAGE_HH
#define VPPROF_PROFILE_PROFILE_IMAGE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "isa/opcode.hh"

namespace vpprof
{

/** Per-instruction profiling counters and their derived ratios. */
struct PcProfile
{
    uint64_t executions = 0;  ///< dynamic occurrences (value producers)
    uint64_t attempts = 0;    ///< stride-predictor predictions attempted
    uint64_t correct = 0;     ///< correct stride-predictor predictions
    /** Correct predictions formed with a non-zero stride. */
    uint64_t correctNonZeroStride = 0;
    /** Correct predictions of the companion last-value predictor. */
    uint64_t lastValueCorrect = 0;
    /** Last-value predictions attempted. */
    uint64_t lastValueAttempts = 0;
    OpClass opClass = OpClass::IntAlu;

    /** Stride-predictor prediction accuracy in percent (0 if untried). */
    double
    accuracyPercent() const
    {
        return attempts == 0
            ? 0.0 : 100.0 * static_cast<double>(correct)
                        / static_cast<double>(attempts);
    }

    /** Last-value-predictor accuracy in percent. */
    double
    lastValueAccuracyPercent() const
    {
        return lastValueAttempts == 0
            ? 0.0 : 100.0 * static_cast<double>(lastValueCorrect)
                        / static_cast<double>(lastValueAttempts);
    }

    /**
     * Stride efficiency ratio in percent: the share of correct
     * predictions that used a non-zero stride (Subsection 2.5).
     * 0 when the instruction never predicted correctly.
     */
    double
    strideEfficiencyPercent() const
    {
        return correct == 0
            ? 0.0 : 100.0 * static_cast<double>(correctNonZeroStride)
                        / static_cast<double>(correct);
    }
};

/**
 * A profile image: the per-pc table produced by one (or several merged)
 * profiling runs of one program.
 */
class ProfileImage
{
  public:
    ProfileImage() = default;

    /** @param program Name of the profiled program. */
    explicit ProfileImage(std::string program)
        : program_(std::move(program))
    {
    }

    const std::string &programName() const { return program_; }

    /** Mutable per-pc record, created on first touch. */
    PcProfile &at(uint64_t pc) { return entries_[pc]; }

    /** Lookup; nullptr when the pc was never profiled. */
    const PcProfile *find(uint64_t pc) const;

    /** Number of distinct profiled instructions. */
    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Ordered iteration over (pc, profile) pairs. */
    const std::map<uint64_t, PcProfile> &entries() const
    {
        return entries_;
    }

    /**
     * Merge another image of the same program by summing counters
     * (multi-run profiling, Section 3.2: "the program can be run either
     * single or multiple times").
     */
    void merge(const ProfileImage &other);

    /** Serialize as the text profile-image file format. */
    void save(std::ostream &os) const;
    void saveFile(const std::string &path) const;

    /** Parse a text profile-image file; fatal on malformed input. */
    static ProfileImage load(std::istream &is);
    static ProfileImage loadFile(const std::string &path);

  private:
    std::string program_;
    std::map<uint64_t, PcProfile> entries_;
};

/**
 * The set of pcs profiled in every one of the given images — Section 4
 * keeps only instructions that appear in all runs when building its
 * metric vectors.
 */
std::vector<uint64_t> commonPcs(const std::vector<ProfileImage> &images);

} // namespace vpprof

#endif // VPPROF_PROFILE_PROFILE_IMAGE_HH
