/**
 * @file
 * vpprof_cli — command-line driver for the library.
 *
 *   vpprof_cli [flags] <command> [args]   (flags may appear anywhere)
 *
 *   vpprof_cli list
 *   vpprof_cli disasm   <workload>
 *   vpprof_cli run      <workload> [input]
 *   vpprof_cli trace    <workload> <input> <out.trace>
 *   vpprof_cli replay   <trace-file>
 *   vpprof_cli profile  <workload> <input> <out.profile>
 *   vpprof_cli annotate <workload> <profile-file> [threshold]
 *   vpprof_cli classify <workload> [threshold]
 *   vpprof_cli ilp      <workload> [window] [penalty]
 *   vpprof_cli critpath <workload> [input]
 *   vpprof_cli blocks   <workload> [threshold]
 *   vpprof_cli correlate <workload>
 *   vpprof_cli verify   --golden DIR [--results DIR]
 *
 * Commands that analyze workload traces share one Session: the VM runs
 * each (workload, input) at most once per invocation, and with
 * --trace-cache DIR the captured traces persist, so repeated
 * invocations replay from disk instead of re-interpreting.
 *
 * `profile` supports sampled profiling (--sample-rate / --sample-policy
 * / --sample-seed / --sample-burst / --sketch): the trace is replayed
 * through the sampled-profiling subsystem instead of the exact
 * collector. Bad sampling values are hard errors (exit 1), never a
 * silent fall-back to exact profiling.
 *
 * `verify` checks a bench run (RESULTS_*.json + BENCH_*.json in
 * --results, default '.') against the committed golden specs
 * (--golden DIR holding shape/ rule specs and perf/ baselines).
 * Exit 0 = every rule passed and no perf regression; exit 1 =
 * verification failed; structured fatals (exit 1) for setup errors.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/telemetry/telemetry.hh"
#include "daemon/client.hh"
#include "daemon/retry.hh"
#include "report/verify.hh"
#include "compiler/cfg.hh"
#include "core/evaluators.hh"
#include "core/experiment.hh"
#include "core/session.hh"
#include "ilp/critical_path.hh"
#include "predictors/profile_classifier.hh"
#include "predictors/saturating_classifier.hh"
#include "profile/correlation.hh"
#include "profile/sampling/sampling_policy.hh"
#include "vm/trace_io.hh"

using namespace vpprof;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: vpprof_cli [flags] <command> [args]\n"
                 "flags (accepted before or after the command):\n"
                 "  --jobs N          parallel sweep cells "
                 "(0 = all cores)\n"
                 "  --trace-cache DIR reuse captured traces across "
                 "invocations\n"
                 "  --stats           print trace-repository serving "
                 "+ recovery counters (stderr)\n"
                 "  --stats-json      print the same counters (plus "
                 "log warning\n"
                 "                    counters) as one JSON object "
                 "(stdout)\n"
                 "  --trace-json FILE write a Chrome trace_event "
                 "span timeline (Perfetto-loadable)\n"
                 "  --metrics-out FILE write a metrics snapshot "
                 "(counters/gauges/histograms) as JSON\n"
                 "verification (verify command only):\n"
                 "  --golden DIR      golden specs: shape/*.json rules "
                 "+ perf/BENCH_*.json baselines\n"
                 "  --results DIR     bench output to check "
                 "(default .)\n"
                 "  --require-all     skipped rules (bench not run) "
                 "become failures\n"
                 "  --no-perf         skip the BENCH_* perf gate\n"
                 "  --perf-wall-margin PCT    timing regression "
                 "margin (default 50)\n"
                 "  --perf-counter-margin PCT counter regression "
                 "margin (default 0)\n"
                 "daemon client (daemon-client command only):\n"
                 "  --socket PATH     vpprofd Unix-domain socket, or "
                 "host:port for\n"
                 "                    a daemon serving --listen\n"
                 "  --timeout-ms N    per-attempt round-trip bound "
                 "(default 120000)\n"
                 "  --retries N       attempts on retryable failures "
                 "(default 1 = no retry)\n"
                 "  --backoff-base-ms N  first backoff delay; doubles "
                 "per retry (default 50)\n"
                 "  --deadline-ms N   request deadline_ms AND the total "
                 "retry budget\n"
                 "  --prometheus      metrics: print the Prometheus "
                 "text exposition\n"
                 "  --events SPEC     subscribe: event classes "
                 "(lifecycle|spans|metrics|all)\n"
                 "  --event-sample-rate R  subscribe: deliver ~R of "
                 "lifecycle events (0,1]\n"
                 "  --journal-limit N journal: newest N events only "
                 "(0 = all retained)\n"
                 "  --trace-id N      pin the job's trace id instead "
                 "of minting one\n"
                 "  --max-events N    subscribe: exit 0 after N "
                 "event lines\n"
                 "  --duration-ms N   subscribe: exit 0 after N ms "
                 "of streaming\n"
                 "sampled profiling (profile command only):\n"
                 "  --sample-rate N   observe ~1 in N trace records "
                 "(default 1 = exact)\n"
                 "  --sample-policy P periodic | random | burst "
                 "(default periodic)\n"
                 "  --sample-seed S   PRNG seed for --sample-policy "
                 "random (default 1)\n"
                 "  --sample-burst W  records per burst window "
                 "(default 1024)\n"
                 "  --sketch N        bound collector memory to N hot "
                 "pcs + sketch\n"
                 "commands:\n"
                 "  list                                 workloads\n"
                 "  disasm   <workload>                  disassembly\n"
                 "  run      <workload> [input]          execute + "
                 "verify\n"
                 "  trace    <workload> <input> <file>   capture a "
                 "trace\n"
                 "  trace    --format-stats              per-workload "
                 "v2 vs v3 size/blocks\n"
                 "  replay   <file>                      trace stats\n"
                 "  profile  <workload> <input> <file>   profile "
                 "image (sampling flags apply)\n"
                 "  annotate <workload> <file> [thresh]  phase-3 "
                 "pass\n"
                 "  classify <workload> [thresh]         FSM vs "
                 "profile\n"
                 "  ilp      <workload> [window] [pen]   abstract "
                 "machine\n"
                 "  critpath <workload> [input]          critical "
                 "path\n"
                 "  correlate <workload>                 Section 4 "
                 "metrics\n"
                 "  blocks   <workload> [thresh]         basic-block "
                 "schedule\n"
                 "  verify   --golden DIR                golden shape "
                 "checks + perf gate\n"
                 "  daemon-client --socket PATH <cmd> [workload] "
                 "[input] [thresh]\n"
                 "           cmd: ping | profile | evaluate | verify | "
                 "stats | shutdown\n"
                 "                | cancel <target-id> | metrics | "
                 "journal | subscribe\n"
                 "                | cluster-stats (stats summed across "
                 "daemons sharing\n"
                 "                  the trace cache);\n"
                 "           prints the daemon's JSON response line on "
                 "stdout\n"
                 "           (subscribe then streams telemetry event "
                 "lines);\n"
                 "           exit 0 = daemon answered ok, 1 = daemon "
                 "error response,\n"
                 "           3 = transport failure (no daemon answer)\n");
    return 2;
}

const Workload *
findOrDie(const WorkloadSuite &suite, const char *name)
{
    const Workload *w = suite.find(name);
    if (!w)
        vpprof_fatal("unknown workload '", name,
                     "' (try: vpprof_cli list)");
    return w;
}

size_t
inputIndex(const Workload &w, const char *arg)
{
    size_t idx = arg ? static_cast<size_t>(std::atoi(arg)) : 0;
    if (idx >= w.numInputSets())
        vpprof_fatal("input index ", idx, " out of range (workload "
                     "has ", w.numInputSets(), " input sets)");
    return idx;
}

int
cmdList(const WorkloadSuite &suite)
{
    std::printf("%-10s %7s %9s %7s  %s\n", "name", "static",
                "producers", "inputs", "description");
    for (const auto &w : suite.all()) {
        std::printf("%-10s %7zu %9zu %7zu  %s\n",
                    std::string(w->name()).c_str(), w->program().size(),
                    w->program().countValueProducers(),
                    w->numInputSets(),
                    std::string(w->description()).c_str());
    }
    return 0;
}

int
cmdRun(const Workload &w, size_t input)
{
    Machine machine(w.program(), w.input(input));
    CountingTraceSink counts;
    RunResult result = machine.run(&counts, w.maxInstructions());
    int64_t checksum = machine.memory().load(kChecksumAddr);
    int64_t expected = w.referenceChecksum(input);
    std::printf("instructions : %llu\n",
                static_cast<unsigned long long>(
                    result.instructionsExecuted));
    std::printf("  producers  : %llu\n",
                static_cast<unsigned long long>(counts.producers()));
    std::printf("  loads      : %llu\n",
                static_cast<unsigned long long>(counts.loads()));
    std::printf("  stores     : %llu\n",
                static_cast<unsigned long long>(counts.stores()));
    std::printf("  branches   : %llu\n",
                static_cast<unsigned long long>(counts.branches()));
    std::printf("checksum     : %lld (%s)\n",
                static_cast<long long>(checksum),
                checksum == expected ? "matches reference"
                                     : "MISMATCH");
    return checksum == expected ? 0 : 1;
}

int
cmdTrace(Session &session, const Workload &w, size_t input,
         const char *path)
{
    TraceFileWriter writer(path);
    session.runTrace(w, input, &writer);
    // The user asked for this exact file: a failed commit (full disk,
    // unwritable directory) is a loud structured error, not a silent
    // success over a missing or torn file.
    TraceIoStatus st = writer.close();
    if (st != TraceIoStatus::Ok)
        vpprof_fatal("cannot write trace file (",
                     traceIoStatusName(st), "): ", path);
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(
                    writer.recordsWritten()),
                path);
    return 0;
}

/**
 * trace --format-stats: the on-disk economics of the trace-format
 * ladder, per workload. Each input-0 trace is captured through the
 * session (so --trace-cache reuse applies), encoded as v3, and
 * compared against the v2 size that capture would have produced
 * (v2 is fixed-width: 16-byte header + 39 bytes/record + 8-byte
 * trailer, so its size is exact without writing the file).
 */
int
cmdTraceFormatStats(Session &session, const WorkloadSuite &suite)
{
    namespace fs = std::filesystem;
    fs::path dir =
        fs::temp_directory_path() / "vpprof_format_stats";
    fs::create_directories(dir);

    std::printf("%-10s %12s %7s %12s %12s %7s\n", "workload",
                "records", "blocks", "v2 bytes", "v3 bytes", "v3/v2");
    uint64_t total_records = 0, total_blocks = 0;
    uint64_t total_v2 = 0, total_v3 = 0;
    for (const auto &w : suite.all()) {
        std::string name(w->name());
        std::string path = (dir / (name + ".in0.trace")).string();
        TraceFileWriter writer(path, TraceFormat::V3);
        session.runTrace(*w, 0, &writer);
        TraceIoStatus st = writer.close();
        if (st != TraceIoStatus::Ok)
            vpprof_fatal("cannot write format-stats scratch file (",
                         traceIoStatusName(st), "): ", path);

        uint64_t records = writer.recordsWritten();
        uint64_t v2_bytes = 16 + 39 * records + 8;
        std::error_code ec;
        uint64_t v3_bytes = fs::file_size(path, ec);
        if (ec)
            vpprof_fatal("cannot stat format-stats scratch file: ",
                         path);
        uint64_t blocks = 0;
        if (auto reader = TraceFileReader::tryOpen(
                path, &st, TraceVerify::HeaderOnly))
            blocks = reader->blockCount();

        total_records += records;
        total_blocks += blocks;
        total_v2 += v2_bytes;
        total_v3 += v3_bytes;
        std::printf("%-10s %12llu %7llu %12llu %12llu %6.2fx\n",
                    name.c_str(),
                    static_cast<unsigned long long>(records),
                    static_cast<unsigned long long>(blocks),
                    static_cast<unsigned long long>(v2_bytes),
                    static_cast<unsigned long long>(v3_bytes),
                    static_cast<double>(v3_bytes) /
                        static_cast<double>(v2_bytes));
    }
    std::printf("%-10s %12llu %7llu %12llu %12llu %6.2fx\n", "total",
                static_cast<unsigned long long>(total_records),
                static_cast<unsigned long long>(total_blocks),
                static_cast<unsigned long long>(total_v2),
                static_cast<unsigned long long>(total_v3),
                static_cast<double>(total_v3) /
                    static_cast<double>(total_v2));
    fs::remove_all(dir);
    return 0;
}

int
cmdReplay(const char *path)
{
    TraceFileReader reader(path);
    CountingTraceSink counts;
    uint64_t n = reader.replay(&counts);
    std::printf("replayed %llu records: %llu producers, %llu loads, "
                "%llu stores, %llu branches\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(counts.producers()),
                static_cast<unsigned long long>(counts.loads()),
                static_cast<unsigned long long>(counts.stores()),
                static_cast<unsigned long long>(counts.branches()));
    return 0;
}

int
cmdProfile(Session &session, const Workload &w, size_t input,
           const char *path, const SamplingConfig &sampling)
{
    const ProfileImage &image =
        session.collectSampledProfile(w, input, sampling);
    image.saveFile(path);
    if (sampling.isExact())
        std::printf("profiled %zu instructions -> %s\n", image.size(),
                    path);
    else
        std::printf("profiled %zu instructions (sampled %s) -> %s\n",
                    image.size(), sampling.cacheKey().c_str(), path);
    return 0;
}

int
cmdAnnotate(const Workload &w, const char *profile_path,
            const char *threshold_arg)
{
    ProfileImage image = ProfileImage::loadFile(profile_path);
    InserterConfig cfg;
    if (threshold_arg)
        cfg.accuracyThresholdPercent = std::atof(threshold_arg);
    Program program = w.program();
    InsertionStats stats = insertDirectives(program, image, cfg);
    std::printf("threshold %.0f%%: tagged %zu of %zu producers "
                "(%zu stride, %zu last-value)\n",
                cfg.accuracyThresholdPercent, stats.tagged(),
                stats.producers, stats.taggedStride,
                stats.taggedLastValue);
    std::printf("%s", program.disassemble().c_str());
    return 0;
}

int
cmdClassify(Session &session, const Workload &w,
            const char *threshold_arg)
{
    InserterConfig cfg;
    if (threshold_arg)
        cfg.accuracyThresholdPercent = std::atof(threshold_arg);
    Program annotated =
        session.annotatedProgram(w, trainingInputsFor(w, 0), cfg);

    SaturatingClassifier fsm;
    ClassificationAccuracy fsm_acc =
        session.evaluateClassification(w, 0, w.program(), fsm);
    ProfileClassifier prof;
    ClassificationAccuracy prof_acc =
        session.evaluateClassification(w, 0, annotated, prof);

    std::printf("%-32s %10s %12s\n", "", "FSM",
                "profile");
    std::printf("%-32s %9.1f%% %11.1f%%\n", "mispredictions caught",
                fsm_acc.mispredictionAccuracy(),
                prof_acc.mispredictionAccuracy());
    std::printf("%-32s %9.1f%% %11.1f%%\n", "corrects accepted",
                fsm_acc.correctAccuracy(), prof_acc.correctAccuracy());
    return 0;
}

int
cmdIlp(Session &session, const Workload &w, const char *window_arg,
       const char *pen_arg)
{
    IlpConfig mc;
    if (window_arg)
        mc.windowSize = static_cast<size_t>(std::atoi(window_arg));
    if (pen_arg)
        mc.mispredictPenalty =
            static_cast<unsigned>(std::atoi(pen_arg));

    InserterConfig cfg;
    Program annotated =
        session.annotatedProgram(w, trainingInputsFor(w, 0), cfg);

    IlpResult base = session.evaluateIlp(w, 0, w.program(), mc,
                                         VpPolicy::None,
                                         infiniteConfig());
    IlpResult fsm = session.evaluateIlp(w, 0, w.program(), mc,
                                        VpPolicy::Fsm,
                                        paperFiniteConfig(true));
    IlpResult prof = session.evaluateIlp(w, 0, annotated, mc,
                                         VpPolicy::Profile,
                                         paperFiniteConfig(false));
    std::printf("window=%zu penalty=%u\n", mc.windowSize,
                mc.mispredictPenalty);
    std::printf("  no VP        : %.3f\n", base.ilp());
    std::printf("  VP + FSM     : %.3f (%+.1f%%)\n", fsm.ilp(),
                100.0 * (fsm.ilp() / base.ilp() - 1.0));
    std::printf("  VP + profile : %.3f (%+.1f%%)\n", prof.ilp(),
                100.0 * (prof.ilp() / base.ilp() - 1.0));
    return 0;
}

int
cmdCritpath(Session &session, const Workload &w, size_t input)
{
    // Both analyzers consume one fused replay of the cached trace.
    CriticalPathConfig plain;
    CriticalPathAnalyzer base(plain);
    CriticalPathConfig collapsed;
    collapsed.collapseCorrectPredictions = true;
    CriticalPathAnalyzer vp(collapsed);
    session.replayInto(w, input, {&base, &vp});
    CriticalPathResult r1 = base.finish();
    CriticalPathResult r2 = vp.finish();

    std::printf("instructions        : %llu\n",
                static_cast<unsigned long long>(r1.instructions));
    std::printf("critical path       : %llu (dataflow ILP %.2f)\n",
                static_cast<unsigned long long>(r1.pathLength),
                r1.dataflowIlp());
    std::printf("with VP oracle      : %llu (dataflow ILP %.2f, "
                "%.1fx shorter)\n",
                static_cast<unsigned long long>(r2.pathLength),
                r2.dataflowIlp(),
                static_cast<double>(r1.pathLength) /
                    static_cast<double>(r2.pathLength));
    std::printf("hottest path pcs    :");
    for (size_t i = 0; i < r1.members.size() && i < 8; ++i) {
        std::printf(" %llu(x%llu)",
                    static_cast<unsigned long long>(r1.members[i].pc),
                    static_cast<unsigned long long>(
                        r1.members[i].occurrences));
    }
    std::printf("\n");
    return 0;
}

int
cmdBlocks(Session &session, const Workload &w,
          const char *threshold_arg)
{
    InserterConfig cfg;
    cfg.accuracyThresholdPercent =
        threshold_arg ? std::atof(threshold_arg) : 70.0;
    Program annotated =
        session.annotatedProgram(w, trainingInputsFor(w, 0), cfg);

    uint64_t plain = 0, collapsed = 0;
    size_t blocks = 0, tagged_blocks = 0;
    for (const BlockSchedule &s : analyzeSchedules(annotated)) {
        plain += s.chainLength;
        collapsed += s.collapsedChainLength;
        ++blocks;
        tagged_blocks += s.tagged > 0 ? 1 : 0;
    }
    std::printf("basic blocks          : %zu (%zu contain tagged "
                "instructions)\n",
                blocks, tagged_blocks);
    std::printf("aggregate chain length: %llu\n",
                static_cast<unsigned long long>(plain));
    std::printf("with VP-aware schedule: %llu (%.1f%% slack)\n",
                static_cast<unsigned long long>(collapsed),
                100.0 * (1.0 - static_cast<double>(collapsed) /
                                   static_cast<double>(plain)));
    return 0;
}

int
cmdCorrelate(Session &session, const Workload &w)
{
    std::vector<ProfileImage> images(w.numInputSets());
    session.runner().forEach(images.size(), [&](size_t i) {
        images[i] = session.collectProfile(w, i);
    });
    AlignedProfileVectors v = alignAccuracy(images);
    Histogram mmax = decileSpread(maxDistance(v));
    Histogram mavg = decileSpread(averageDistance(v));
    AlignedProfileVectors sv = alignStrideEfficiency(images);
    Histogram savg = decileSpread(averageDistance(sv));

    std::printf("%zu runs, %zu common instructions\n", v.numRuns(),
                v.dimension());
    auto low = [](const Histogram &h) {
        return 100.0 * (h.fraction(0) + h.fraction(1));
    };
    std::printf("M(V)max     low-interval mass: %5.1f%%\n", low(mmax));
    std::printf("M(V)average low-interval mass: %5.1f%%\n", low(mavg));
    std::printf("M(S)average low-interval mass: %5.1f%%\n", low(savg));
    return 0;
}

/**
 * --stats: the trace repository's serving + recovery counters, on
 * stderr so stdout stays machine-readable. The recovery counters
 * (quarantines, regenerations, spill failures, read retries) are how
 * an operator sees that a cache directory is sick even though every
 * run still succeeded.
 */
void
printRepoStats(Session &session)
{
    TraceRepoStats st = session.traces().stats();
    std::fprintf(stderr,
                 "[trace-repo] vm_runs=%llu disk_loads=%llu "
                 "replays=%llu unique_traces=%llu "
                 "resident_records=%llu spilled_traces=%llu\n"
                 "[trace-repo] corrupt_quarantined=%llu "
                 "regenerations=%llu spill_failures=%llu "
                 "read_retries=%llu\n"
                 "[trace-repo] v3_blocks_decoded=%llu "
                 "v3_bytes_mapped=%llu\n",
                 static_cast<unsigned long long>(st.vmRuns),
                 static_cast<unsigned long long>(st.diskLoads),
                 static_cast<unsigned long long>(st.replays),
                 static_cast<unsigned long long>(st.uniqueTraces),
                 static_cast<unsigned long long>(st.residentRecords),
                 static_cast<unsigned long long>(st.spilledTraces),
                 static_cast<unsigned long long>(st.corruptQuarantined),
                 static_cast<unsigned long long>(st.regenerations),
                 static_cast<unsigned long long>(st.spillFailures),
                 static_cast<unsigned long long>(st.readRetries),
                 static_cast<unsigned long long>(st.v3BlocksDecoded),
                 static_cast<unsigned long long>(st.v3BytesMapped));
}

/** Strict unsigned flag value: rejects garbage instead of atoi's 0. */
uint64_t
parseUintFlag(const char *flag, const char *value)
{
    if (!value || !*value)
        vpprof_fatal(flag, " requires an unsigned integer value");
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(value, &end, 10);
    if (*end != '\0' || value[0] == '-')
        vpprof_fatal(flag, ": '", value,
                     "' is not an unsigned integer");
    return static_cast<uint64_t>(parsed);
}

/** Strict non-negative percentage flag value. */
double
parsePctFlag(const char *flag, const char *value)
{
    if (!value || !*value)
        vpprof_fatal(flag, " requires a percentage value");
    char *end = nullptr;
    double parsed = std::strtod(value, &end);
    if (*end != '\0' || parsed < 0.0)
        vpprof_fatal(flag, ": '", value,
                     "' is not a non-negative percentage");
    return parsed;
}

/** Observability knobs for daemon-client (metrics/journal/subscribe). */
struct DaemonClientOptions
{
    std::string socketPath;
    int timeoutMs = 120'000;
    daemon::RetryPolicy retry;
    uint64_t deadlineMs = 0;
    bool prometheus = false;       ///< metrics: print the text format
    std::string events;            ///< subscribe: event-class filter
    double eventSampleRate = 1.0;  ///< subscribe: delivery fraction
    uint64_t journalLimit = 0;     ///< journal: newest-N bound
    uint64_t traceId = 0;          ///< client-chosen trace id; 0 = mint
    uint64_t maxEvents = 0;        ///< subscribe: stop after N lines
    uint64_t durationMs = 0;       ///< subscribe: stop after N ms
};

/**
 * subscribe: after the daemon acks the subscription, the connection
 * becomes a telemetry stream — print each event line verbatim until
 * --max-events / --duration-ms is reached (exit 0) or the daemon
 * closes the connection (clean EOF, also exit 0). Read timeouts keep
 * waiting: an idle daemon emits nothing, which is not a failure.
 */
int
streamSubscription(daemon::DaemonClient &client,
                   const DaemonClientOptions &opt)
{
    using Clock = std::chrono::steady_clock;
    Clock::time_point start = Clock::now();
    uint64_t printed = 0;
    for (;;) {
        if (opt.maxEvents > 0 && printed >= opt.maxEvents)
            return 0;
        int wait_ms = opt.timeoutMs;
        if (opt.durationMs > 0) {
            auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    Clock::now() - start)
                    .count();
            if (elapsed >= static_cast<int64_t>(opt.durationMs))
                return 0;
            wait_ms = static_cast<int>(
                std::min<int64_t>(wait_ms,
                                  static_cast<int64_t>(opt.durationMs) -
                                      elapsed));
        }
        std::optional<std::string> line = client.readLine(wait_ms);
        if (line) {
            std::printf("%s\n", line->c_str());
            std::fflush(stdout);
            ++printed;
            continue;
        }
        if (client.lastReason() == daemon::CallReason::Timeout)
            continue;  // idle stream: keep listening
        if (client.lastReason() == daemon::CallReason::Eof)
            return 0;  // daemon drained: a clean end of stream
        std::fprintf(stderr, "vpprof_cli: subscribe stream: %s\n",
                     client.lastError().c_str());
        return 3;
    }
}

/**
 * daemon-client: one protocol round trip against a running vpprofd
 * (with optional retry/backoff — see daemon/retry.hh for the matrix).
 * The daemon's response line goes to stdout verbatim (it is already
 * one strict-JSON document), so shell pipelines and the CI smoke can
 * parse it directly.
 *
 * Exit status distinguishes WHO failed: 0 = the daemon answered ok,
 * 1 = the daemon answered with an error response (its JSON line is
 * still printed), 3 = transport failure — connect refused, timeout,
 * disconnect — where no daemon answer exists (a structured error line
 * is synthesized so consumers always read valid JSON).
 */
int
cmdDaemonClient(const DaemonClientOptions &opt, int nrest, char **rest)
{
    if (opt.socketPath.empty())
        vpprof_fatal("daemon-client requires --socket PATH");
    if (nrest < 2)
        vpprof_fatal("daemon-client requires a command "
                     "(ping | profile | evaluate | verify | stats | "
                     "shutdown | cancel | metrics | journal | "
                     "subscribe | cluster-stats)");
    std::optional<daemon::Command> cmd = daemon::parseCommand(rest[1]);
    if (!cmd)
        vpprof_fatal("unknown daemon command '", rest[1], "'");

    daemon::Request req;
    req.id = 1;
    req.cmd = *cmd;
    req.deadlineMs = opt.deadlineMs;
    req.traceId = opt.traceId;
    if (*cmd == daemon::Command::Cancel) {
        if (nrest < 3)
            vpprof_fatal("daemon command 'cancel' requires the target "
                         "request id");
        req.cancelTarget = parseUintFlag("target", rest[2]);
    } else if (*cmd == daemon::Command::Metrics) {
        req.format = opt.prometheus ? "prometheus" : "json";
    } else if (*cmd == daemon::Command::Journal) {
        req.limit = opt.journalLimit;
    } else if (*cmd == daemon::Command::Subscribe) {
        req.subEvents = opt.events;
        req.sampleRate = opt.eventSampleRate;
    } else {
        req.workload = nrest > 2 ? rest[2] : "";
        if (daemon::commandIsJob(*cmd) && req.workload.empty())
            vpprof_fatal("daemon command '", rest[1],
                         "' requires a workload");
        req.input = nrest > 3
                        ? static_cast<size_t>(
                              parseUintFlag("input", rest[3]))
                        : 0;
        req.threshold = nrest > 4 ? std::atof(rest[4]) : 70.0;
    }

    daemon::DaemonClient client;
    std::string error;
    if (!client.connect(opt.socketPath, &error)) {
        // Connect refused/missing socket is a transport failure, not
        // a daemon verdict: synthesized JSON line + exit 3.
        std::fprintf(stderr, "vpprof_cli: daemon-client: %s\n",
                     error.c_str());
        std::printf("%s\n",
                    daemon::errorResponseLine(
                        1, daemon::ErrorCode::Internal,
                        "disconnected: " + error)
                        .c_str());
        return 3;
    }
    daemon::CallResult result =
        client.callWithRetry(req, opt.retry, opt.timeoutMs);
    if (result.raw.empty()) {
        // Transport failure: no response line to print; synthesize a
        // structured one so consumers always read valid JSON.
        std::printf("%s\n",
                    daemon::errorResponseLine(
                        1, daemon::ErrorCode::Internal,
                        result.code + ": " + result.error)
                        .c_str());
        return 3;
    }
    if (result.ok && *cmd == daemon::Command::Metrics &&
        opt.prometheus) {
        // --prometheus unwraps the exposition text: raw scrape-ready
        // output instead of a JSON envelope around it.
        const report::JsonValue *res = result.response.get("result");
        const report::JsonValue *text = res ? res->get("text") : nullptr;
        if (text && text->isString()) {
            std::fputs(text->asString().c_str(), stdout);
            return 0;
        }
        // Shape surprise (e.g. daemon older than this client): fall
        // through to the raw line so the caller sees what arrived.
    }
    std::printf("%s\n", result.raw.c_str());
    std::fflush(stdout);
    if (!result.ok)
        return 1;
    if (*cmd == daemon::Command::Subscribe) {
        bool subscribed = false;
        if (const report::JsonValue *res = result.response.get("result"))
            if (const report::JsonValue *s = res->get("subscribed"))
                subscribed = s->isBool() && s->asBool();
        if (!subscribed)
            return 0;  // degraded (telemetry off): ack printed, done
        return streamSubscription(client, opt);
    }
    return 0;
}

int
cmdVerify(const report::VerifyOptions &options)
{
    if (options.goldenDir.empty())
        vpprof_fatal("verify requires --golden DIR (the committed "
                     "golden/ directory)");
    report::VerifyReport rep = report::runVerify(options);
    std::printf("%s", report::renderVerifyReport(rep).c_str());
    return rep.ok() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    SessionConfig session_cfg;
    SamplingConfig sampling;
    bool policy_given = false, sampling_given = false;
    bool show_stats = false;
    bool show_stats_json = false;
    bool format_stats = false;
    DaemonClientOptions daemon_opts;
    daemon_opts.retry.maxAttempts = 1;  // no retry unless --retries asks
    std::string trace_json_path, metrics_out_path;
    report::VerifyOptions verify_opts;

    // Flags may appear before or after the command; positionals keep
    // their relative order. Bad flag values are structured fatal
    // errors (nonzero exit), never silently ignored.
    std::vector<char *> positional;
    for (int arg = 1; arg < argc; ++arg) {
        std::string flag = argv[arg];
        if (flag.rfind("--", 0) != 0) {
            positional.push_back(argv[arg]);
            continue;
        }
        const char *value = arg + 1 < argc ? argv[arg + 1] : nullptr;
        if (flag == "--jobs") {
            session_cfg.jobs = static_cast<unsigned>(
                parseUintFlag("--jobs", value));
        } else if (flag == "--trace-cache") {
            if (!value)
                vpprof_fatal("--trace-cache requires a directory");
            session_cfg.traceCacheDir = value;
        } else if (flag == "--stats") {
            show_stats = true;
            continue;  // boolean flag: no value to consume
        } else if (flag == "--stats-json") {
            show_stats_json = true;
            continue;  // boolean flag: no value to consume
        } else if (flag == "--socket") {
            if (!value)
                vpprof_fatal("--socket requires a path");
            daemon_opts.socketPath = value;
        } else if (flag == "--timeout-ms") {
            daemon_opts.timeoutMs = static_cast<int>(
                parseUintFlag("--timeout-ms", value));
        } else if (flag == "--retries") {
            daemon_opts.retry.maxAttempts = static_cast<size_t>(
                parseUintFlag("--retries", value));
            if (daemon_opts.retry.maxAttempts == 0)
                vpprof_fatal("--retries must be >= 1 (got 0)");
        } else if (flag == "--backoff-base-ms") {
            daemon_opts.retry.backoffBaseMs =
                parseUintFlag("--backoff-base-ms", value);
        } else if (flag == "--deadline-ms") {
            // One deadline, both ends: the request's deadline_ms (the
            // daemon refuses to serve it late) and the client's total
            // retry budget (no retry is planned past it).
            daemon_opts.deadlineMs =
                parseUintFlag("--deadline-ms", value);
            daemon_opts.retry.deadlineBudgetMs = daemon_opts.deadlineMs;
        } else if (flag == "--prometheus") {
            daemon_opts.prometheus = true;
            continue;  // boolean flag: no value to consume
        } else if (flag == "--events") {
            if (!value)
                vpprof_fatal("--events requires a class list "
                             "(lifecycle|spans|metrics|all)");
            daemon_opts.events = value;
        } else if (flag == "--event-sample-rate") {
            if (!value)
                vpprof_fatal("--event-sample-rate requires a value "
                             "in (0, 1]");
            char *end = nullptr;
            double parsed = std::strtod(value, &end);
            if (*end != '\0' || parsed <= 0.0 || parsed > 1.0)
                vpprof_fatal("--event-sample-rate: '", value,
                             "' is not a number in (0, 1]");
            daemon_opts.eventSampleRate = parsed;
        } else if (flag == "--journal-limit") {
            daemon_opts.journalLimit =
                parseUintFlag("--journal-limit", value);
        } else if (flag == "--trace-id") {
            // Pin the response's trace id instead of letting the
            // daemon mint one: responses become byte-comparable
            // across daemons (shard stripes mint different ids).
            daemon_opts.traceId =
                parseUintFlag("--trace-id", value);
        } else if (flag == "--max-events") {
            daemon_opts.maxEvents =
                parseUintFlag("--max-events", value);
        } else if (flag == "--duration-ms") {
            daemon_opts.durationMs =
                parseUintFlag("--duration-ms", value);
        } else if (flag == "--format-stats") {
            format_stats = true;
            continue;  // boolean flag: no value to consume
        } else if (flag == "--trace-json") {
            if (!value)
                vpprof_fatal("--trace-json requires a file path");
            trace_json_path = value;
        } else if (flag == "--metrics-out") {
            if (!value)
                vpprof_fatal("--metrics-out requires a file path");
            metrics_out_path = value;
        } else if (flag == "--golden") {
            if (!value)
                vpprof_fatal("--golden requires a directory");
            verify_opts.goldenDir = value;
        } else if (flag == "--results") {
            if (!value)
                vpprof_fatal("--results requires a directory");
            verify_opts.resultsDir = value;
        } else if (flag == "--require-all") {
            verify_opts.requireAll = true;
            continue;  // boolean flag: no value to consume
        } else if (flag == "--no-perf") {
            verify_opts.perfGate = false;
            continue;  // boolean flag: no value to consume
        } else if (flag == "--perf-wall-margin") {
            verify_opts.perf.wallMarginPct =
                parsePctFlag("--perf-wall-margin", value);
        } else if (flag == "--perf-counter-margin") {
            verify_opts.perf.counterMarginPct =
                parsePctFlag("--perf-counter-margin", value);
        } else if (flag == "--sample-rate") {
            sampling.rate = parseUintFlag("--sample-rate", value);
            if (sampling.rate == 0)
                vpprof_fatal("--sample-rate must be >= 1 (got 0)");
            sampling_given = true;
        } else if (flag == "--sample-policy") {
            if (!value)
                vpprof_fatal("--sample-policy requires a value "
                             "(periodic | random | burst)");
            auto parsed = parseSamplingPolicy(value);
            if (!parsed)
                vpprof_fatal("unknown sampling policy '", value,
                             "' (expected periodic, random or burst)");
            sampling.policy = *parsed;
            policy_given = true;
            sampling_given = true;
        } else if (flag == "--sample-seed") {
            sampling.seed = parseUintFlag("--sample-seed", value);
            sampling_given = true;
        } else if (flag == "--sample-burst") {
            sampling.burstLen = parseUintFlag("--sample-burst", value);
            if (sampling.burstLen == 0)
                vpprof_fatal("--sample-burst must be >= 1 (got 0)");
            sampling_given = true;
        } else if (flag == "--sketch") {
            sampling.sketchCapacity = static_cast<size_t>(
                parseUintFlag("--sketch", value));
            if (sampling.sketchCapacity == 0)
                vpprof_fatal("--sketch must be >= 1 (got 0)");
            sampling_given = true;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
            return usage();
        }
        ++arg;  // skip the consumed value
    }
    // --sample-rate N alone means periodic 1-in-N.
    if (sampling_given && !policy_given &&
        sampling.policy == SamplingPolicy::Exact)
        sampling.policy = SamplingPolicy::Periodic;
    if (auto complaint = sampling.validate())
        vpprof_fatal("invalid sampling flags: ", *complaint);

    // Env first, flags second: explicit flags override
    // VPPROF_TRACE_JSON / VPPROF_METRICS_OUT.
    telemetry::autoConfigureFromEnv();
    telemetry::configureOutputs(trace_json_path, metrics_out_path);

    if (positional.empty())
        return usage();
    std::string cmd = positional[0];
    // rest[1] = first command operand, mirroring the old argv layout.
    char **rest = positional.data();
    int nrest = static_cast<int>(positional.size());

    WorkloadSuite suite;
    Session session(session_cfg);

    // Dispatch through a lambda so --stats can report the session's
    // trace-repository counters after whichever command ran.
    auto dispatch = [&]() -> int {
        if (cmd == "list")
            return cmdList(suite);
        if (cmd == "verify")
            return cmdVerify(verify_opts);
        if (cmd == "daemon-client")
            return cmdDaemonClient(daemon_opts, nrest, rest);
        if (cmd == "trace" && format_stats)
            return cmdTraceFormatStats(session, suite);
        if (nrest < 2)
            return usage();

        if (cmd == "replay")
            return cmdReplay(rest[1]);

        const Workload *w = findOrDie(suite, rest[1]);
        if (cmd == "disasm") {
            std::printf("%s", w->program().disassemble().c_str());
            return 0;
        }
        if (cmd == "run")
            return cmdRun(*w,
                          inputIndex(*w,
                                     nrest > 2 ? rest[2] : nullptr));
        if (cmd == "trace" && nrest >= 4)
            return cmdTrace(session, *w, inputIndex(*w, rest[2]),
                            rest[3]);
        if (cmd == "profile" && nrest >= 4)
            return cmdProfile(session, *w, inputIndex(*w, rest[2]),
                              rest[3], sampling);
        if (cmd == "annotate" && nrest >= 3)
            return cmdAnnotate(*w, rest[2],
                               nrest > 3 ? rest[3] : nullptr);
        if (cmd == "classify")
            return cmdClassify(session, *w,
                               nrest > 2 ? rest[2] : nullptr);
        if (cmd == "ilp")
            return cmdIlp(session, *w, nrest > 2 ? rest[2] : nullptr,
                          nrest > 3 ? rest[3] : nullptr);
        if (cmd == "critpath")
            return cmdCritpath(
                session, *w,
                inputIndex(*w, nrest > 2 ? rest[2] : nullptr));
        if (cmd == "correlate")
            return cmdCorrelate(session, *w);
        if (cmd == "blocks")
            return cmdBlocks(session, *w,
                             nrest > 2 ? rest[2] : nullptr);
        return usage();
    };

    int rc = dispatch();
    if (show_stats)
        printRepoStats(session);
    // Machine-readable stats: the exact trace serializer the daemon's
    // `stats` command uses (its "trace" member), plus the same "log"
    // warning counters, so scripts parse one schema everywhere.
    if (show_stats_json)
        std::printf("{\"log\": {\"warnings_emitted\": %llu, "
                    "\"warnings_suppressed\": %llu}, \"trace\": %s}\n",
                    static_cast<unsigned long long>(warningsEmitted()),
                    static_cast<unsigned long long>(
                        warningsSuppressed()),
                    repoStatsJson(session.traces().stats()).c_str());
    return rc;
}
