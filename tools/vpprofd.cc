/**
 * @file
 * vpprofd — profiling-as-a-service daemon (DESIGN.md §13).
 *
 *   vpprofd --socket PATH [flags]
 *
 * Serves the vpprof wire protocol (newline-delimited JSON over a Unix
 * domain socket) until a graceful drain completes: SIGTERM/SIGINT or a
 * protocol `shutdown` command stops accepting work, finishes every
 * admitted job, flushes every client, writes the telemetry outputs and
 * exits 0. All long-lived state — the trace cache, memoized profiles,
 * the runner pool — is one shared Session, so N clients asking about
 * one workload cost one VM interpretation, not N.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "common/telemetry/telemetry.hh"
#include "core/session.hh"
#include "daemon/server.hh"

using namespace vpprof;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: vpprofd --socket PATH [flags]\n"
        "  --socket PATH        Unix-domain socket to serve (required)\n"
        "  --shards N           event-loop shards fed round-robin from "
        "the\n"
        "                       listener (default 1)\n"
        "  --listen HOST:PORT   additionally serve the protocol over "
        "TCP\n"
        "                       (port 0 picks a free one)\n"
        "  --port-file FILE     write the bound TCP port to FILE "
        "(atomic);\n"
        "                       pairs with --listen 127.0.0.1:0\n"
        "  --cluster-heartbeat-ms N  cadence of shared-cache stats\n"
        "                       heartbeats for `cluster-stats` "
        "(default 1000)\n"
        "  --cluster-stale-ms N ignore cluster members older than N ms\n"
        "                       (default 60000)\n"
        "  --jobs N             runner lanes (0 = all cores; default 2)\n"
        "  --trace-cache DIR    persistent trace cache shared with the "
        "CLI\n"
        "  --max-queue N        admitted-job bound; beyond it requests "
        "are\n"
        "                       rejected `overloaded` (default 64)\n"
        "  --max-inflight N     per-client in-flight job quota "
        "(default 8)\n"
        "  --idle-timeout-ms N  close idle connections after N ms "
        "(0 = never;\n"
        "                       default 30000)\n"
        "  --max-outbuf-bytes N per-client output backlog bound; a "
        "reader\n"
        "                       stalled past it is disconnected "
        "(default 4 MiB)\n"
        "  --watchdog-ms N      flag an executor batch running longer "
        "than\n"
        "                       N ms (0 = off; default 10000)\n"
        "  --retry-hint-ms N    base retry_after_ms hint on shedding "
        "rejections\n"
        "                       (default 25)\n"
        "  --journal-cap N      retained job lifecycle events for the\n"
        "                       `journal` command (0 = off; default "
        "256)\n"
        "  --subscriber-ring N  pending-event bound per subscriber; a\n"
        "                       slow subscriber sheds the oldest "
        "(default 256)\n"
        "  --slo SPEC           objectives, e.g. "
        "p99_ms=50,error_rate=0.01;\n"
        "                       burn counters surface in `stats`\n"
        "  --slo-window N       answered jobs in the SLO window "
        "(default 256)\n"
        "  --metrics-listen FILE  export the live metrics snapshot in\n"
        "                       Prometheus text format to FILE "
        "periodically\n"
        "  --metrics-listen-interval-ms N  export cadence "
        "(default 1000)\n"
        "  --trace-json FILE    Chrome trace_event span timeline\n"
        "  --metrics-out FILE   metrics snapshot JSON (written on "
        "drain)\n"
        "  --stats              print serving + trace counters on exit "
        "(stderr)\n");
    return 2;
}

uint64_t
parseUintFlag(const char *flag, const char *value)
{
    if (!value || !*value)
        vpprof_fatal(flag, " requires an unsigned integer value");
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(value, &end, 10);
    if (*end != '\0' || value[0] == '-')
        vpprof_fatal(flag, ": '", value,
                     "' is not an unsigned integer");
    return static_cast<uint64_t>(parsed);
}

/**
 * The one live server, for the signal handlers. A plain pointer set
 * before the handlers are installed and never cleared while they can
 * fire; requestShutdown() is async-signal-safe (one write()).
 */
std::atomic<daemon::DaemonServer *> g_server{nullptr};

void
onTerminate(int)
{
    if (daemon::DaemonServer *server =
            g_server.load(std::memory_order_relaxed))
        server->requestShutdown();
}

} // namespace

int
main(int argc, char **argv)
{
    daemon::DaemonConfig cfg;
    cfg.session.jobs = 2;
    std::string trace_json_path, metrics_out_path, port_file_path;
    bool show_stats = false;

    for (int arg = 1; arg < argc; ++arg) {
        std::string flag = argv[arg];
        const char *value = arg + 1 < argc ? argv[arg + 1] : nullptr;
        if (flag == "--socket") {
            if (!value)
                vpprof_fatal("--socket requires a path");
            cfg.socketPath = value;
        } else if (flag == "--shards") {
            cfg.shards = static_cast<size_t>(
                parseUintFlag("--shards", value));
            if (cfg.shards == 0)
                vpprof_fatal("--shards must be >= 1 (got 0)");
        } else if (flag == "--listen") {
            if (!value)
                vpprof_fatal("--listen requires host:port");
            cfg.listenAddress = value;
        } else if (flag == "--port-file") {
            if (!value)
                vpprof_fatal("--port-file requires a file path");
            port_file_path = value;
        } else if (flag == "--cluster-heartbeat-ms") {
            cfg.clusterHeartbeatMs = parseUintFlag(
                "--cluster-heartbeat-ms", value);
            if (cfg.clusterHeartbeatMs == 0)
                vpprof_fatal("--cluster-heartbeat-ms must be >= 1 "
                             "(got 0)");
        } else if (flag == "--cluster-stale-ms") {
            cfg.clusterStaleMs = parseUintFlag(
                "--cluster-stale-ms", value);
        } else if (flag == "--jobs") {
            cfg.session.jobs = static_cast<unsigned>(
                parseUintFlag("--jobs", value));
        } else if (flag == "--trace-cache") {
            if (!value)
                vpprof_fatal("--trace-cache requires a directory");
            cfg.session.traceCacheDir = value;
        } else if (flag == "--max-queue") {
            cfg.maxQueue = static_cast<size_t>(
                parseUintFlag("--max-queue", value));
            if (cfg.maxQueue == 0)
                vpprof_fatal("--max-queue must be >= 1 (got 0)");
        } else if (flag == "--max-inflight") {
            cfg.maxInflightPerClient = static_cast<size_t>(
                parseUintFlag("--max-inflight", value));
            if (cfg.maxInflightPerClient == 0)
                vpprof_fatal("--max-inflight must be >= 1 (got 0)");
        } else if (flag == "--idle-timeout-ms") {
            cfg.idleTimeoutMs =
                parseUintFlag("--idle-timeout-ms", value);
        } else if (flag == "--max-outbuf-bytes") {
            cfg.maxClientOutBufBytes = static_cast<size_t>(
                parseUintFlag("--max-outbuf-bytes", value));
            if (cfg.maxClientOutBufBytes == 0)
                vpprof_fatal("--max-outbuf-bytes must be >= 1 (got 0)");
        } else if (flag == "--watchdog-ms") {
            cfg.watchdogMs = parseUintFlag("--watchdog-ms", value);
        } else if (flag == "--retry-hint-ms") {
            cfg.retryHintMs = parseUintFlag("--retry-hint-ms", value);
        } else if (flag == "--journal-cap") {
            cfg.journalCap = static_cast<size_t>(
                parseUintFlag("--journal-cap", value));
        } else if (flag == "--subscriber-ring") {
            cfg.subscriberRingCap = static_cast<size_t>(
                parseUintFlag("--subscriber-ring", value));
            if (cfg.subscriberRingCap == 0)
                vpprof_fatal("--subscriber-ring must be >= 1 (got 0)");
        } else if (flag == "--slo") {
            if (!value)
                vpprof_fatal("--slo requires a spec "
                             "(p99_ms=...,error_rate=...)");
            std::string slo_error;
            auto slo = daemon::parseSloSpec(value, &slo_error);
            if (!slo)
                vpprof_fatal("--slo: ", slo_error);
            cfg.slo = *slo;
        } else if (flag == "--slo-window") {
            cfg.sloWindow = static_cast<size_t>(
                parseUintFlag("--slo-window", value));
            if (cfg.sloWindow == 0)
                vpprof_fatal("--slo-window must be >= 1 (got 0)");
        } else if (flag == "--metrics-listen") {
            if (!value)
                vpprof_fatal("--metrics-listen requires a file path");
            cfg.metricsListenPath = value;
        } else if (flag == "--metrics-listen-interval-ms") {
            cfg.metricsListenIntervalMs = parseUintFlag(
                "--metrics-listen-interval-ms", value);
            if (cfg.metricsListenIntervalMs == 0)
                vpprof_fatal("--metrics-listen-interval-ms must be "
                             ">= 1 (got 0)");
        } else if (flag == "--trace-json") {
            if (!value)
                vpprof_fatal("--trace-json requires a file path");
            trace_json_path = value;
        } else if (flag == "--metrics-out") {
            if (!value)
                vpprof_fatal("--metrics-out requires a file path");
            metrics_out_path = value;
        } else if (flag == "--stats") {
            show_stats = true;
            continue;  // boolean flag: no value to consume
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
            return usage();
        }
        ++arg;  // skip the consumed value
    }
    if (cfg.socketPath.empty())
        return usage();

    telemetry::autoConfigureFromEnv();
    telemetry::configureOutputs(trace_json_path, metrics_out_path);

    daemon::DaemonServer server(cfg);
    std::string error;
    if (!server.start(&error))
        vpprof_fatal("vpprofd: ", error);

    g_server.store(&server);
    struct sigaction sa{};
    sa.sa_handler = onTerminate;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    // The TCP port is only known after bind (--listen host:0): the
    // port file is how a harness discovers it race-free.
    if (!port_file_path.empty()) {
        if (!writeFileAtomically(port_file_path,
                                 std::to_string(server.tcpPort()) +
                                     "\n"))
            vpprof_fatal("vpprofd: cannot write --port-file ",
                         port_file_path);
    }

    vpprof_inform("vpprofd: serving on ", cfg.socketPath,
                  cfg.listenAddress.empty()
                      ? std::string()
                      : " + tcp port " + std::to_string(
                            server.tcpPort()),
                  " (", server.shardCount(), " shard",
                  server.shardCount() == 1 ? "" : "s", ", ",
                  cfg.session.jobs == 0 ? std::string("all-core")
                                        : std::to_string(
                                              cfg.session.jobs),
                  " lanes, queue ", cfg.maxQueue, ", quota ",
                  cfg.maxInflightPerClient, ")");
    int rc = server.run();

    if (show_stats) {
        daemon::DaemonStatsSnapshot st = server.statsSnapshot();
        std::ostringstream os;
        os << "{";
        st.writeJsonFields(os);
        os << "}";
        std::fprintf(stderr, "[daemon] %s\n", os.str().c_str());
        std::fprintf(
            stderr, "[trace-repo] %s\n",
            repoStatsJson(server.session().traces().stats()).c_str());
    }
    vpprof_inform("vpprofd: drained, exiting ", rc);
    return rc;
}
