/**
 * @file
 * vpprofd observability bench: the live telemetry plane must be
 * faithful AND free — gates on four contracts (DESIGN.md §14).
 *
 *  1. AGREEMENT phase — a daemon answers `stats` and then `metrics`
 *     (Prometheus text format) back to back. Every compared
 *     `daemon.*` counter must be bit-identical across the two views:
 *     the exposition is a projection of the same registry, never a
 *     second bookkeeping. This phase runs on the FIRST daemon the
 *     process creates, while the process-wide telemetry registry
 *     holds exactly that daemon's counters. The same daemon runs
 *     under an impossibly tight SLO (p99 0.0001 ms, error_rate 0) so
 *     its burn counters must fire: latency burns from any real job,
 *     error burns from deliberate unknown-workload failures.
 *
 *  2. SLO CONTROL phase — a second daemon under generous objectives
 *     (p99 10 minutes, error_rate 1.0) serves the same mix; its burn
 *     counters must stay zero. Together the two phases pin the burn
 *     logic from both sides.
 *
 *  3. OVERHEAD phase — interleaved rounds of an identical
 *     job-dominated steady mix with and without one lifecycle
 *     subscriber draining the event stream. Best-of-round wall times
 *     and per-slot-median p99s bound the streaming tax: <= 2% on
 *     requests/second and p99 (clamped at 0; gated by
 *     golden/shape/observability.json). A measurement that lands
 *     within noise of the gate is re-run on a fresh daemon — a real
 *     regression fails every attempt, a scheduler burst does not.
 *
 *  4. SHED phase — a subscriber that never reads against a tiny ring
 *     (8) and output bound (4 KiB), while a driver pushes jobs until
 *     the daemon's events_dropped counter moves. The gate is the
 *     backpressure contract: events shed EXPLICITLY (dropped > 0)
 *     with zero unanswered job requests — a slow listener costs
 *     events, never answers.
 *
 * Timing keys (wall_ms/p50/p99) of BENCH_observability.json ride the
 * perf gate's noise margin; every other key is deterministic by
 * construction. The nondeterministic cells (overhead percentages,
 * drop/burn counts) are bounded by golden/shape/observability.json.
 */

#include "bench_util.hh"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <optional>
#include <thread>

#include <unistd.h>

#include "daemon/client.hh"
#include "daemon/server.hh"
#include "report/json.hh"

using namespace vpprof;
using namespace vpprof::bench;
using namespace vpprof::daemon;

namespace
{

constexpr int kCallTimeoutMs = 120'000;
// One sequential client: per-slot latency is then pure service time
// (no cross-client queueing), so per-slot minima over rounds converge
// to a stable floor tight enough for a 2% overhead gate.
constexpr size_t kOverheadRounds = 8;
constexpr size_t kOverheadClients = 1;
constexpr size_t kOverheadRequestsPerClient = 16;

std::string
freshSocketPath()
{
    static int counter = 0;
    std::ostringstream os;
    os << "/tmp/vpd_obs_" << ::getpid() << "_" << counter++ << ".sock";
    return os.str();
}

/** One daemon instance with its event loop on a background thread. */
struct RunningDaemon
{
    std::unique_ptr<DaemonServer> server;
    std::thread loop;
    int rc = -1;

    explicit RunningDaemon(DaemonConfig cfg)
    {
        cfg.socketPath = freshSocketPath();
        server = std::make_unique<DaemonServer>(std::move(cfg));
        std::string error;
        if (!server->start(&error))
            vpprof_panic("daemon start failed: ", error);
        loop = std::thread([this] { rc = server->run(); });
    }

    DaemonClient
    client()
    {
        DaemonClient c;
        std::string error;
        if (!c.connect(server->config().socketPath, &error))
            vpprof_panic("daemon connect failed: ", error);
        return c;
    }

    int
    stop()
    {
        server->requestShutdown();
        loop.join();
        return rc;
    }
};

double
wallMsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration_cast<
               std::chrono::duration<double, std::milli>>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

double
percentile(std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    size_t idx = static_cast<size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

/** Parse one response line into a JSON document (panics on garbage). */
report::JsonValue
mustParse(const std::string &line, const char *what)
{
    std::string error;
    std::optional<report::JsonValue> doc =
        report::parseJson(line, &error);
    if (!doc)
        vpprof_panic(what, ": bad JSON line (", error, "): ", line);
    return std::move(*doc);
}

/** Call through the raw-request path (metrics/journal need fields the
 *  convenience call() overload does not carry). */
CallResult
rawCall(DaemonClient &client, const Request &req)
{
    return client.call(requestLine(req), req.id, kCallTimeoutMs);
}

/**
 * Extract `vpprof_daemon_<name>_total <value>` from a Prometheus text
 * exposition. Returns -1 when the series is missing (a mismatch the
 * caller counts — absence is not agreement).
 */
double
promCounter(const std::string &text, const std::string &name)
{
    std::string needle = "vpprof_daemon_" + name + "_total ";
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string_view line(text.data() + pos, eol - pos);
        if (line.rfind(needle, 0) == 0)
            return std::strtod(text.c_str() + pos + needle.size(),
                               nullptr);
        pos = eol + 1;
    }
    return -1.0;
}

/**
 * The deterministic overhead-phase request mix for slot i: the same
 * job-dominated steady mix the load bench gates, so the overhead
 * bound speaks about the daemon's steady-state serving path (where
 * per-event telemetry work amortizes against real job cost), not a
 * ping microbenchmark.
 */
CallResult
overheadCall(DaemonClient &client, uint64_t id, size_t slot)
{
    const char *even = "compress";
    const char *odd = "li";
    switch (slot % 8) {
      case 0:
        return client.call(id, Command::Ping, "", 0, 0, false,
                           kCallTimeoutMs);
      case 1:
        return client.call(id, Command::Stats, "", 0, 0, false,
                           kCallTimeoutMs);
      case 2:
        return client.call(id, Command::Profile, even, 0, 0, false,
                           kCallTimeoutMs);
      case 3:
        return client.call(id, Command::Profile, odd, 0, 0, false,
                           kCallTimeoutMs);
      case 4:
        return client.call(id, Command::Evaluate, even, 0, 70.0,
                           false, kCallTimeoutMs);
      case 5:
        return client.call(id, Command::Evaluate, odd, 0, 70.0, false,
                           kCallTimeoutMs);
      case 6:
        return client.call(id, Command::Verify, even, 0, 0, false,
                           kCallTimeoutMs);
      default:
        return client.call(id, Command::Verify, odd, 0, 0, false,
                           kCallTimeoutMs);
    }
}

struct RoundResult
{
    double wallMs = 0;
    uint64_t errors = 0;
    uint64_t unanswered = 0;
    /** Latency per deterministic slot index (client * perClient + i):
     *  the same slot runs the same request every round, so min-over-
     *  rounds per slot converges to that request's noise floor. */
    std::vector<double> latBySlot;
};

/** One measured round of the overhead mix (the same work both arms). */
RoundResult
runOverheadRound(RunningDaemon &daemon)
{
    RoundResult round;
    round.latBySlot.assign(
        kOverheadClients * kOverheadRequestsPerClient, 0.0);
    std::vector<uint64_t> errors(kOverheadClients, 0);
    std::vector<uint64_t> unanswered(kOverheadClients, 0);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (size_t c = 0; c < kOverheadClients; ++c) {
        threads.emplace_back([&, c] {
            DaemonClient client = daemon.client();
            for (size_t i = 0; i < kOverheadRequestsPerClient; ++i) {
                auto rt0 = std::chrono::steady_clock::now();
                CallResult r = overheadCall(client, i + 1, c + i);
                round.latBySlot[c * kOverheadRequestsPerClient + i] =
                    wallMsSince(rt0);
                if (r.code == "timeout" || r.code == "disconnected")
                    ++unanswered[c];
                else if (!r.ok)
                    ++errors[c];
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    round.wallMs = wallMsSince(t0);
    for (size_t c = 0; c < kOverheadClients; ++c) {
        round.errors += errors[c];
        round.unanswered += unanswered[c];
    }
    return round;
}

/**
 * Per-slot MEDIAN across an arm's rounds, then the percentile over
 * those medians. Comparing two arms this way measures the systematic
 * cost difference of identical work — scheduler noise (which makes a
 * raw cross-arm p99 comparison swing tens of percent) averages away
 * in the per-slot median, the telemetry tax does not.
 */
double
slotMedianPercentile(const std::vector<RoundResult> &rounds, double q)
{
    size_t slots = rounds.front().latBySlot.size();
    std::vector<double> medians(slots, 0.0);
    std::vector<double> samples(rounds.size());
    for (size_t s = 0; s < slots; ++s) {
        for (size_t r = 0; r < rounds.size(); ++r)
            samples[r] = rounds[r].latBySlot[s];
        std::sort(samples.begin(), samples.end());
        medians[s] = percentile(samples, 0.50);
    }
    std::sort(medians.begin(), medians.end());
    return percentile(medians, q);
}

/** A live lifecycle subscriber draining the stream on its own thread. */
struct DrainingSubscriber
{
    DaemonClient client;
    std::thread pump;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> received{0};

    explicit DrainingSubscriber(RunningDaemon &daemon)
        : client(daemon.client())
    {
        Request req;
        req.id = 1;
        req.cmd = Command::Subscribe;
        req.subEvents = "lifecycle";
        CallResult ack = rawCall(client, req);
        if (!ack.ok)
            vpprof_panic("subscribe failed: ", ack.error);
        pump = std::thread([this] {
            while (!stop.load(std::memory_order_relaxed)) {
                if (client.readLine(20))
                    received.fetch_add(1, std::memory_order_relaxed);
                else if (client.lastReason() != CallReason::Timeout)
                    return;  // daemon closed the stream
            }
        });
    }

    uint64_t
    finish()
    {
        stop.store(true, std::memory_order_relaxed);
        pump.join();
        client.close();
        return received.load(std::memory_order_relaxed);
    }
};

/** One complete overhead measurement (both arms, all rounds). */
struct OverheadMeasure
{
    double baseWall = 0, subWall = 0;
    double baseP50 = 0, baseP99 = 0, subP99 = 0;
    uint64_t errors = 0, unanswered = 0, received = 0;

    double
    rpsPct() const
    {
        return baseWall <= 0.0
                   ? 0.0
                   : std::max(0.0, 100.0 * (subWall - baseWall) /
                                       baseWall);
    }

    double
    p99Pct() const
    {
        return baseP99 <= 0.0
                   ? 0.0
                   : std::max(0.0,
                              100.0 * (subP99 - baseP99) / baseP99);
    }

    /** Suspiciously close to the 2% gate — worth remeasuring. */
    bool
    loud() const
    {
        return rpsPct() > 1.8 || p99Pct() > 1.8;
    }
};

/**
 * Run the whole overhead phase against a fresh daemon: an unmeasured
 * warm round per arm, then interleaved measured rounds with the order
 * inside each pair alternating so thermal/cache drift cancels. The
 * warm-up pass pins the serving path (memoized profiles) so both arms
 * time dispatch + telemetry, not first-touch VM work.
 */
OverheadMeasure
measureOverhead(const std::string &cache_dir)
{
    OverheadMeasure m;
    DaemonConfig cfg;
    cfg.session.jobs = 4;
    cfg.session.traceCacheDir = cache_dir;
    RunningDaemon daemon(cfg);
    {
        DaemonClient warm = daemon.client();
        uint64_t id = 1;
        for (const char *w : {"compress", "li"}) {
            for (Command cmd : {Command::Profile, Command::Evaluate,
                                Command::Verify}) {
                CallResult r = warm.call(id++, cmd, w, 0, 70.0, false,
                                         kCallTimeoutMs);
                if (!r.ok)
                    vpprof_panic("overhead warm-up ",
                                 commandName(cmd), " ", w,
                                 " failed: ", r.error);
            }
        }
    }
    std::printf("overhead: %zu interleaved rounds of %zu clients "
                "x %zu requests, with/without one lifecycle "
                "subscriber\n",
                kOverheadRounds, kOverheadClients,
                kOverheadRequestsPerClient);
    // One unmeasured round per arm first: first-touch costs (event
    // render buffers, ring allocation, page faults) land outside
    // the measurement.
    runOverheadRound(daemon);
    {
        DrainingSubscriber warm_sub(daemon);
        runOverheadRound(daemon);
        warm_sub.finish();
    }
    std::vector<RoundResult> base_rounds, sub_rounds;
    for (size_t r = 0; r < kOverheadRounds; ++r) {
        for (int arm = 0; arm < 2; ++arm) {
            bool with_subscriber = (r % 2 == 0) == (arm == 1);
            if (with_subscriber) {
                DrainingSubscriber sub(daemon);
                sub_rounds.push_back(runOverheadRound(daemon));
                m.received += sub.finish();
            } else {
                base_rounds.push_back(runOverheadRound(daemon));
            }
        }
    }
    auto best_wall = [](const std::vector<RoundResult> &rounds) {
        double best = rounds.front().wallMs;
        for (const RoundResult &r : rounds)
            best = std::min(best, r.wallMs);
        return best;
    };
    m.baseWall = best_wall(base_rounds);
    m.subWall = best_wall(sub_rounds);
    m.baseP50 = slotMedianPercentile(base_rounds, 0.50);
    m.baseP99 = slotMedianPercentile(base_rounds, 0.99);
    m.subP99 = slotMedianPercentile(sub_rounds, 0.99);
    for (const RoundResult &r : base_rounds) {
        m.errors += r.errors;
        m.unanswered += r.unanswered;
    }
    for (const RoundResult &r : sub_rounds) {
        m.errors += r.errors;
        m.unanswered += r.unanswered;
    }
    if (daemon.stop() != 0)
        vpprof_panic("overhead daemon did not drain cleanly");
    return m;
}

} // namespace

int
main()
{
    banner("vpprofd observability bench: exposition agreement, SLO "
           "burns, streaming overhead, shed drill",
           "beyond the paper -- the telemetry plane's acceptance "
           "gates");

    if (!telemetry::kEnabled) {
        // The whole plane degrades by design when telemetry is
        // compiled out; there is nothing to measure. Exit 0 WITHOUT
        // result files so `verify` reports the rules as skipped
        // rather than failed.
        std::printf("SKIP: built with VPPROF_TELEMETRY=OFF — the "
                    "observability plane is degraded by design\n");
        return 0;
    }

    const std::string cache_dir =
        std::filesystem::temp_directory_path().string() +
        "/vpprof_bench_observability";
    std::filesystem::remove_all(cache_dir);
    auto bench_t0 = std::chrono::steady_clock::now();

    // ---- Phase 1: exposition agreement + tight-SLO burns ---------
    // MUST be the first daemon in the process: the Prometheus view is
    // the process-wide registry, the `stats` view is this daemon's
    // own counters — they agree only while the registry holds exactly
    // one daemon's worth of `daemon.*` counts.
    uint64_t prom_mismatches = 0;
    uint64_t tight_latency_burns = 0, tight_error_burns = 0;
    {
        DaemonConfig cfg;
        cfg.session.jobs = 2;
        cfg.session.traceCacheDir = cache_dir;
        std::string slo_error;
        auto slo = parseSloSpec("p99_ms=0.0001,error_rate=0", &slo_error);
        if (!slo)
            vpprof_panic("tight SLO spec: ", slo_error);
        cfg.slo = *slo;
        cfg.sloWindow = 64;
        RunningDaemon tight(cfg);
        DaemonClient client = tight.client();

        std::printf("agreement: 12 jobs (2 deliberate failures) under "
                    "p99_ms=0.0001,error_rate=0\n");
        uint64_t id = 1;
        for (size_t i = 0; i < 10; ++i) {
            CallResult r = client.call(
                id++, i % 2 ? Command::Evaluate : Command::Profile,
                i % 2 ? "li" : "compress", 0, 70.0, false,
                kCallTimeoutMs);
            if (!r.ok)
                vpprof_panic("agreement warm job failed: ", r.error);
        }
        for (size_t i = 0; i < 2; ++i) {
            CallResult r =
                client.call(id++, Command::Profile, "no_such_workload",
                            0, 0, false, kCallTimeoutMs);
            if (r.ok)
                vpprof_panic("job on unknown workload answered ok");
        }

        Request stats_req;
        stats_req.id = id++;
        stats_req.cmd = Command::Stats;
        CallResult stats = rawCall(client, stats_req);
        if (!stats.ok)
            vpprof_panic("stats failed: ", stats.error);
        report::JsonValue stats_doc = mustParse(stats.raw, "stats");

        Request prom_req;
        prom_req.id = id++;
        prom_req.cmd = Command::Metrics;
        prom_req.format = "prometheus";
        CallResult prom = rawCall(client, prom_req);
        if (!prom.ok)
            vpprof_panic("metrics failed: ", prom.error);
        const report::JsonValue *prom_result =
            prom.response.get("result");
        const report::JsonValue *prom_text =
            prom_result ? prom_result->get("text") : nullptr;
        if (!prom_text || !prom_text->isString())
            vpprof_panic("metrics response carries no text member");
        const std::string &text = prom_text->asString();

        // Counters no intervening request can move: both views must
        // agree exactly. (`requests` itself moves — the stats call
        // counts — so it stays out of the comparison set.)
        const report::JsonValue *daemon_stats =
            stats_doc.get("result") ? stats_doc.get("result")->get(
                                          "daemon")
                                    : nullptr;
        if (!daemon_stats)
            vpprof_panic("stats response carries no daemon block");
        for (const char *key :
             {"jobs_admitted", "jobs_completed", "jobs_failed",
              "cancelled", "deadline_exceeded", "rejected_overloaded",
              "rejected_quota", "subscribes", "events_dropped"}) {
            double from_stats = daemon_stats->numberOr(key, -2.0);
            double from_prom = promCounter(text, key);
            if (from_stats != from_prom) {
                ++prom_mismatches;
                std::printf("MISMATCH %s: stats=%g prometheus=%g\n",
                            key, from_stats, from_prom);
            }
        }

        const report::JsonValue *slo_stats =
            stats_doc.get("result") ? stats_doc.get("result")->get(
                                          "slo")
                                    : nullptr;
        if (!slo_stats)
            vpprof_panic("stats response carries no slo block");
        tight_latency_burns = static_cast<uint64_t>(
            slo_stats->numberOr("latency_burns", 0));
        tight_error_burns = static_cast<uint64_t>(
            slo_stats->numberOr("error_burns", 0));
        // The tracker's burns are mirrored into registry counters for
        // scraping — the projection must agree with the source.
        if (promCounter(text, "slo_latency_burns") !=
            static_cast<double>(tight_latency_burns)) {
            ++prom_mismatches;
            std::printf("MISMATCH slo_latency_burns: stats=%llu "
                        "prometheus=%g\n",
                        static_cast<unsigned long long>(
                            tight_latency_burns),
                        promCounter(text, "slo_latency_burns"));
        }
        if (promCounter(text, "slo_error_burns") !=
            static_cast<double>(tight_error_burns)) {
            ++prom_mismatches;
            std::printf("MISMATCH slo_error_burns: stats=%llu "
                        "prometheus=%g\n",
                        static_cast<unsigned long long>(
                            tight_error_burns),
                        promCounter(text, "slo_error_burns"));
        }
        std::printf("agreement: %llu compared counters mismatched, "
                    "tight SLO burns latency=%llu error=%llu\n\n",
                    static_cast<unsigned long long>(prom_mismatches),
                    static_cast<unsigned long long>(
                        tight_latency_burns),
                    static_cast<unsigned long long>(tight_error_burns));
        client.close();
        if (tight.stop() != 0)
            vpprof_panic("agreement daemon did not drain cleanly");
    }

    // ---- Phase 2: generous SLO control ---------------------------
    uint64_t generous_burns = 0;
    {
        DaemonConfig cfg;
        cfg.session.jobs = 2;
        cfg.session.traceCacheDir = cache_dir;
        std::string slo_error;
        auto slo =
            parseSloSpec("p99_ms=600000,error_rate=1", &slo_error);
        if (!slo)
            vpprof_panic("generous SLO spec: ", slo_error);
        cfg.slo = *slo;
        cfg.sloWindow = 64;
        RunningDaemon generous(cfg);
        DaemonClient client = generous.client();
        std::printf("slo-control: 10 jobs under p99_ms=600000,"
                    "error_rate=1\n");
        for (size_t i = 0; i < 10; ++i) {
            CallResult r = client.call(
                i + 1, Command::Profile, i % 2 ? "li" : "compress", 0,
                0, false, kCallTimeoutMs);
            if (!r.ok)
                vpprof_panic("slo-control job failed: ", r.error);
        }
        Request stats_req;
        stats_req.id = 100;
        stats_req.cmd = Command::Stats;
        CallResult stats = rawCall(client, stats_req);
        if (!stats.ok)
            vpprof_panic("slo-control stats failed: ", stats.error);
        report::JsonValue doc = mustParse(stats.raw, "slo-control");
        const report::JsonValue *slo_stats =
            doc.get("result") ? doc.get("result")->get("slo") : nullptr;
        if (!slo_stats)
            vpprof_panic("slo-control stats carries no slo block");
        generous_burns = static_cast<uint64_t>(
            slo_stats->numberOr("latency_burns", 0) +
            slo_stats->numberOr("error_burns", 0));
        std::printf("slo-control: burns=%llu (gate: 0)\n\n",
                    static_cast<unsigned long long>(generous_burns));
        client.close();
        if (generous.stop() != 0)
            vpprof_panic("slo-control daemon did not drain cleanly");
    }

    // ---- Phase 3: streaming overhead -----------------------------
    OverheadMeasure overhead = measureOverhead(cache_dir);
    uint64_t steady_errors = overhead.errors;
    uint64_t steady_unanswered = overhead.unanswered;
    uint64_t stream_received = overhead.received;
    // The estimator (per-slot medians over interleaved rounds) is
    // tight but not immune to a loud co-tenant burst landing on one
    // arm. A loud measurement gets remeasured on a fresh daemon — a
    // real telemetry regression fails every attempt, a scheduler
    // artifact does not survive one.
    for (int attempt = 2; attempt <= 3 && overhead.loud(); ++attempt) {
        std::printf("overhead: rps %.2f%% p99 %.2f%% is above the "
                    "quiet threshold — remeasuring (attempt %d/3)\n\n",
                    overhead.rpsPct(), overhead.p99Pct(), attempt);
        OverheadMeasure again = measureOverhead(cache_dir);
        steady_errors += again.errors;
        steady_unanswered += again.unanswered;
        stream_received += again.received;
        if (std::max(again.rpsPct(), again.p99Pct()) <
            std::max(overhead.rpsPct(), overhead.p99Pct()))
            overhead = again;
    }
    double base_best_wall = overhead.baseWall;
    double base_best_p50 = overhead.baseP50;
    double base_best_p99 = overhead.baseP99;
    double sub_best_wall = overhead.subWall;
    double sub_best_p99 = overhead.subP99;
    double rps_overhead_pct = overhead.rpsPct();
    double p99_overhead_pct = overhead.p99Pct();
    std::printf("overhead: base wall %.1f ms p99 %.3f ms | subscribed "
                "wall %.1f ms p99 %.3f ms | overhead rps %.2f%% p99 "
                "%.2f%% | %llu events streamed\n\n",
                base_best_wall, base_best_p99, sub_best_wall,
                sub_best_p99, rps_overhead_pct, p99_overhead_pct,
                static_cast<unsigned long long>(stream_received));

    // ---- Phase 4: slow-subscriber shed drill ---------------------
    uint64_t shed_dropped = 0, shed_unanswered = 0, shed_jobs = 0;
    {
        DaemonConfig cfg;
        cfg.session.jobs = 2;
        cfg.session.traceCacheDir = cache_dir;
        cfg.subscriberRingCap = 8;
        cfg.maxClientOutBufBytes = 4096;
        cfg.idleTimeoutMs = 0;  // the stalled subscriber must survive
        RunningDaemon daemon(cfg);

        DaemonClient stalled = daemon.client();
        Request sub_req;
        sub_req.id = 1;
        sub_req.cmd = Command::Subscribe;
        sub_req.subEvents = "lifecycle";
        CallResult ack = rawCall(stalled, sub_req);
        if (!ack.ok)
            vpprof_panic("shed subscribe failed: ", ack.error);
        // From here on the subscriber never reads: its ring (8) plus
        // its bounded output backlog (4 KiB) plus the kernel socket
        // buffer must fill, then the daemon must shed.

        std::printf("shed: pushing jobs past a never-reading "
                    "subscriber (ring 8, outbuf 4 KiB)\n");
        DaemonClient driver = daemon.client();
        uint64_t id = 1;
        while (shed_dropped == 0 && shed_jobs < 4096) {
            for (size_t i = 0; i < 64; ++i, ++shed_jobs) {
                CallResult r = driver.call(
                    id++, Command::Profile,
                    shed_jobs % 2 ? "li" : "compress", 0, 0, false,
                    kCallTimeoutMs);
                if (r.code == "timeout" || r.code == "disconnected")
                    ++shed_unanswered;
                else if (!r.ok)
                    vpprof_panic("shed job failed: ", r.error);
            }
            shed_dropped = daemon.server->statsSnapshot().eventsDropped;
        }
        std::printf("shed: %llu jobs -> %llu events dropped, %llu "
                    "unanswered (gate: dropped > 0, unanswered = 0)"
                    "\n\n",
                    static_cast<unsigned long long>(shed_jobs),
                    static_cast<unsigned long long>(shed_dropped),
                    static_cast<unsigned long long>(shed_unanswered));
        driver.close();
        stalled.close();
        if (daemon.stop() != 0)
            vpprof_panic("shed daemon did not drain cleanly");
    }

    double wall_ms = wallMsSince(bench_t0);
    std::filesystem::remove_all(cache_dir);

    // ---- Report + gates ------------------------------------------
    emitResult("observability", "overhead/rps_pct", rps_overhead_pct,
               std::nullopt, "%");
    emitResult("observability", "overhead/p99_pct", p99_overhead_pct,
               std::nullopt, "%");
    emitResult("observability", "steady/errors",
               static_cast<double>(steady_errors));
    emitResult("observability", "steady/unanswered",
               static_cast<double>(steady_unanswered));
    emitResult("observability", "stream/events_received",
               static_cast<double>(stream_received));
    emitResult("observability", "shed/events_dropped",
               static_cast<double>(shed_dropped));
    emitResult("observability", "shed/unanswered",
               static_cast<double>(shed_unanswered));
    emitResult("observability", "prom/mismatches",
               static_cast<double>(prom_mismatches));
    emitResult("observability", "slo/tight_latency_burns",
               static_cast<double>(tight_latency_burns));
    emitResult("observability", "slo/tight_error_burns",
               static_cast<double>(tight_error_burns));
    emitResult("observability", "slo/generous_burns",
               static_cast<double>(generous_burns));
    flushResults("bench_daemon_observability");

    // Timing-class keys (wall_ms/p50/p99) get the perf gate's noise
    // margin; every other key here is deterministic by construction
    // (the variable cells — overheads, drop counts, burn counts —
    // live in RESULTS rows under shape rules instead).
    const uint64_t steady_requests = 2 * kOverheadRounds *
                                     kOverheadClients *
                                     kOverheadRequestsPerClient;
    std::ofstream json("BENCH_observability.json", std::ios::trunc);
    json << "{\n"
         << "  \"bench_daemon_observability\": {\n"
         << "    \"wall_ms\": " << wall_ms << ",\n"
         << "    \"p50\": " << base_best_p50 << ",\n"
         << "    \"p99\": " << base_best_p99 << ",\n"
         << "    \"steady_requests\": " << steady_requests << ",\n"
         << "    \"steady_errors\": " << steady_errors << ",\n"
         << "    \"steady_unanswered\": " << steady_unanswered << ",\n"
         << "    \"shed_unanswered\": " << shed_unanswered << ",\n"
         << "    \"prom_mismatches\": " << prom_mismatches << "\n"
         << "  }\n"
         << "}\n";
    json.close();
    std::printf("-> BENCH_observability.json\n");

    bool ok = true;
    if (prom_mismatches > 0) {
        std::printf("FAIL: %llu Prometheus/stats counter mismatches "
                    "(gate: 0)\n",
                    static_cast<unsigned long long>(prom_mismatches));
        ok = false;
    }
    if (tight_latency_burns == 0 || tight_error_burns == 0) {
        std::printf("FAIL: tight SLO did not burn (latency=%llu "
                    "error=%llu; gate: both > 0)\n",
                    static_cast<unsigned long long>(
                        tight_latency_burns),
                    static_cast<unsigned long long>(tight_error_burns));
        ok = false;
    }
    if (generous_burns > 0) {
        std::printf("FAIL: generous SLO burned %llu times (gate: 0)\n",
                    static_cast<unsigned long long>(generous_burns));
        ok = false;
    }
    if (steady_errors > 0 || steady_unanswered > 0) {
        std::printf("FAIL: overhead phase had %llu errors, %llu "
                    "unanswered (gate: 0/0)\n",
                    static_cast<unsigned long long>(steady_errors),
                    static_cast<unsigned long long>(steady_unanswered));
        ok = false;
    }
    if (stream_received == 0) {
        std::printf("FAIL: the draining subscriber saw no events\n");
        ok = false;
    }
    if (shed_dropped == 0 || shed_unanswered > 0) {
        std::printf("FAIL: shed drill dropped %llu events with %llu "
                    "unanswered (gate: > 0 dropped, 0 unanswered)\n",
                    static_cast<unsigned long long>(shed_dropped),
                    static_cast<unsigned long long>(shed_unanswered));
        ok = false;
    }
    std::printf("%s: overhead rps %.2f%% p99 %.2f%%, shed %llu "
                "dropped/%llu jobs, prom mismatches %llu\n",
                ok ? "PASS" : "FAIL", rps_overhead_pct,
                p99_overhead_pct,
                static_cast<unsigned long long>(shed_dropped),
                static_cast<unsigned long long>(shed_jobs),
                static_cast<unsigned long long>(prom_mismatches));
    return ok ? 0 : 1;
}
