/**
 * @file
 * Figure 4.3 — the spread of the coordinates of M(S)average: the
 * average-distance metric applied to *stride efficiency ratio*
 * vectors, showing that which instructions stride is also
 * input-independent (so the compiler can steer the hybrid predictor).
 */

#include "bench_util.hh"

#include "common/text_table.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Figure 4.3 - the spread of M(S)average over n=5 runs",
           "Gabbay & Mendelson, MICRO-30 1997, Figure 4.3");

    Histogram overall = makeDecileHistogram();
    for (const auto &w : suite().all()) {
        std::vector<ProfileImage> images;
        for (size_t i = 0; i < w->numInputSets(); ++i)
            images.push_back(cachedProfile(std::string(w->name()), i));
        AlignedProfileVectors v = alignStrideEfficiency(images);
        Histogram h = decileSpread(averageDistance(v));
        overall.merge(h);
        std::printf("%s\n",
                    renderHistogram(h, std::string(w->name()) +
                                           ": M(S)average deciles")
                        .c_str());
    }

    std::printf("%s\n",
                renderHistogram(overall, "suite overall").c_str());
    std::printf("low-interval mass ([0,10] + (10,20]): %s\n",
                formatPercent(overall.fraction(0) + overall.fraction(1))
                    .c_str());
    std::printf("\npaper: the set of stride-patterned instructions is "
                "independent of the\nprogram's inputs, so profiling "
                "detects it reliably.\n");
    emitResult("fig_4_3", "suite/low_interval_mass_pct",
               100.0 * (overall.fraction(0) + overall.fraction(1)),
               std::nullopt, "%");
    finishBench("bench_fig_4_3");
    return 0;
}
