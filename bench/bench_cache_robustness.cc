/**
 * @file
 * Cost of trace-cache integrity (beyond the paper): what do the v2
 * checksum trailer and the atomic temp-file commit add to the cold
 * capture-and-persist path and to the warm replay-from-disk path?
 *
 * Method: capture li.in0 into a cache directory with a zero resident
 * budget, so every replay streams the file through trace_io. Warm
 * replays are timed twice — against the fresh v2 file (payload
 * checksum verified on every open) and against the same bytes
 * rewritten as a v1 file (no trailer, checksum skipped) — so the
 * difference is exactly the integrity machinery, end to end through
 * the Session. The write side times re-persisting the same records
 * through TraceFileWriter and reports the pure-FNV share of it.
 *
 * Results land in BENCH_robustness.json. Target: warm-replay
 * integrity overhead under 3% (reported as PASS/WARN, not a crash —
 * perf gates on shared CI hardware are advisory).
 */

#include "bench_util.hh"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/checksum.hh"
#include "vm/trace_io.hh"

using namespace vpprof;
using namespace vpprof::bench;

namespace
{

constexpr int kWarmReplays = 7;

template <typename Fn>
double
wallMsOf(Fn &&fn)
{
    using namespace std::chrono;
    auto t0 = steady_clock::now();
    fn();
    return duration_cast<duration<double, std::milli>>(
               steady_clock::now() - t0)
        .count();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

} // namespace

int
main()
{
    banner("Trace-cache robustness: integrity machinery overhead",
           "beyond the paper -- cost of checksums + atomic commits");

    // This bench measures the v2 record-stream integrity machinery
    // (per-file checksum vs the v1 no-integrity baseline), so pin the
    // capture format: an unpinned session would commit v3 files.
    ::setenv("VPPROF_TRACE_FORMAT", "2", 1);

    const Workload &w = *suite().find("li");
    const std::string wname(w.name());
    std::string dir =
        std::filesystem::temp_directory_path().string() +
        "/vpprof_bench_robustness";
    std::filesystem::remove_all(dir);

    SessionConfig cfg;
    cfg.traceCacheDir = dir;
    cfg.residentRecordBudget = 0;  // every replay streams from disk

    // --- Cold path: interpret + checksum + atomic commit. ----------
    double cold_ms = 0.0;
    {
        Session capture(cfg);
        CountingTraceSink counts;
        cold_ms = wallMsOf([&] { capture.runTrace(w, 0, &counts); });
    }
    const std::string tracePath = dir + "/" + wname + ".in0.trace";
    std::string v2bytes = readFile(tracePath);
    if (v2bytes.size() < 24 || v2bytes[7] != '2')
        vpprof_panic("capture did not commit a v2 trace file: ",
                     tracePath);
    const uint64_t records = (v2bytes.size() - 24) / 39;

    // --- Warm replays: v2 (checksummed) vs the same bytes as a v1
    // file (the no-integrity baseline), in two separate cache dirs.
    // The timed replays interleave so page-cache / writeback drift
    // from the 57 MiB capture hits both sides equally.
    const std::string dirV1 = dir + "-v1";
    std::filesystem::create_directories(dirV1);
    std::string v1bytes = v2bytes.substr(0, v2bytes.size() - 8);
    v1bytes[7] = '1';
    writeFile(dirV1 + "/" + wname + ".in0.trace", v1bytes);
    // Rewrite the v2 file through the same bulk path: both sides then
    // share on-disk layout, so the comparison isolates the format
    // (the capture-streamed original measures ~10% slower to read on
    // ext4 purely from its extent layout, regardless of version).
    writeFile(tracePath, v2bytes);
    SessionConfig cfgV1 = cfg;
    cfgV1.traceCacheDir = dirV1;

    double v2_replay_ms = 0.0, v1_replay_ms = 0.0;
    {
        Session v2(cfg), v1(cfgV1);
        {
            // Untimed warm-up: adoption (incl. the one-time full
            // checksum verification) and the first page-cache fill.
            CountingTraceSink a, b;
            v2.runTrace(w, 0, &a);
            v1.runTrace(w, 0, &b);
        }
        for (int i = 0; i < kWarmReplays; ++i) {
            CountingTraceSink a, b;
            double t2 =
                wallMsOf([&] { v2.runTrace(w, 0, &a); });
            double t1 =
                wallMsOf([&] { v1.runTrace(w, 0, &b); });
            if (i == 0 || t2 < v2_replay_ms)
                v2_replay_ms = t2;
            if (i == 0 || t1 < v1_replay_ms)
                v1_replay_ms = t1;
        }
    }
    std::filesystem::remove_all(dirV1);

    double replay_overhead_pct =
        v1_replay_ms <= 0.0
            ? 0.0
            : 100.0 * (v2_replay_ms - v1_replay_ms) / v1_replay_ms;

    // --- Write side: full persist vs the pure checksum share. ------
    std::vector<TraceRecord> recs;
    {
        TraceIoStatus st = TraceIoStatus::Ok;
        auto reader = TraceFileReader::tryOpen(tracePath, &st);
        if (!reader)
            vpprof_panic("cannot re-open the bench trace: ",
                         traceIoStatusName(st));
        TraceRecord rec;
        while (reader->next(rec))
            recs.push_back(rec);
    }
    const std::string scratch = tracePath + ".scratch";
    double persist_ms = wallMsOf([&] {
        TraceFileWriter writer(scratch);
        for (const TraceRecord &rec : recs)
            writer.record(rec);
        if (writer.close() != TraceIoStatus::Ok)
            vpprof_panic("scratch persist failed");
    });
    double checksum_ms = wallMsOf([&] {
        uint64_t sum =
            fnv1a64(v2bytes.data() + 16, v2bytes.size() - 24);
        if (sum == 0)  // keep the work observable
            std::printf("(unlikely zero checksum)\n");
    });
    double write_share_pct =
        persist_ms <= 0.0 ? 0.0 : 100.0 * checksum_ms / persist_ms;

    std::printf("trace: %s.in0, %llu records (%.1f MiB on disk)\n\n",
                wname.c_str(),
                static_cast<unsigned long long>(records),
                static_cast<double>(v2bytes.size()) / (1024 * 1024));
    std::printf("cold capture + persist      %10.2f ms\n", cold_ms);
    std::printf("warm replay, v2 (checksum)  %10.2f ms\n",
                v2_replay_ms);
    std::printf("warm replay, v1 (baseline)  %10.2f ms\n",
                v1_replay_ms);
    std::printf("replay integrity overhead   %+10.2f %%  (target < 3)\n",
                replay_overhead_pct);
    std::printf("persist via TraceFileWriter %10.2f ms\n", persist_ms);
    std::printf("  pure FNV-1a over payload  %10.2f ms (%.1f%% of "
                "persist)\n",
                checksum_ms, write_share_pct);
    std::printf("\n%s: replay overhead %.2f%% vs 3%% target\n",
                replay_overhead_pct < 3.0 ? "PASS" : "WARN",
                replay_overhead_pct);

    std::ofstream json("BENCH_robustness.json", std::ios::trunc);
    json << "{\n"
         << "  \"workload\": \"" << wname << "\",\n"
         << "  \"records\": " << records << ",\n"
         << "  \"file_bytes\": " << v2bytes.size() << ",\n"
         << "  \"cold_capture_ms\": " << cold_ms << ",\n"
         << "  \"warm_replay_v2_ms\": " << v2_replay_ms << ",\n"
         << "  \"warm_replay_v1_ms\": " << v1_replay_ms << ",\n"
         << "  \"replay_overhead_pct\": " << replay_overhead_pct
         << ",\n"
         << "  \"persist_ms\": " << persist_ms << ",\n"
         << "  \"checksum_ms\": " << checksum_ms << ",\n"
         << "  \"write_checksum_share_pct\": " << write_share_pct
         << ",\n"
         << "  \"target_pct\": 3.0\n"
         << "}\n";

    // Shape-checkable rows: overheads are machine-load-sensitive, so
    // the golden rules bound them loosely rather than pinning values.
    emitResult("cache_robustness", "replay_overhead_pct",
               replay_overhead_pct, std::nullopt, "%");
    emitResult("cache_robustness", "write_checksum_share_pct",
               write_share_pct, std::nullopt, "%");
    flushResults("bench_cache_robustness");

    std::filesystem::remove_all(dir);
    std::printf("-> BENCH_robustness.json\n");
    return 0;
}
