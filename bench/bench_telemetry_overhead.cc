/**
 * @file
 * Cost of the always-on telemetry layer (beyond the paper): what do
 * the registry counters and unarmed spans add to the warm replay path,
 * and what does arming the span tracer (--trace-json) cost on top?
 *
 * Method: capture li.in0 once into an in-memory session, then time
 * warm replays three ways — with telemetry in its default state
 * (spans unarmed, counters live), with the span tracer armed, and as
 * an analytic bound (measured per-op costs times the ops a replay
 * executes). The per-op micro loops also report the raw price of an
 * unarmed span, a ScopedCounter add and a histogram observe, so the
 * "<1% on warm replay" budget in DESIGN.md §10 stays an audited
 * number rather than a promise.
 *
 * Results land in BENCH_telemetry.json. Target: armed-tracing
 * overhead on warm replay under 1% (reported as PASS/WARN, not a
 * crash — perf gates on shared CI hardware are advisory).
 */

#include "bench_util.hh"

namespace
{

using namespace vpprof;
using namespace vpprof::bench;

constexpr int kWarmReplays = 9;
constexpr uint64_t kMicroIters = 1 << 22;

template <typename Fn>
double
wallMsOf(Fn &&fn)
{
    using namespace std::chrono;
    auto t0 = steady_clock::now();
    fn();
    return duration_cast<duration<double, std::milli>>(
               steady_clock::now() - t0)
        .count();
}

/** Best-of-k warm replay time through the shared session. */
double
minWarmReplayMs(Session &s, const Workload &w)
{
    double best = 0.0;
    for (int i = 0; i < kWarmReplays; ++i) {
        CountingTraceSink counts;
        double t = wallMsOf([&] { s.runTrace(w, 0, &counts); });
        if (i == 0 || t < best)
            best = t;
    }
    return best;
}

} // namespace

int
main()
{
    banner("Telemetry overhead: counters + spans on the warm replay "
           "path",
           "beyond the paper -- observability must not distort the "
           "measurements");

    const Workload &w = *suite().find("li");
    Session s(SessionConfig{});

    // Cold capture (untimed warm-up: the trace-once VM run).
    {
        CountingTraceSink counts;
        s.runTrace(w, 0, &counts);
    }

    // Warm replays, default state: spans unarmed, counters live.
    telemetry::SpanTracer::instance().disable();
    double unarmed_ms = minWarmReplayMs(s, w);

    // Warm replays with the span tracer armed (no file yet: recording
    // cost only, the atexit write happens once at process end).
    telemetry::SpanTracer::instance().enable();
    double armed_ms = minWarmReplayMs(s, w);
    telemetry::SpanTracer::instance().disable();

    double armed_overhead_pct =
        unarmed_ms <= 0.0
            ? 0.0
            : 100.0 * (armed_ms - unarmed_ms) / unarmed_ms;

    // Per-op micro costs (ns), measured on this machine and build.
    double span_ms = wallMsOf([&] {
        for (uint64_t i = 0; i < kMicroIters; ++i)
            telemetry::Span span("micro.span");
    });
    telemetry::ScopedCounter counter("micro.counter");
    double counter_ms = wallMsOf([&] {
        for (uint64_t i = 0; i < kMicroIters; ++i)
            counter.add(1);
    });
    telemetry::HistogramMetric hist("micro.hist.us");
    double hist_ms = wallMsOf([&] {
        for (uint64_t i = 0; i < kMicroIters; ++i)
            hist.observe(i & 0xffff);
    });
    auto per_op_ns = [](double ms) {
        return 1e6 * ms / static_cast<double>(kMicroIters);
    };

    // Analytic bound: a warm in-memory replay executes one timed span
    // (trace.replay = span + histogram observe + two clock reads) and
    // one ScopedCounter add. Price that against the replay itself.
    double per_replay_ns = per_op_ns(span_ms) + per_op_ns(hist_ms) +
                           per_op_ns(counter_ms);
    double analytic_pct = unarmed_ms <= 0.0
                              ? 0.0
                              : 100.0 * (per_replay_ns / 1e6) /
                                    unarmed_ms;

    std::printf("warm replay, spans unarmed  %10.3f ms\n", unarmed_ms);
    std::printf("warm replay, tracer armed   %10.3f ms\n", armed_ms);
    std::printf("armed overhead              %+10.2f %%  (target < 1)\n",
                armed_overhead_pct);
    std::printf("unarmed span                %10.1f ns/op\n",
                per_op_ns(span_ms));
    std::printf("scoped counter add          %10.1f ns/op\n",
                per_op_ns(counter_ms));
    std::printf("histogram observe           %10.1f ns/op\n",
                per_op_ns(hist_ms));
    std::printf("analytic per-replay cost    %10.1f ns (%.4f%% of a "
                "replay)\n",
                per_replay_ns, analytic_pct);
    std::printf("\n%s: armed overhead %.2f%% vs 1%% target\n",
                armed_overhead_pct < 1.0 ? "PASS" : "WARN",
                armed_overhead_pct);

    std::ostringstream json;
    json << "{\n"
         << "  \"workload\": \"li\",\n"
         << "  \"warm_replay_unarmed_ms\": " << unarmed_ms << ",\n"
         << "  \"warm_replay_armed_ms\": " << armed_ms << ",\n"
         << "  \"armed_overhead_pct\": " << armed_overhead_pct << ",\n"
         << "  \"span_unarmed_ns\": " << per_op_ns(span_ms) << ",\n"
         << "  \"counter_add_ns\": " << per_op_ns(counter_ms) << ",\n"
         << "  \"histogram_observe_ns\": " << per_op_ns(hist_ms)
         << ",\n"
         << "  \"analytic_per_replay_pct\": " << analytic_pct << ",\n"
         << "  \"target_pct\": 1.0\n"
         << "}\n";
    if (!writeFileAtomically("BENCH_telemetry.json", json.str()))
        vpprof_warn("cannot write BENCH_telemetry.json");
    std::printf("-> BENCH_telemetry.json\n");

    // Loose shape rows only: these are timings on shared hardware.
    emitResult("telemetry_overhead", "armed_overhead_pct",
               armed_overhead_pct, std::nullopt, "%");
    emitResult("telemetry_overhead", "analytic_per_replay_pct",
               analytic_pct, std::nullopt, "%");
    flushResults("bench_telemetry_overhead");
    return 0;
}
