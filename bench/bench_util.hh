/**
 * @file
 * Shared helpers for the reproduction benches: the bench-wide Session
 * (trace-once VM execution, cached profiles, optional parallel sweep
 * cells), aggregate accuracy math, and output conventions.
 *
 * Every bench prints the paper's reported numbers (where the text
 * gives them) next to our measured values. Absolute agreement is not
 * expected — the workloads are synthetic stand-ins — but the *shape*
 * (who wins, orderings, trends across thresholds) should match.
 *
 * Environment knobs (read once, at first session() use):
 *  - VPPROF_JOBS: sweep-cell parallelism (0 = all cores; default 1).
 *  - VPPROF_TRACE_CACHE: directory of persistent trace files reused
 *    across bench processes (captured on first use).
 *
 * finishBench(name) closes a bench: it asserts the trace-once
 * invariant (no (workload, input) pair was interpreted more than
 * once), and records wall time plus session counters into
 * BENCH_session.json in the working directory.
 */

#ifndef VPPROF_BENCH_BENCH_UTIL_HH
#define VPPROF_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/atomic_file.hh"
#include "common/telemetry/telemetry.hh"
#include "core/batch_replay.hh"
#include "core/evaluators.hh"
#include "core/experiment.hh"
#include "core/session.hh"
#include "profile/correlation.hh"
#include "report/result_row.hh"

namespace vpprof
{
namespace bench
{

/** The profiling thresholds the paper sweeps in Section 5. */
inline const std::vector<double> kThresholds = {90, 80, 70, 60, 50};

/** Lazily-built, shared workload suite. */
inline const WorkloadSuite &
suite()
{
    static WorkloadSuite s;
    return s;
}

inline SessionConfig
sessionConfigFromEnv()
{
    SessionConfig cfg;
    cfg.jobs = 1;
    if (const char *jobs = std::getenv("VPPROF_JOBS"))
        cfg.jobs = static_cast<unsigned>(std::strtoul(jobs, nullptr, 10));
    if (const char *dir = std::getenv("VPPROF_TRACE_CACHE"))
        cfg.traceCacheDir = dir;
    return cfg;
}

/** The bench-wide Session: every VM pass in a bench goes through it. */
inline Session &
session()
{
    static Session s(sessionConfigFromEnv());
    return s;
}

/** Cached per-(workload, input) profile image. */
inline const ProfileImage &
cachedProfile(const std::string &name, size_t input)
{
    return session().collectProfile(*suite().find(name), input);
}

/** Merged profile over the training inputs for evaluation input 0. */
inline ProfileImage
trainingProfile(const std::string &name)
{
    const Workload *w = suite().find(name);
    return session().collectMergedProfile(*w, trainingInputsFor(*w, 0));
}

/** Annotated copy of a workload program at a threshold (trains on
 *  inputs 1..n-1; the merged training profile is memoized in the
 *  session, so threshold sweeps re-annotate without re-profiling). */
inline Program
annotatedAt(const std::string &name, double threshold_pct)
{
    const Workload *w = suite().find(name);
    InserterConfig cfg;
    cfg.accuracyThresholdPercent = threshold_pct;
    return session().annotatedProgram(*w, trainingInputsFor(*w, 0), cfg);
}

/** Aggregate dynamic accuracy (percent) over an image, one OpClass. */
struct ClassAccuracy
{
    uint64_t attempts = 0;
    uint64_t strideCorrect = 0;
    uint64_t lastValueCorrect = 0;

    double
    stridePct() const
    {
        return attempts == 0
            ? 0.0 : 100.0 * static_cast<double>(strideCorrect)
                        / static_cast<double>(attempts);
    }

    double
    lastValuePct() const
    {
        return attempts == 0
            ? 0.0 : 100.0 * static_cast<double>(lastValueCorrect)
                        / static_cast<double>(attempts);
    }
};

inline ClassAccuracy
accuracyOfClass(const ProfileImage &image, OpClass cls)
{
    ClassAccuracy acc;
    for (const auto &[pc, p] : image.entries()) {
        if (p.opClass != cls)
            continue;
        acc.attempts += p.attempts;
        acc.strideCorrect += p.correct;
        acc.lastValueCorrect += p.lastValueCorrect;
    }
    return acc;
}

/**
 * The bench's structured result rows (RESULTS_<bench>.json payload).
 * Emit from the main thread only — benches aggregate their sweep
 * cells before printing, and emission belongs next to the printing.
 */
inline std::vector<report::ResultRow> &
resultRows()
{
    static std::vector<report::ResultRow> rows;
    return rows;
}

/**
 * Record one result cell: the measured value for (experiment, cell),
 * with the paper's reported number attached where the text gives one.
 * finishBench() writes all emitted rows to RESULTS_<bench>.json, the
 * input of `vpprof_cli verify`'s golden shape checks.
 */
inline void
emitResult(std::string experiment, std::string cell, double measured,
           std::optional<double> paper = std::nullopt,
           std::string unit = "")
{
    report::ResultRow row;
    row.experiment = std::move(experiment);
    row.cell = std::move(cell);
    row.measured = measured;
    row.paper = paper;
    row.unit = std::move(unit);
    resultRows().push_back(std::move(row));
}

/**
 * Write the emitted rows to RESULTS_<bench>.json. Called by
 * finishBench(); benches that bypass the shared session (and so skip
 * finishBench's trace-once assertion) call it directly.
 */
inline void
flushResults(const char *bench_name)
{
    if (resultRows().empty())
        return;
    report::ResultsFile results;
    results.bench = bench_name;
    results.rows = resultRows();
    const std::string results_path =
        report::resultsFileNameFor(bench_name);
    if (!writeFileAtomically(results_path,
                             report::writeResultsJson(results)))
        vpprof_warn("cannot write ", results_path);
    else
        std::printf("\n[results] %zu rows -> %s\n",
                    results.rows.size(), results_path.c_str());
}

inline std::chrono::steady_clock::time_point &
benchStartTime()
{
    static std::chrono::steady_clock::time_point t =
        std::chrono::steady_clock::now();
    return t;
}

/** Banner printed at the top of every bench; starts the wall clock. */
inline void
banner(const char *title, const char *paper_ref)
{
    // Benches honor the same telemetry env knobs as the CLI
    // (VPPROF_TRACE_JSON / VPPROF_METRICS_OUT).
    telemetry::autoConfigureFromEnv();
    benchStartTime() = std::chrono::steady_clock::now();
    std::printf("==============================================="
                "=============\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("==============================================="
                "=============\n\n");
}

/**
 * Close a bench: assert the trace-once invariant, print the session
 * counters, and merge this bench's wall time into BENCH_session.json
 * (one self-produced entry per line, so concurrent benches of the
 * suite runner can each rewrite their own line).
 */
inline void
finishBench(const char *bench_name)
{
    using namespace std::chrono;
    double wall_ms = duration_cast<duration<double, std::milli>>(
                         steady_clock::now() - benchStartTime())
                         .count();

    TraceRepoStats st = session().traces().stats();
    if (st.vmRuns > st.uniqueTraces)
        vpprof_panic("trace-once violated in ", bench_name, ": ",
                     st.vmRuns, " VM runs for ", st.uniqueTraces,
                     " unique (workload, input) traces");

    std::ostringstream entry;
    entry << "  \"" << bench_name << "\": {\"wall_ms\": " << wall_ms
          << ", \"jobs\": " << session().runner().jobs() << ", ";
    st.writeJsonFields(entry);
    entry << ", \"metrics\": ";
    telemetry::snapshotMetrics().writeJson(entry);
    entry << "}";

    const std::string path = "BENCH_session.json";
    const std::string key = std::string("  \"") + bench_name + "\":";
    std::vector<std::string> entries;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line == "{" || line == "}")
                continue;
            if (line.size() >= 2 && line.substr(line.size() - 1) == ",")
                line.pop_back();
            if (line.rfind(key, 0) == 0)
                continue;  // replaced below
            entries.push_back(line);
        }
    }
    entries.push_back(entry.str());

    // Commit via temp file + rename: a bench killed mid-write (or two
    // racing benches) never leaves a torn BENCH_session.json behind.
    std::ostringstream out;
    out << "{\n";
    for (size_t i = 0; i < entries.size(); ++i)
        out << entries[i] << (i + 1 < entries.size() ? "," : "") << "\n";
    out << "}\n";
    if (!writeFileAtomically(path, out.str()))
        vpprof_warn("cannot write ", path);

    // Structured per-cell results for `vpprof_cli verify`.
    flushResults(bench_name);

    std::printf("\n[session] jobs=%u vm_runs=%llu disk_loads=%llu "
                "replays=%llu wall=%.1fms -> %s\n",
                session().runner().jobs(),
                static_cast<unsigned long long>(st.vmRuns),
                static_cast<unsigned long long>(st.diskLoads),
                static_cast<unsigned long long>(st.replays), wall_ms,
                path.c_str());
}

} // namespace bench
} // namespace vpprof

#endif // VPPROF_BENCH_BENCH_UTIL_HH
