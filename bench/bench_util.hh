/**
 * @file
 * Shared helpers for the reproduction benches: cached profile
 * collection (several benches profile the same runs), aggregate
 * accuracy math, and output conventions.
 *
 * Every bench prints the paper's reported numbers (where the text
 * gives them) next to our measured values. Absolute agreement is not
 * expected — the workloads are synthetic stand-ins — but the *shape*
 * (who wins, orderings, trends across thresholds) should match.
 */

#ifndef VPPROF_BENCH_BENCH_UTIL_HH
#define VPPROF_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "profile/correlation.hh"

namespace vpprof
{
namespace bench
{

/** The profiling thresholds the paper sweeps in Section 5. */
inline const std::vector<double> kThresholds = {90, 80, 70, 60, 50};

/** Lazily-built, shared workload suite. */
inline const WorkloadSuite &
suite()
{
    static WorkloadSuite s;
    return s;
}

/** Cached per-(workload, input) profile image. */
inline const ProfileImage &
cachedProfile(const std::string &name, size_t input)
{
    static std::map<std::pair<std::string, size_t>, ProfileImage> cache;
    auto key = std::make_pair(name, input);
    auto it = cache.find(key);
    if (it == cache.end()) {
        const Workload *w = suite().find(name);
        it = cache.emplace(key, collectProfile(*w, input)).first;
    }
    return it->second;
}

/** Merged profile over the training inputs for evaluation input 0. */
inline ProfileImage
trainingProfile(const std::string &name)
{
    const Workload *w = suite().find(name);
    ProfileImage merged(name);
    for (size_t idx : trainingInputsFor(*w, 0))
        merged.merge(cachedProfile(name, idx));
    return merged;
}

/** Annotated copy of a workload program at a threshold (trains on
 *  inputs 1..n-1, reusing the cached profiles). */
inline Program
annotatedAt(const std::string &name, double threshold_pct)
{
    const Workload *w = suite().find(name);
    Program program = w->program();
    InserterConfig cfg;
    cfg.accuracyThresholdPercent = threshold_pct;
    insertDirectives(program, trainingProfile(name), cfg);
    return program;
}

/** Aggregate dynamic accuracy (percent) over an image, one OpClass. */
struct ClassAccuracy
{
    uint64_t attempts = 0;
    uint64_t strideCorrect = 0;
    uint64_t lastValueCorrect = 0;

    double
    stridePct() const
    {
        return attempts == 0
            ? 0.0 : 100.0 * static_cast<double>(strideCorrect)
                        / static_cast<double>(attempts);
    }

    double
    lastValuePct() const
    {
        return attempts == 0
            ? 0.0 : 100.0 * static_cast<double>(lastValueCorrect)
                        / static_cast<double>(attempts);
    }
};

inline ClassAccuracy
accuracyOfClass(const ProfileImage &image, OpClass cls)
{
    ClassAccuracy acc;
    for (const auto &[pc, p] : image.entries()) {
        if (p.opClass != cls)
            continue;
        acc.attempts += p.attempts;
        acc.strideCorrect += p.correct;
        acc.lastValueCorrect += p.lastValueCorrect;
    }
    return acc;
}

/** Banner printed at the top of every bench. */
inline void
banner(const char *title, const char *paper_ref)
{
    std::printf("==============================================="
                "=============\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("==============================================="
                "=============\n\n");
}

} // namespace bench
} // namespace vpprof

#endif // VPPROF_BENCH_BENCH_UTIL_HH
