/**
 * @file
 * Table 5.1 — the fraction of potential allocation candidates admitted
 * by the profile-guided scheme relative to those the saturating-
 * counter scheme allocates (which is every value-producing
 * instruction), per threshold, averaged over the benchmarks.
 */

#include "bench_util.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Table 5.1 - allocation candidates, profiling vs saturating "
           "counters",
           "Gabbay & Mendelson, MICRO-30 1997, Table 5.1");

    std::printf("%-10s", "benchmark");
    for (double t : kThresholds)
        std::printf(" %6.0f%%", t);
    std::printf("\n");

    std::vector<double> sums(kThresholds.size(), 0.0);
    for (const auto &w : suite().all()) {
        std::string name(w->name());
        MemoryImage input = w->input(0);

        FiniteTableStats fsm = evaluateFiniteTable(
            w->program(), input, VpPolicy::Fsm, paperFiniteConfig(true));

        std::printf("%-10s", name.c_str());
        for (size_t t = 0; t < kThresholds.size(); ++t) {
            Program annotated = annotatedAt(name, kThresholds[t]);
            FiniteTableStats prof = evaluateFiniteTable(
                annotated, input, VpPolicy::Profile,
                paperFiniteConfig(false));
            double frac = 100.0 * static_cast<double>(prof.candidates) /
                          static_cast<double>(fsm.candidates);
            sums[t] += frac;
            std::printf(" %6.1f%%", frac);
        }
        std::printf("\n");
    }

    std::printf("%-10s", "average");
    size_t n = suite().all().size();
    for (size_t t = 0; t < kThresholds.size(); ++t)
        std::printf(" %6.1f%%", sums[t] / static_cast<double>(n));
    std::printf("\n");

    std::printf("\npaper (average row): 24%% / 32%% / 35%% / 39%% / "
                "47%% for thresholds 90..50.\nexpected shape: "
                "monotonically increasing with a looser threshold, and\n"
                "clearly below 100%% everywhere (profiling filters the "
                "candidate stream).\n");
    return 0;
}
