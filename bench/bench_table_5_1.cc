/**
 * @file
 * Table 5.1 — the fraction of potential allocation candidates admitted
 * by the profile-guided scheme relative to those the saturating-
 * counter scheme allocates (which is every value-producing
 * instruction), per threshold, averaged over the benchmarks.
 */

#include "bench_util.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Table 5.1 - allocation candidates, profiling vs saturating "
           "counters",
           "Gabbay & Mendelson, MICRO-30 1997, Table 5.1");

    std::printf("%-10s", "benchmark");
    for (double t : kThresholds)
        std::printf(" %6.0f%%", t);
    std::printf("\n");

    const auto &workloads = suite().all();
    std::vector<std::vector<double>> fracs(workloads.size());

    // One cell per workload; the FSM candidate count and every
    // threshold's candidate count come from one fused replay.
    session().runner().forEach(workloads.size(), [&](size_t i) {
        const Workload &w = *workloads[i];
        std::string name(w.name());

        Program base = w.program();
        std::vector<Program> annotated;
        for (double threshold : kThresholds)
            annotated.push_back(annotatedAt(name, threshold));

        FiniteTableEvaluator fsm_eval(VpPolicy::Fsm,
                                      paperFiniteConfig(true));

        std::vector<FiniteTableEvaluator> prof_evals;
        prof_evals.reserve(kThresholds.size());
        EvaluatorBank bank;
        bank.addBlockSink(&fsm_eval, &base);
        for (size_t t = 0; t < kThresholds.size(); ++t) {
            prof_evals.emplace_back(VpPolicy::Profile,
                                    paperFiniteConfig(false));
            bank.addBlockSink(&prof_evals[t], &annotated[t]);
        }
        session().replayInto(w, 0, bank);

        FiniteTableStats fsm = fsm_eval.result();
        for (const FiniteTableEvaluator &eval : prof_evals)
            fracs[i].push_back(
                100.0 *
                static_cast<double>(eval.result().candidates) /
                static_cast<double>(fsm.candidates));
    });

    std::vector<double> sums(kThresholds.size(), 0.0);
    for (size_t i = 0; i < workloads.size(); ++i) {
        std::printf("%-10s", std::string(workloads[i]->name()).c_str());
        for (size_t t = 0; t < kThresholds.size(); ++t) {
            sums[t] += fracs[i][t];
            std::printf(" %6.1f%%", fracs[i][t]);
        }
        std::printf("\n");
    }

    std::printf("%-10s", "average");
    size_t n = workloads.size();
    for (size_t t = 0; t < kThresholds.size(); ++t)
        std::printf(" %6.1f%%", sums[t] / static_cast<double>(n));
    std::printf("\n");

    const double paper_avg[] = {24.0, 32.0, 35.0, 39.0, 47.0};
    for (size_t t = 0; t < kThresholds.size(); ++t) {
        std::string at =
            "@" + std::to_string(static_cast<int>(kThresholds[t]));
        for (size_t i = 0; i < workloads.size(); ++i)
            emitResult("table_5_1",
                       std::string(workloads[i]->name()) + at,
                       fracs[i][t], std::nullopt, "%");
        emitResult("table_5_1", "average" + at,
                   sums[t] / static_cast<double>(n), paper_avg[t],
                   "%");
    }

    std::printf("\npaper (average row): 24%% / 32%% / 35%% / 39%% / "
                "47%% for thresholds 90..50.\nexpected shape: "
                "monotonically increasing with a looser threshold, and\n"
                "clearly below 100%% everywhere (profiling filters the "
                "candidate stream).\n");
    finishBench("bench_table_5_1");
    return 0;
}
