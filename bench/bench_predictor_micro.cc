/**
 * @file
 * google-benchmark micro-benchmarks of the predictor data structures:
 * lookup/update throughput of the last-value, stride and hybrid
 * predictors over finite and infinite tables. These measure the
 * library itself, not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "predictors/hybrid_predictor.hh"
#include "predictors/last_value_predictor.hh"
#include "predictors/stride_predictor.hh"

namespace
{

using namespace vpprof;

/** Synthetic pc/value stream: strides, repeats and noise. */
struct Stream
{
    std::vector<uint64_t> pcs;
    std::vector<int64_t> values;

    explicit Stream(size_t n)
    {
        Rng rng(0xbe9c);
        pcs.reserve(n);
        values.reserve(n);
        int64_t counter = 0;
        for (size_t i = 0; i < n; ++i) {
            uint64_t pc = rng.nextBelow(2048);
            pcs.push_back(pc);
            switch (pc % 3) {
              case 0:
                values.push_back(counter += 4);  // striding
                break;
              case 1:
                values.push_back(7);             // repeating
                break;
              default:
                values.push_back(static_cast<int64_t>(rng.next()));
                break;
            }
        }
    }
};

const Stream &
stream()
{
    static Stream s(1 << 16);
    return s;
}

template <typename Predictor>
void
runPredictor(benchmark::State &state, Predictor &predictor)
{
    const Stream &s = stream();
    size_t i = 0;
    uint64_t correct = 0;
    for (auto _ : state) {
        uint64_t pc = s.pcs[i];
        int64_t value = s.values[i];
        Prediction pred = predictor.predict(pc);
        bool ok = pred.hit && pred.value == value;
        correct += ok ? 1 : 0;
        predictor.update(pc, value, ok);
        i = (i + 1) % s.pcs.size();
    }
    benchmark::DoNotOptimize(correct);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_LastValueInfinite(benchmark::State &state)
{
    LastValuePredictor p(PredictorConfig{.numEntries = 0,
                                         .counterBits = 0});
    runPredictor(state, p);
}
BENCHMARK(BM_LastValueInfinite);

void
BM_StrideInfinite(benchmark::State &state)
{
    StridePredictor p(PredictorConfig{.numEntries = 0,
                                      .counterBits = 0});
    runPredictor(state, p);
}
BENCHMARK(BM_StrideInfinite);

void
BM_StrideFinite512(benchmark::State &state)
{
    StridePredictor p(PredictorConfig{.numEntries = 512,
                                      .associativity = 2,
                                      .counterBits = 2});
    runPredictor(state, p);
}
BENCHMARK(BM_StrideFinite512);

void
BM_StrideFiniteSweep(benchmark::State &state)
{
    StridePredictor p(PredictorConfig{
        .numEntries = static_cast<size_t>(state.range(0)),
        .associativity = 2,
        .counterBits = 2});
    runPredictor(state, p);
}
BENCHMARK(BM_StrideFiniteSweep)->Arg(128)->Arg(512)->Arg(2048);

void
BM_HybridSteered(benchmark::State &state)
{
    HybridPredictor p;
    const Stream &s = stream();
    size_t i = 0;
    uint64_t correct = 0;
    for (auto _ : state) {
        uint64_t pc = s.pcs[i];
        int64_t value = s.values[i];
        Directive d = pc % 3 == 0 ? Directive::Stride
                                  : Directive::LastValue;
        Prediction pred = p.predict(pc, d);
        bool ok = pred.hit && pred.value == value;
        correct += ok ? 1 : 0;
        p.update(pc, value, ok, d);
        i = (i + 1) % s.pcs.size();
    }
    benchmark::DoNotOptimize(correct);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HybridSteered);

} // namespace

BENCHMARK_MAIN();
