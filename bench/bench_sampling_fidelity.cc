/**
 * @file
 * Sampled-profiling fidelity sweep (beyond the paper): how much
 * directive quality does a profile lose when it observes only 1-in-N
 * trace records, and how much profiling time does it buy?
 *
 * For every workload and every (policy, rate) cell the bench collects
 * a sampled profile of input 0's trace, compares it against the exact
 * profile (directive agreement — static and execution-weighted —
 * accuracy / stride-ratio error), and replays one fused pass where a
 * finite predictor table runs under the exact-profile annotation and
 * under every sampled-profile annotation, giving the downstream
 * misprediction delta. A ConvergenceTracker run reports how early the
 * exact directive assignment stabilizes (early-exit profiling).
 *
 * Results land in BENCH_sampling.json; the headline acceptance bar is
 * >= 90% execution-weighted directive agreement at a sampling rate of
 * 1/8 or sparser for at least one policy, with the measured wall-time
 * reduction alongside.
 */

#include "bench_util.hh"

#include "compiler/directive_inserter.hh"
#include "profile/sampling/convergence.hh"
#include "profile/sampling/fidelity.hh"
#include "profile/sampling/sampling_policy.hh"

using namespace vpprof;
using namespace vpprof::bench;

namespace
{

const std::vector<SamplingPolicy> kPolicies = {
    SamplingPolicy::Periodic,
    SamplingPolicy::Random,
    SamplingPolicy::Burst,
};

const std::vector<uint64_t> kRates = {2, 4, 8, 16, 32};

/**
 * Burst window length. Long bursts are what make burst sampling
 * fidelity-preserving: within a window every occurrence of a pc is
 * consecutive, so stride chains are observed exactly, and the one
 * stale-stride miss at each window boundary is amortized over the
 * whole window's worth of good attempts.
 */
constexpr uint64_t kBurstLen = 1024;

struct Cell
{
    SamplingPolicy policy;
    uint64_t rate = 0;
    double wallMs = 0.0;
    uint64_t kept = 0;
    uint64_t seen = 0;
    ProfileFidelity fidelity;
    DownstreamDelta downstream;
};

struct WorkloadResult
{
    std::string name;
    double exactWallMs = 0.0;
    size_t exactPcs = 0;
    uint64_t producers = 0;
    uint64_t convergenceProducers = 0;
    uint64_t convergenceSkipped = 0;
    std::vector<Cell> cells;
};

template <typename Fn>
double
wallOf(Fn &&fn)
{
    using namespace std::chrono;
    auto t0 = steady_clock::now();
    fn();
    return duration_cast<duration<double, std::milli>>(
               steady_clock::now() - t0)
        .count();
}

DownstreamCounts
countsOf(const FiniteTableStats &stats)
{
    return DownstreamCounts{stats.producers, stats.correctTaken,
                            stats.incorrectTaken};
}

double
keptFraction(const Cell &cell)
{
    return cell.seen == 0 ? 1.0
                          : static_cast<double>(cell.kept) /
                                static_cast<double>(cell.seen);
}

} // namespace

int
main()
{
    banner("Sampled profiling - fidelity vs profiling cost",
           "beyond the paper: Section 3.2 profiles from 1-in-N "
           "sampled traces");

    const auto &workloads = suite().all();
    std::vector<WorkloadResult> results(workloads.size());

    session().runner().forEach(workloads.size(), [&](size_t wi) {
        const Workload &w = *workloads[wi];
        WorkloadResult &res = results[wi];
        res.name = w.name();

        // Capture the trace outside any timed region so every cell
        // below times pure profiling (replay + collection) cost.
        session().runTrace(w, 0, nullptr);

        ProfileImage exact;
        {
            ProfileCollector collector(res.name);
            res.exactWallMs = wallOf([&] {
                session().runTrace(w, 0, &collector);
            });
            res.producers = collector.producersSeen();
            exact = collector.takeImage();
        }
        res.exactPcs = exact.size();

        // How early does the exact directive assignment stabilize?
        {
            ProfileCollector collector(res.name);
            ConvergenceConfig conv;
            conv.earlyExit = true;
            ConvergenceTracker tracker(collector, conv);
            session().runTrace(w, 0, &tracker);
            res.convergenceProducers = tracker.producersAtConvergence();
            res.convergenceSkipped = tracker.recordsSkipped();
        }

        for (SamplingPolicy policy : kPolicies) {
            for (uint64_t rate : kRates) {
                SamplingConfig cfg;
                cfg.policy = policy;
                cfg.rate = rate;
                cfg.burstLen = kBurstLen;

                Cell cell;
                cell.policy = policy;
                cell.rate = rate;

                ProfileCollector collector(res.name);
                SamplingTraceSink sampler(cfg, &collector);
                cell.wallMs = wallOf([&] {
                    session().runTrace(w, 0, &sampler);
                });
                cell.kept = sampler.recordsKept();
                cell.seen = sampler.recordsSeen();
                ProfileImage sampled = collector.takeImage();
                // Judge the sampled side under the support floor
                // scaled to the fraction of the trace it observed.
                DirectiveRule rule;
                cell.fidelity = compareProfiles(
                    exact, sampled, rule,
                    rule.scaledToSampling(keptFraction(cell)));

                res.cells.push_back(std::move(cell));
            }
        }

        // Downstream check: one fused replay drives a finite table
        // under the exact annotation and under every sampled
        // annotation (directives are metadata, so all views share the
        // one cached raw trace).
        InserterConfig inserter;
        Program exact_prog = w.program();
        insertDirectives(exact_prog, exact, inserter);
        FiniteTableEvaluator exact_eval(VpPolicy::Profile,
                                        paperFiniteConfig(false));
        DirectiveOverrideSink exact_view(exact_prog, &exact_eval);

        std::vector<Program> progs;
        std::vector<FiniteTableEvaluator> evals;
        std::vector<DirectiveOverrideSink> views;
        progs.reserve(res.cells.size());
        evals.reserve(res.cells.size());
        views.reserve(res.cells.size());
        std::vector<TraceSink *> sinks = {&exact_view};
        for (const Cell &cell : res.cells) {
            SamplingConfig cfg;
            cfg.policy = cell.policy;
            cfg.rate = cell.rate;
            cfg.burstLen = kBurstLen;
            const ProfileImage &sampled =
                session().collectSampledProfile(w, 0, cfg);
            InserterConfig sampled_inserter = inserter;
            sampled_inserter.minAttempts =
                inserter.rule()
                    .scaledToSampling(keptFraction(cell))
                    .minAttempts;
            progs.push_back(w.program());
            insertDirectives(progs.back(), sampled, sampled_inserter);
            evals.emplace_back(VpPolicy::Profile,
                               paperFiniteConfig(false));
            views.emplace_back(progs.back(), &evals.back());
            sinks.push_back(&views.back());
        }
        session().replayInto(w, 0, sinks);

        DownstreamCounts exact_counts = countsOf(exact_eval.result());
        for (size_t c = 0; c < res.cells.size(); ++c)
            res.cells[c].downstream = compareDownstream(
                exact_counts, countsOf(evals[c].result()));
    });

    // ---- stdout report --------------------------------------------
    for (SamplingPolicy policy : kPolicies) {
        std::printf("policy %-8s %10s %10s %10s %10s %10s\n",
                    std::string(samplingPolicyName(policy)).c_str(),
                    "agree%", "w-agree%", "acc-mae", "dMis(pp)",
                    "speedup");
        for (uint64_t rate : kRates) {
            double agree = 0, wagree = 0, mae = 0, dmis = 0, speed = 0;
            for (const WorkloadResult &res : results) {
                for (const Cell &cell : res.cells) {
                    if (cell.policy != policy || cell.rate != rate)
                        continue;
                    agree += cell.fidelity.directiveAgreementPercent();
                    wagree += cell.fidelity.weightedAgreementPercent();
                    mae += cell.fidelity.meanAccuracyErrorPct;
                    dmis += cell.downstream.mispredictDeltaPct();
                    speed += res.exactWallMs /
                             (cell.wallMs > 0 ? cell.wallMs : 1e-3);
                }
            }
            double n = static_cast<double>(results.size());
            std::printf("  1/%-8llu %9.1f %10.1f %10.2f %+10.2f "
                        "%9.1fx\n",
                        static_cast<unsigned long long>(rate),
                        agree / n, wagree / n, mae / n, dmis / n,
                        speed / n);
            std::string cell_base =
                std::string(samplingPolicyName(policy)) + "/";
            std::string at = "@" + std::to_string(rate);
            emitResult("sampling_fidelity", cell_base + "w_agree" + at,
                       wagree / n, std::nullopt, "%");
            emitResult("sampling_fidelity", cell_base + "speedup" + at,
                       speed / n, std::nullopt, "x");
        }
        std::printf("\n");
    }

    std::printf("directive convergence of the exact profile "
                "(early-exit):\n");
    for (const WorkloadResult &res : results)
        std::printf("  %-10s stable after %9llu of %9llu producers "
                    "(%llu records skipped)\n",
                    res.name.c_str(),
                    static_cast<unsigned long long>(
                        res.convergenceProducers),
                    static_cast<unsigned long long>(res.producers),
                    static_cast<unsigned long long>(
                        res.convergenceSkipped));

    // Acceptance bar: some policy at rate >= 8 keeps >= 90% weighted
    // directive agreement on every workload's average.
    double best = 0;
    SamplingPolicy best_policy = SamplingPolicy::Periodic;
    for (SamplingPolicy policy : kPolicies) {
        double wagree = 0;
        for (const WorkloadResult &res : results)
            for (const Cell &cell : res.cells)
                if (cell.policy == policy && cell.rate == 8)
                    wagree += cell.fidelity.weightedAgreementPercent();
        wagree /= static_cast<double>(results.size());
        if (wagree > best) {
            best = wagree;
            best_policy = policy;
        }
    }
    std::printf("\nacceptance: best policy at rate 1/8 is %s with "
                "%.1f%% weighted directive agreement (bar: 90%%) "
                "-> %s\n",
                std::string(samplingPolicyName(best_policy)).c_str(),
                best, best >= 90.0 ? "PASS" : "FAIL");
    emitResult("sampling_fidelity", "acceptance/best_w_agree@8", best,
               std::nullopt, "%");

    // ---- BENCH_sampling.json --------------------------------------
    {
        std::ofstream out("BENCH_sampling.json", std::ios::trunc);
        out << "{\n  \"acceptance\": {\"best_policy_at_rate_8\": \""
            << samplingPolicyName(best_policy)
            << "\", \"weighted_agreement_pct\": " << best
            << ", \"bar_pct\": 90.0},\n";
        out << "  \"workloads\": {\n";
        for (size_t i = 0; i < results.size(); ++i) {
            const WorkloadResult &res = results[i];
            out << "    \"" << res.name << "\": {\n"
                << "      \"exact\": {\"wall_ms\": " << res.exactWallMs
                << ", \"pcs\": " << res.exactPcs
                << ", \"producers\": " << res.producers
                << ", \"convergence_producers\": "
                << res.convergenceProducers
                << ", \"convergence_records_skipped\": "
                << res.convergenceSkipped << "},\n"
                << "      \"cells\": [\n";
            for (size_t c = 0; c < res.cells.size(); ++c) {
                const Cell &cell = res.cells[c];
                out << "        {\"policy\": \""
                    << samplingPolicyName(cell.policy)
                    << "\", \"rate\": " << cell.rate
                    << ", \"wall_ms\": " << cell.wallMs
                    << ", \"speedup\": "
                    << res.exactWallMs /
                           (cell.wallMs > 0 ? cell.wallMs : 1e-3)
                    << ", \"records_kept\": " << cell.kept
                    << ", \"records_seen\": " << cell.seen
                    << ", \"agreement_pct\": "
                    << cell.fidelity.directiveAgreementPercent()
                    << ", \"weighted_agreement_pct\": "
                    << cell.fidelity.weightedAgreementPercent()
                    << ", \"accuracy_mae_pct\": "
                    << cell.fidelity.meanAccuracyErrorPct
                    << ", \"stride_mae_pct\": "
                    << cell.fidelity.meanStrideRatioErrorPct
                    << ", \"correct_delta_pp\": "
                    << cell.downstream.correctDeltaPct()
                    << ", \"mispredict_delta_pp\": "
                    << cell.downstream.mispredictDeltaPct() << "}"
                    << (c + 1 < res.cells.size() ? "," : "") << "\n";
            }
            out << "      ]\n    }"
                << (i + 1 < results.size() ? "," : "") << "\n";
        }
        out << "  }\n}\n";
        std::printf("\nwrote BENCH_sampling.json\n");
    }

    finishBench("bench_sampling_fidelity");
    return 0;
}
