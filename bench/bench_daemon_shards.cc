/**
 * @file
 * Scale-out load bench for the sharded vpprofd (DESIGN.md §15): the
 * event-loop plane must scale across shards without changing a single
 * response byte. Three phases:
 *
 *  1. IDENTITY phase — the same fixed request script (client-chosen
 *     trace ids, so the daemon mints nothing) runs against a 1-shard
 *     and a 4-shard daemon over one warm trace cache, spread across
 *     four connections so round-robin lands requests on every shard.
 *     Every raw response line must be byte-identical between the two
 *     daemons: sharding is a topology change, never a semantic one.
 *
 *  2. SHED phase — a 4-shard daemon with a deliberately tiny
 *     admission budget (queue 2, quota 1) under 8 clients that each
 *     pipeline 4 profile jobs in one write. The clients land on
 *     different shards, but admission is global: the excess must be
 *     shed EXPLICITLY (`overloaded`/`quota` lines) with zero
 *     unanswered requests, exactly like the single-loop daemon.
 *
 *  3. SCALING phase (needs >= 4 hardware threads, else skipped) —
 *     requests/second of the shard-local steady mix (ping/stats/
 *     metrics/journal: commands answered entirely inside the owning
 *     shard's event loop) at 1, 2 and 4 shards with 8 concurrent
 *     clients. Gates near-linear scaling: >= 1.6x rps at 2 shards
 *     and >= 2.5x at 4 vs the 1-shard baseline. The job plane
 *     (profile/evaluate/verify) is deliberately one shared executor
 *     — that is what preserves the trace-once invariant — so the
 *     scaling claim is about the serving plane, and the mix says so.
 *
 * Gating: timing-class keys of BENCH_shards.json ride the perf
 * gate's noise margin against golden/perf/BENCH_shards.json; the
 * emitted rows are bounded by golden/shape/daemon_shards.json and
 * (when the scaling phase runs) daemon_shards_scaling.json. The
 * correctness gates (identity/shed/speedup) fail the bench itself
 * with a non-zero exit.
 */

#include "bench_util.hh"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <optional>
#include <set>
#include <thread>

#include <unistd.h>

#include "daemon/client.hh"
#include "daemon/protocol.hh"
#include "daemon/server.hh"

using namespace vpprof;
using namespace vpprof::bench;
using namespace vpprof::daemon;

namespace
{

constexpr size_t kIdentityConnections = 4;
constexpr size_t kShedClients = 8;
constexpr size_t kShedJobsPerClient = 4;
constexpr size_t kScaleClients = 8;
constexpr size_t kScaleRequestsPerClient = 600;
constexpr int kCallTimeoutMs = 120'000;

std::string
freshSocketPath()
{
    static int counter = 0;
    std::ostringstream os;
    os << "/tmp/vpd_shards_" << ::getpid() << "_" << counter++
       << ".sock";
    return os.str();
}

/** One daemon instance with its event loop on a background thread. */
struct RunningDaemon
{
    std::unique_ptr<DaemonServer> server;
    std::thread loop;
    int rc = -1;

    explicit RunningDaemon(DaemonConfig cfg)
    {
        cfg.socketPath = freshSocketPath();
        server = std::make_unique<DaemonServer>(std::move(cfg));
        std::string error;
        if (!server->start(&error))
            vpprof_panic("daemon start failed: ", error);
        loop = std::thread([this] { rc = server->run(); });
    }

    DaemonClient
    client()
    {
        DaemonClient c;
        std::string error;
        if (!c.connect(server->config().socketPath, &error))
            vpprof_panic("daemon connect failed: ", error);
        return c;
    }

    /** Graceful drain; the event loop must exit 0. */
    int
    stop()
    {
        server->requestShutdown();
        loop.join();
        return rc;
    }
};

double
wallMsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration_cast<
               std::chrono::duration<double, std::milli>>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * The identity-phase script: every job command over both workloads
 * with client-chosen ids AND trace ids, so no daemon-minted (striped,
 * shard-dependent) identifier ever reaches a response. `stats` is
 * deliberately absent — its answer reports the shard count itself.
 */
std::vector<Request>
identityScript()
{
    std::vector<Request> script;
    uint64_t id = 1, trace_id = 1000;
    for (const char *w : {"compress", "li"}) {
        for (Command cmd : {Command::Profile, Command::Evaluate,
                            Command::Verify}) {
            Request req;
            req.id = id++;
            req.cmd = cmd;
            req.workload = w;
            req.input = 0;
            req.threshold = 70.0;
            req.traceId = trace_id++;
            script.push_back(req);
        }
        Request ping;
        ping.id = id++;
        ping.cmd = Command::Ping;
        ping.traceId = trace_id++;
        script.push_back(ping);
    }
    return script;
}

/**
 * Run the script against one daemon, one request in flight at a time,
 * rotating across `kIdentityConnections` connections so round-robin
 * placement exercises every shard. Returns the raw response lines.
 */
std::vector<std::string>
runIdentityScript(RunningDaemon &daemon)
{
    std::vector<DaemonClient> conns;
    for (size_t i = 0; i < kIdentityConnections; ++i) {
        conns.push_back(daemon.client());
        // A ping round-trip per connection before the next connect:
        // adoption order (and so shard placement) stays sequential.
        CallResult r = conns.back().call(900 + i, Command::Ping, "",
                                         0, 0, false, kCallTimeoutMs);
        if (!r.ok)
            vpprof_panic("identity warm ping failed: ", r.error);
    }
    std::vector<std::string> raw;
    std::vector<Request> script = identityScript();
    for (size_t i = 0; i < script.size(); ++i) {
        DaemonClient &c = conns[i % conns.size()];
        CallResult r = c.call(requestLine(script[i]), script[i].id,
                              kCallTimeoutMs);
        if (r.raw.empty())
            vpprof_panic("identity request ", script[i].id,
                         " got no answer: ", r.error);
        raw.push_back(r.raw);
    }
    return raw;
}

/** The shard-local scaling mix for request slot `i` (no job plane). */
std::string
scalingLine(uint64_t id, size_t slot)
{
    Request req;
    req.id = id;
    switch (slot % 4) {
      case 0:
      case 2:
        req.cmd = Command::Ping;
        break;
      case 1:
        req.cmd = Command::Stats;
        break;
      default:
        req.cmd = Command::Journal;
        req.limit = 8;
        break;
    }
    return requestLine(req);
}

struct ScalePoint
{
    size_t shards = 0;
    double rps = 0.0;
    uint64_t errors = 0;
};

/**
 * Measure the shard-local mix at one shard count. Clients use raw
 * sendLine/readLine (no response parsing) so client-side CPU stays
 * negligible and the daemon's event-loop plane is the bottleneck.
 */
ScalePoint
measureScaling(size_t shards)
{
    DaemonConfig cfg;
    cfg.shards = shards;
    cfg.session.jobs = 2;
    RunningDaemon daemon(cfg);

    std::vector<uint64_t> errors(kScaleClients, 0);
    auto t0 = std::chrono::steady_clock::now();
    {
        std::vector<std::thread> threads;
        for (size_t c = 0; c < kScaleClients; ++c) {
            threads.emplace_back([&, c] {
                DaemonClient client = daemon.client();
                for (size_t i = 0; i < kScaleRequestsPerClient; ++i) {
                    if (!client.sendLine(scalingLine(i + 1, c + i))) {
                        errors[c] +=
                            kScaleRequestsPerClient - i;
                        return;
                    }
                    std::optional<std::string> line =
                        client.readLine(kCallTimeoutMs);
                    if (!line) {
                        errors[c] +=
                            kScaleRequestsPerClient - i;
                        return;
                    }
                }
            });
        }
        for (std::thread &t : threads)
            t.join();
    }
    double wall_ms = wallMsSince(t0);
    if (daemon.stop() != 0)
        vpprof_panic("scaling daemon (", shards,
                     " shards) did not drain cleanly");

    ScalePoint point;
    point.shards = shards;
    for (uint64_t e : errors)
        point.errors += e;
    const uint64_t requests = kScaleClients * kScaleRequestsPerClient;
    point.rps = wall_ms <= 0.0
                    ? 0.0
                    : 1000.0 * static_cast<double>(requests) / wall_ms;
    std::printf("scaling: %zu shard%s: %llu requests in %.1f ms = "
                "%.0f req/s, errors %llu\n",
                shards, shards == 1 ? " " : "s",
                static_cast<unsigned long long>(requests), wall_ms,
                point.rps,
                static_cast<unsigned long long>(point.errors));
    return point;
}

} // namespace

int
main()
{
    banner("vpprofd scale-out bench: shard identity, global shed, "
           "event-loop scaling",
           "beyond the paper -- DESIGN.md §15, the sharded serving "
           "plane");

    const std::string cache_dir =
        std::filesystem::temp_directory_path().string() +
        "/vpprof_bench_shards";
    std::filesystem::remove_all(cache_dir);

    // ---- Identity phase ------------------------------------------
    // Warm the shared cache once (unmeasured, 1 shard) so both
    // measured daemons replay identical persisted traces.
    {
        DaemonConfig warm_cfg;
        warm_cfg.session.jobs = 2;
        warm_cfg.session.traceCacheDir = cache_dir;
        RunningDaemon warm(warm_cfg);
        DaemonClient c = warm.client();
        uint64_t id = 1;
        for (const char *w : {"compress", "li"}) {
            CallResult r = c.call(id++, Command::Evaluate, w, 0, 70.0,
                                  false, kCallTimeoutMs);
            if (!r.ok)
                vpprof_panic("warm-up evaluate ", w,
                             " failed: ", r.error);
        }
        if (warm.stop() != 0)
            vpprof_panic("warm daemon did not drain cleanly");
    }

    std::printf("identity: fixed script over %zu connections, "
                "1 shard vs 4 shards\n",
                kIdentityConnections);
    std::vector<std::string> base_raw, shard_raw;
    {
        DaemonConfig base_cfg;
        base_cfg.session.jobs = 2;
        base_cfg.session.traceCacheDir = cache_dir;
        RunningDaemon base(base_cfg);
        base_raw = runIdentityScript(base);
        if (base.stop() != 0)
            vpprof_panic("1-shard daemon did not drain cleanly");
    }
    {
        DaemonConfig sharded_cfg;
        sharded_cfg.shards = 4;
        sharded_cfg.session.jobs = 2;
        sharded_cfg.session.traceCacheDir = cache_dir;
        RunningDaemon sharded(sharded_cfg);
        shard_raw = runIdentityScript(sharded);
        if (sharded.stop() != 0)
            vpprof_panic("4-shard daemon did not drain cleanly");
    }
    uint64_t identity_mismatches = 0;
    for (size_t i = 0; i < base_raw.size(); ++i) {
        if (base_raw[i] != shard_raw[i]) {
            ++identity_mismatches;
            std::printf("identity MISMATCH at request %zu:\n  1-shard:"
                        " %s\n  4-shard: %s\n",
                        i + 1, base_raw[i].c_str(),
                        shard_raw[i].c_str());
        }
    }
    const uint64_t identity_requests = base_raw.size();
    std::printf("identity: %llu responses compared, %llu "
                "mismatches\n\n",
                static_cast<unsigned long long>(identity_requests),
                static_cast<unsigned long long>(identity_mismatches));

    // ---- Shed phase ----------------------------------------------
    DaemonConfig shed_cfg;
    shed_cfg.shards = 4;
    shed_cfg.session.jobs = 1;
    shed_cfg.session.traceCacheDir = cache_dir;  // warm from phase 1
    shed_cfg.maxQueue = 2;
    shed_cfg.maxInflightPerClient = 1;
    RunningDaemon shed(shed_cfg);

    std::printf("shed: %zu clients x %zu pipelined profile jobs "
                "across 4 shards, queue=2, quota=1\n",
                kShedClients, kShedJobsPerClient);
    std::vector<uint64_t> rejected(kShedClients, 0);
    std::vector<uint64_t> errors(kShedClients, 0);
    std::vector<uint64_t> answered(kShedClients, 0);
    {
        std::vector<std::thread> threads;
        for (size_t c = 0; c < kShedClients; ++c) {
            threads.emplace_back([&, c] {
                DaemonClient client = shed.client();
                std::string batch;
                for (size_t i = 0; i < kShedJobsPerClient; ++i) {
                    Request req;
                    req.id = i + 1;
                    req.cmd = Command::Profile;
                    req.workload = (c % 2 == 0) ? "compress" : "li";
                    if (i > 0)
                        batch += "\n";
                    batch += requestLine(req);
                }
                if (!client.sendLine(batch))
                    return;  // answered stays short: counted below
                std::set<uint64_t> pending;
                for (size_t i = 0; i < kShedJobsPerClient; ++i)
                    pending.insert(i + 1);
                while (!pending.empty()) {
                    std::optional<std::string> line =
                        client.readLine(kCallTimeoutMs);
                    if (!line)
                        return;
                    std::string perr;
                    std::optional<report::JsonValue> doc =
                        report::parseJson(*line, &perr);
                    if (!doc)
                        vpprof_panic("shed: bad response line: ",
                                     *line);
                    if (doc->stringOr("event", "") != "")
                        continue;  // progress lines, not answers
                    uint64_t id = static_cast<uint64_t>(
                        doc->numberOr("id", 0));
                    if (!pending.erase(id))
                        continue;
                    ++answered[c];
                    const report::JsonValue *ok_field =
                        doc->get("ok");
                    if (ok_field && ok_field->isBool() &&
                        ok_field->asBool())
                        continue;
                    std::string code = doc->stringOr("code", "");
                    if (code == "overloaded" || code == "quota" ||
                        code == "draining")
                        ++rejected[c];
                    else
                        ++errors[c];
                }
            });
        }
        for (std::thread &t : threads)
            t.join();
    }
    if (shed.stop() != 0)
        vpprof_panic("shed daemon did not drain cleanly");

    uint64_t shed_rejected = 0, shed_errors = 0, shed_answered = 0;
    for (size_t c = 0; c < kShedClients; ++c) {
        shed_rejected += rejected[c];
        shed_errors += errors[c];
        shed_answered += answered[c];
    }
    const uint64_t shed_requests = kShedClients * kShedJobsPerClient;
    uint64_t shed_unanswered = shed_requests - shed_answered;
    std::printf("shed: %llu requests: %llu completed, %llu rejected, "
                "%llu errors, %llu unanswered\n\n",
                static_cast<unsigned long long>(shed_requests),
                static_cast<unsigned long long>(
                    shed_answered - shed_rejected - shed_errors),
                static_cast<unsigned long long>(shed_rejected),
                static_cast<unsigned long long>(shed_errors),
                static_cast<unsigned long long>(shed_unanswered));

    // The perf-gated wall clock stops here: the scaling phase below
    // is hardware-gated (skipped under 4 threads), so including it
    // would make wall_ms incomparable across machines.
    double gated_wall_ms = wallMsSince(benchStartTime());

    // ---- Scaling phase -------------------------------------------
    const unsigned hw = std::thread::hardware_concurrency();
    bool scaling_measured = false;
    double speedup_2x = 0.0, speedup_4x = 0.0, rps_1 = 0.0;
    uint64_t scaling_errors = 0;
    if (hw >= 4) {
        std::printf("scaling: %zu clients x %zu shard-local requests "
                    "(ping/stats/journal), %u hardware threads\n",
                    kScaleClients, kScaleRequestsPerClient, hw);
        ScalePoint p1 = measureScaling(1);
        ScalePoint p2 = measureScaling(2);
        ScalePoint p4 = measureScaling(4);
        scaling_measured = true;
        scaling_errors = p1.errors + p2.errors + p4.errors;
        rps_1 = p1.rps;
        speedup_2x = p1.rps > 0.0 ? p2.rps / p1.rps : 0.0;
        speedup_4x = p1.rps > 0.0 ? p4.rps / p1.rps : 0.0;
        std::printf("scaling: speedup %.2fx at 2 shards, %.2fx at 4 "
                    "(gates: >= 1.6x, >= 2.5x)\n\n",
                    speedup_2x, speedup_4x);
    } else {
        std::printf("scaling: SKIP (%u hardware thread%s; the phase "
                    "needs >= 4 to mean anything)\n\n",
                    hw, hw == 1 ? "" : "s");
    }

    std::filesystem::remove_all(cache_dir);

    // ---- Report + gates ------------------------------------------
    emitResult("daemon_shards", "identity/requests",
               static_cast<double>(identity_requests));
    emitResult("daemon_shards", "identity/mismatches",
               static_cast<double>(identity_mismatches));
    emitResult("daemon_shards", "shed/rejected",
               static_cast<double>(shed_rejected));
    emitResult("daemon_shards", "shed/errors",
               static_cast<double>(shed_errors));
    emitResult("daemon_shards", "shed/unanswered",
               static_cast<double>(shed_unanswered));
    if (scaling_measured) {
        emitResult("daemon_shards_scaling", "scaling/rps_1shard",
                   rps_1, std::nullopt, "req/s");
        emitResult("daemon_shards_scaling", "scaling/speedup_2x",
                   speedup_2x, std::nullopt, "x");
        emitResult("daemon_shards_scaling", "scaling/speedup_4x",
                   speedup_4x, std::nullopt, "x");
        emitResult("daemon_shards_scaling", "scaling/errors",
                   static_cast<double>(scaling_errors));
    }
    flushResults("bench_daemon_shards");

    // Deterministic counters only (plus the timing-class wall_ms):
    // the scaling speedups are hardware-dependent and live in the
    // shape rules (golden/shape/daemon_shards_scaling.json) instead.
    std::ofstream json("BENCH_shards.json", std::ios::trunc);
    json << "{\n"
         << "  \"bench_daemon_shards\": {\n"
         << "    \"wall_ms\": " << gated_wall_ms << ",\n"
         << "    \"identity_requests\": " << identity_requests
         << ",\n"
         << "    \"identity_mismatches\": " << identity_mismatches
         << ",\n"
         << "    \"shed_requests\": " << shed_requests << ",\n"
         << "    \"shed_errors\": " << shed_errors << ",\n"
         << "    \"shed_unanswered\": " << shed_unanswered << "\n"
         << "  }\n"
         << "}\n";
    json.close();
    std::printf("-> BENCH_shards.json\n");

    bool ok = true;
    if (identity_mismatches > 0) {
        std::printf("FAIL: %llu responses differ between 1-shard and "
                    "4-shard daemons (gate: byte-identical)\n",
                    static_cast<unsigned long long>(
                        identity_mismatches));
        ok = false;
    }
    if (shed_unanswered > 0 || shed_errors > 0) {
        std::printf("FAIL: shed phase had %llu unanswered, %llu "
                    "errors (gate: 0/0)\n",
                    static_cast<unsigned long long>(shed_unanswered),
                    static_cast<unsigned long long>(shed_errors));
        ok = false;
    }
    if (shed_rejected == 0) {
        std::printf("FAIL: shed phase rejected nothing — sharded "
                    "admission must still shed explicitly\n");
        ok = false;
    }
    if (scaling_measured) {
        if (scaling_errors > 0) {
            std::printf("FAIL: scaling phase had %llu unanswered/"
                        "failed requests (gate: 0)\n",
                        static_cast<unsigned long long>(
                            scaling_errors));
            ok = false;
        }
        if (speedup_2x < 1.6 || speedup_4x < 2.5) {
            std::printf("FAIL: scaling %.2fx @2 / %.2fx @4 below the "
                        "1.6x / 2.5x gates\n",
                        speedup_2x, speedup_4x);
            ok = false;
        }
    }
    std::printf("%s: identity %llu/%llu, shed rejected %llu/%llu",
                ok ? "PASS" : "FAIL",
                static_cast<unsigned long long>(identity_requests -
                                                identity_mismatches),
                static_cast<unsigned long long>(identity_requests),
                static_cast<unsigned long long>(shed_rejected),
                static_cast<unsigned long long>(shed_requests));
    if (scaling_measured)
        std::printf(", scaling %.2fx@2 %.2fx@4", speedup_2x,
                    speedup_4x);
    std::printf("\n");
    return ok ? 0 : 1;
}
