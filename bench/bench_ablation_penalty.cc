/**
 * @file
 * Ablation: value-misprediction penalty. The paper's abstract machine
 * charges 1 cycle; real pipelines can pay much more. This sweep shows
 * how the VP+FSM vs VP+profile comparison shifts as the penalty grows
 * — the profile classifier's misprediction avoidance buys more at
 * higher penalties.
 */

#include "bench_util.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Ablation - misprediction penalty sweep (ILP increase over "
           "no-VP)",
           "sensitivity of Table 5.2 to the 1-cycle penalty assumption");

    const std::vector<unsigned> penalties = {0, 1, 2, 4, 8};

    std::printf("%-10s %8s", "benchmark", "policy");
    for (unsigned p : penalties)
        std::printf("   pen=%u", p);
    std::printf("\n");

    const std::vector<const char *> names = {"go", "gcc", "li",
                                             "vortex"};
    struct Row
    {
        std::vector<IlpResult> base, fsm, prof;  // per penalty
    };
    std::vector<Row> rows(names.size());

    // One cell per workload; every penalty's three machines (no-VP
    // baseline, FSM, profile@90) consume one fused replay.
    session().runner().forEach(names.size(), [&](size_t i) {
        const Workload &w = *suite().find(names[i]);
        Program annotated = annotatedAt(names[i], 90.0);

        size_t total = 3 * penalties.size();
        std::vector<StridePredictor> preds;
        std::vector<DataflowEngine> engines;
        preds.reserve(2 * penalties.size());
        engines.reserve(total);
        EvaluatorBank bank;
        for (unsigned penalty : penalties) {
            IlpConfig cfg;
            cfg.mispredictPenalty = penalty;
            engines.emplace_back(cfg, VpPolicy::None, nullptr);
            bank.addRecordSink(&engines.back());
            preds.emplace_back(paperFiniteConfig(true));
            engines.emplace_back(cfg, VpPolicy::Fsm, &preds.back());
            bank.addRecordSink(&engines.back());
            preds.emplace_back(paperFiniteConfig(false));
            engines.emplace_back(cfg, VpPolicy::Profile, &preds.back());
            bank.addRecordSink(&engines.back(), &annotated);
        }
        session().replayInto(w, 0, bank);

        for (size_t p = 0; p < penalties.size(); ++p) {
            rows[i].base.push_back(engines[3 * p].result());
            rows[i].fsm.push_back(engines[3 * p + 1].result());
            rows[i].prof.push_back(engines[3 * p + 2].result());
        }
    });

    for (size_t i = 0; i < names.size(); ++i) {
        for (int policy = 0; policy < 2; ++policy) {
            std::printf("%-10s %8s", names[i],
                        policy == 0 ? "FSM" : "prof@90");
            for (size_t p = 0; p < penalties.size(); ++p) {
                const IlpResult &base = rows[i].base[p];
                const IlpResult &vp = policy == 0 ? rows[i].fsm[p]
                                                  : rows[i].prof[p];
                std::printf(" %+6.1f%%",
                            100.0 * (vp.ilp() / base.ilp() - 1.0));
            }
            std::printf("\n");
        }
    }

    // Average gain per policy at each penalty: the golden trend rules
    // check that both series decay and that profiling decays slower.
    for (size_t p = 0; p < penalties.size(); ++p) {
        double fsm_sum = 0.0, prof_sum = 0.0;
        for (size_t i = 0; i < names.size(); ++i) {
            const IlpResult &base = rows[i].base[p];
            fsm_sum += 100.0 * (rows[i].fsm[p].ilp() / base.ilp() - 1.0);
            prof_sum +=
                100.0 * (rows[i].prof[p].ilp() / base.ilp() - 1.0);
        }
        std::string at = "@pen" + std::to_string(penalties[p]);
        double n = static_cast<double>(names.size());
        emitResult("ablation_penalty", "average/fsm_gain" + at,
                   fsm_sum / n, std::nullopt, "%");
        emitResult("ablation_penalty", "average/prof_gain" + at,
                   prof_sum / n, std::nullopt, "%");
    }

    std::printf("\nexpected: both schemes lose gain as the penalty "
                "rises, but the\nprofile-guided scheme (threshold 90%%) "
                "degrades more slowly because it\nconsumes far fewer "
                "wrong predictions.\n");
    finishBench("bench_ablation_penalty");
    return 0;
}
