/**
 * @file
 * Ablation: value-misprediction penalty. The paper's abstract machine
 * charges 1 cycle; real pipelines can pay much more. This sweep shows
 * how the VP+FSM vs VP+profile comparison shifts as the penalty grows
 * — the profile classifier's misprediction avoidance buys more at
 * higher penalties.
 */

#include "bench_util.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Ablation - misprediction penalty sweep (ILP increase over "
           "no-VP)",
           "sensitivity of Table 5.2 to the 1-cycle penalty assumption");

    const std::vector<unsigned> penalties = {0, 1, 2, 4, 8};

    std::printf("%-10s %8s", "benchmark", "policy");
    for (unsigned p : penalties)
        std::printf("   pen=%u", p);
    std::printf("\n");

    for (const char *name : {"go", "gcc", "li", "vortex"}) {
        const Workload *w = suite().find(name);
        MemoryImage input = w->input(0);
        Program annotated = annotatedAt(name, 90.0);

        for (int policy = 0; policy < 2; ++policy) {
            std::printf("%-10s %8s", name,
                        policy == 0 ? "FSM" : "prof@90");
            for (unsigned penalty : penalties) {
                IlpConfig cfg;
                cfg.mispredictPenalty = penalty;
                IlpResult base = evaluateIlp(w->program(), input, cfg,
                                             VpPolicy::None,
                                             infiniteConfig());
                IlpResult vp = policy == 0
                    ? evaluateIlp(w->program(), input, cfg,
                                  VpPolicy::Fsm, paperFiniteConfig(true))
                    : evaluateIlp(annotated, input, cfg,
                                  VpPolicy::Profile,
                                  paperFiniteConfig(false));
                std::printf(" %+6.1f%%",
                            100.0 * (vp.ilp() / base.ilp() - 1.0));
            }
            std::printf("\n");
        }
    }

    std::printf("\nexpected: both schemes lose gain as the penalty "
                "rises, but the\nprofile-guided scheme (threshold 90%%) "
                "degrades more slowly because it\nconsumes far fewer "
                "wrong predictions.\n");
    return 0;
}
