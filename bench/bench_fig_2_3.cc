/**
 * @file
 * Figure 2.3 — the spread of instructions according to their stride
 * efficiency ratio (the share of an instruction's correct predictions
 * that used a non-zero stride).
 *
 * Paper's observation: the distribution is strongly bimodal — a small
 * set of truly stride-patterned instructions and a large set that
 * simply reuses its last value.
 */

#include "bench_util.hh"

#include "common/text_table.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Figure 2.3 - distribution of per-instruction stride "
           "efficiency ratio",
           "Gabbay & Mendelson, MICRO-30 1997, Figure 2.3");

    Histogram overall = makeDecileHistogram();
    for (const auto &w : suite().all()) {
        const ProfileImage &img =
            cachedProfile(std::string(w->name()), 0);
        Histogram h = makeDecileHistogram();
        for (const auto &[pc, p] : img.entries()) {
            // Only instructions with correct predictions have a
            // defined stride efficiency ratio.
            if (p.correct == 0)
                continue;
            h.addSample(p.strideEfficiencyPercent());
            overall.addSample(p.strideEfficiencyPercent());
        }
        std::printf("%s",
                    renderHistogram(h, std::string(w->name()) +
                                           ": stride efficiency "
                                           "deciles")
                        .c_str());
        std::printf("\n");
    }

    std::printf("%s\n",
                renderHistogram(overall, "suite overall").c_str());
    std::printf("bimodality check: extreme deciles hold %s of "
                "instructions\n",
                formatPercent(overall.fraction(0) + overall.fraction(9))
                    .c_str());
    std::printf("\npaper: most instructions sit at the extremes - a "
                "small stride-patterned\nsubset near 100%% and a large "
                "last-value subset near 0%%.\n");
    emitResult("fig_2_3", "suite/extreme_decile_mass_pct",
               100.0 * (overall.fraction(0) + overall.fraction(9)),
               std::nullopt, "%");
    emitResult("fig_2_3", "suite/near_zero_mass_pct",
               100.0 * overall.fraction(0), std::nullopt, "%");
    finishBench("bench_fig_2_3");
    return 0;
}
