/**
 * @file
 * Figures 5.1 and 5.2 — classification accuracy with infinite tables:
 * the percentage of mispredictions classified correctly (5.1) and of
 * correct predictions classified correctly (5.2), for the
 * saturating-counter FSM and the profile-guided classifier at
 * thresholds 90/80/70/60/50.
 *
 * The profile is trained on inputs 1..4 and evaluated on the unseen
 * input 0 — the paper's cross-input setting.
 */

#include "bench_util.hh"

#include "predictors/profile_classifier.hh"
#include "predictors/saturating_classifier.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Figures 5.1 / 5.2 - classification accuracy (infinite "
           "tables)",
           "Gabbay & Mendelson, MICRO-30 1997, Figures 5.1 and 5.2");

    struct Row
    {
        std::string name;
        ClassificationAccuracy fsm;
        std::vector<ClassificationAccuracy> prof;  // per threshold
    };
    std::vector<Row> rows;

    for (const auto &w : suite().all()) {
        Row row;
        row.name = w->name();
        MemoryImage input = w->input(0);

        SaturatingClassifier fsm;
        row.fsm = evaluateClassification(w->program(), input, fsm);

        for (double threshold : kThresholds) {
            Program annotated = annotatedAt(row.name, threshold);
            ProfileClassifier cls;
            row.prof.push_back(
                evaluateClassification(annotated, input, cls));
        }
        rows.push_back(std::move(row));
    }

    auto print_series = [&](const char *title, auto extract) {
        std::printf("%s\n", title);
        std::printf("%-10s %6s", "benchmark", "FSM");
        for (double t : kThresholds)
            std::printf(" %5.0f%%", t);
        std::printf("\n");
        std::vector<double> sums(1 + kThresholds.size(), 0.0);
        for (const Row &row : rows) {
            std::printf("%-10s %5.1f ", row.name.c_str(),
                        extract(row.fsm));
            sums[0] += extract(row.fsm);
            for (size_t t = 0; t < kThresholds.size(); ++t) {
                std::printf(" %5.1f", extract(row.prof[t]));
                sums[1 + t] += extract(row.prof[t]);
            }
            std::printf("\n");
        }
        std::printf("%-10s %5.1f ", "average",
                    sums[0] / static_cast<double>(rows.size()));
        for (size_t t = 0; t < kThresholds.size(); ++t)
            std::printf(" %5.1f",
                        sums[1 + t] / static_cast<double>(rows.size()));
        std::printf("\n\n");
    };

    print_series("Figure 5.1: % of mispredictions classified "
                 "correctly",
                 [](const ClassificationAccuracy &a) {
                     return a.mispredictionAccuracy();
                 });
    print_series("Figure 5.2: % of correct predictions classified "
                 "correctly",
                 [](const ClassificationAccuracy &a) {
                     return a.correctAccuracy();
                 });

    std::printf(
        "paper's shape:\n"
        " - Fig 5.1: profiling beats the FSM at high thresholds; the\n"
        "   advantage shrinks as the threshold drops, and only below\n"
        "   ~60%% does the FSM win on average.\n"
        " - Fig 5.2: the FSM is slightly better at accepting correct\n"
        "   predictions (it never refuses a steadily-correct pc), and\n"
        "   lowering the threshold closes the gap.\n");
    return 0;
}
