/**
 * @file
 * Figures 5.1 and 5.2 — classification accuracy with infinite tables:
 * the percentage of mispredictions classified correctly (5.1) and of
 * correct predictions classified correctly (5.2), for the
 * saturating-counter FSM and the profile-guided classifier at
 * thresholds 90/80/70/60/50.
 *
 * The profile is trained on inputs 1..4 and evaluated on the unseen
 * input 0 — the paper's cross-input setting.
 */

#include "bench_util.hh"

#include "predictors/profile_classifier.hh"
#include "predictors/saturating_classifier.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Figures 5.1 / 5.2 - classification accuracy (infinite "
           "tables)",
           "Gabbay & Mendelson, MICRO-30 1997, Figures 5.1 and 5.2");

    struct Row
    {
        std::string name;
        ClassificationAccuracy fsm;
        std::vector<ClassificationAccuracy> prof;  // per threshold
    };
    const auto &workloads = suite().all();
    std::vector<Row> rows(workloads.size());

    // One sweep cell per workload; inside a cell, the FSM baseline and
    // all five threshold evaluations share a single replay of the
    // cached trace (each behind its own directive-override view).
    session().runner().forEach(workloads.size(), [&](size_t i) {
        const Workload &w = *workloads[i];
        Row &row = rows[i];
        row.name = w.name();

        Program base = w.program();
        std::vector<Program> annotated;
        for (double threshold : kThresholds)
            annotated.push_back(annotatedAt(row.name, threshold));

        SaturatingClassifier fsm;
        ClassificationEvaluator fsm_eval(fsm);

        std::vector<ProfileClassifier> classifiers(kThresholds.size());
        std::vector<ClassificationEvaluator> prof_evals;
        prof_evals.reserve(kThresholds.size());
        EvaluatorBank bank;
        bank.addBlockSink(&fsm_eval, &base);
        for (size_t t = 0; t < kThresholds.size(); ++t) {
            prof_evals.emplace_back(classifiers[t]);
            bank.addBlockSink(&prof_evals[t], &annotated[t]);
        }
        session().replayInto(w, 0, bank);

        row.fsm = fsm_eval.result();
        for (const ClassificationEvaluator &eval : prof_evals)
            row.prof.push_back(eval.result());
    });

    auto print_series = [&](const char *title, auto extract) {
        std::printf("%s\n", title);
        std::printf("%-10s %6s", "benchmark", "FSM");
        for (double t : kThresholds)
            std::printf(" %5.0f%%", t);
        std::printf("\n");
        std::vector<double> sums(1 + kThresholds.size(), 0.0);
        for (const Row &row : rows) {
            std::printf("%-10s %5.1f ", row.name.c_str(),
                        extract(row.fsm));
            sums[0] += extract(row.fsm);
            for (size_t t = 0; t < kThresholds.size(); ++t) {
                std::printf(" %5.1f", extract(row.prof[t]));
                sums[1 + t] += extract(row.prof[t]);
            }
            std::printf("\n");
        }
        std::printf("%-10s %5.1f ", "average",
                    sums[0] / static_cast<double>(rows.size()));
        for (size_t t = 0; t < kThresholds.size(); ++t)
            std::printf(" %5.1f",
                        sums[1 + t] / static_cast<double>(rows.size()));
        std::printf("\n\n");
    };

    print_series("Figure 5.1: % of mispredictions classified "
                 "correctly",
                 [](const ClassificationAccuracy &a) {
                     return a.mispredictionAccuracy();
                 });
    print_series("Figure 5.2: % of correct predictions classified "
                 "correctly",
                 [](const ClassificationAccuracy &a) {
                     return a.correctAccuracy();
                 });

    auto emit_series = [&](const char *experiment, auto extract) {
        double fsm_sum = 0.0;
        std::vector<double> prof_sums(kThresholds.size(), 0.0);
        for (const Row &row : rows) {
            emitResult(experiment, row.name + "/fsm", extract(row.fsm),
                       std::nullopt, "%");
            fsm_sum += extract(row.fsm);
            for (size_t t = 0; t < kThresholds.size(); ++t) {
                emitResult(experiment,
                           row.name + "/prof@" +
                               std::to_string(
                                   static_cast<int>(kThresholds[t])),
                           extract(row.prof[t]), std::nullopt, "%");
                prof_sums[t] += extract(row.prof[t]);
            }
        }
        double n = static_cast<double>(rows.size());
        emitResult(experiment, "average/fsm", fsm_sum / n, std::nullopt,
                   "%");
        for (size_t t = 0; t < kThresholds.size(); ++t)
            emitResult(experiment,
                       "average/prof@" +
                           std::to_string(
                               static_cast<int>(kThresholds[t])),
                       prof_sums[t] / n, std::nullopt, "%");
    };
    emit_series("fig_5_1", [](const ClassificationAccuracy &a) {
        return a.mispredictionAccuracy();
    });
    emit_series("fig_5_2", [](const ClassificationAccuracy &a) {
        return a.correctAccuracy();
    });

    std::printf(
        "paper's shape:\n"
        " - Fig 5.1: profiling beats the FSM at high thresholds; the\n"
        "   advantage shrinks as the threshold drops, and only below\n"
        "   ~60%% does the FSM win on average.\n"
        " - Fig 5.2: the FSM is slightly better at accepting correct\n"
        "   predictions (it never refuses a steadily-correct pc), and\n"
        "   lowering the threshold closes the gap.\n");
    finishBench("bench_fig_5_1_5_2");
    return 0;
}
