/**
 * @file
 * Ablation: the stride-directive heuristic. Section 3.2 proposes
 * "stride efficiency ratio > 50% => stride directive". This sweep
 * varies that cut and measures hybrid-predictor accuracy, validating
 * the paper's 50% heuristic.
 */

#include "bench_util.hh"

#include "predictors/hybrid_predictor.hh"

using namespace vpprof;
using namespace vpprof::bench;

namespace
{

struct Score
{
    uint64_t attempts = 0;
    uint64_t correct = 0;
};

Score
scoreHybrid(const Program &program, const MemoryImage &input)
{
    HybridConfig cfg;
    cfg.stride.numEntries = 128;
    cfg.stride.counterBits = 0;
    cfg.lastValue.numEntries = 512;
    cfg.lastValue.counterBits = 0;
    HybridPredictor predictor(cfg);

    Score s;
    CallbackTraceSink sink([&](const TraceRecord &rec) {
        if (!rec.writesReg)
            return;
        bool tagged = rec.directive != Directive::None;
        Prediction pred = predictor.predict(rec.pc, rec.directive);
        bool correct = pred.hit && pred.value == rec.value;
        if (tagged && pred.hit) {
            ++s.attempts;
            s.correct += correct ? 1 : 0;
        }
        predictor.update(rec.pc, rec.value, correct, rec.directive,
                         tagged);
    });
    Machine machine(program, input);
    machine.run(&sink);
    return s;
}

} // namespace

int
main()
{
    banner("Ablation - stride-directive threshold for the hybrid "
           "predictor",
           "Section 3.2's 'stride efficiency > 50%' steering heuristic");

    const std::vector<double> cuts = {10, 30, 50, 70, 90};

    std::printf("%-10s", "benchmark");
    for (double c : cuts)
        std::printf("   cut=%2.0f%%", c);
    std::printf("   (hybrid accuracy on tagged instructions)\n");

    std::vector<double> sums(cuts.size(), 0.0);
    for (const auto &w : suite().all()) {
        std::string name(w->name());
        MemoryImage input = w->input(0);
        ProfileImage training = trainingProfile(name);

        std::printf("%-10s", name.c_str());
        for (size_t c = 0; c < cuts.size(); ++c) {
            Program program = w->program();
            InserterConfig cfg;
            cfg.accuracyThresholdPercent = 70.0;
            cfg.strideThresholdPercent = cuts[c];
            insertDirectives(program, training, cfg);
            Score s = scoreHybrid(program, input);
            double pct = s.attempts == 0
                ? 0.0 : 100.0 * static_cast<double>(s.correct) /
                            static_cast<double>(s.attempts);
            sums[c] += pct;
            std::printf("    %6.1f", pct);
        }
        std::printf("\n");
    }
    std::printf("%-10s", "average");
    size_t n = suite().all().size();
    for (size_t c = 0; c < cuts.size(); ++c)
        std::printf("    %6.1f", sums[c] / static_cast<double>(n));
    std::printf("\n");

    std::printf("\nexpected: accuracy is flat-topped around the middle "
                "cuts - the\ndistribution of stride efficiency is "
                "bimodal (Figure 2.3), so any cut\nbetween the modes "
                "steers instructions the same way; the paper's 50%% "
                "is\na robust choice rather than a tuned one.\n");
    return 0;
}
