/**
 * @file
 * Ablation: the stride-directive heuristic. Section 3.2 proposes
 * "stride efficiency ratio > 50% => stride directive". This sweep
 * varies that cut and measures hybrid-predictor accuracy, validating
 * the paper's 50% heuristic.
 */

#include "bench_util.hh"

#include "predictors/hybrid_predictor.hh"

using namespace vpprof;
using namespace vpprof::bench;

namespace
{

/** Hybrid accuracy on tagged instructions, as a replayable sink. */
class HybridScore : public TraceSink
{
  public:
    HybridScore()
        : predictor_([] {
              HybridConfig cfg;
              cfg.stride.numEntries = 128;
              cfg.stride.counterBits = 0;
              cfg.lastValue.numEntries = 512;
              cfg.lastValue.counterBits = 0;
              return cfg;
          }())
    {
    }

    void
    record(const TraceRecord &rec) override
    {
        if (!rec.writesReg)
            return;
        bool tagged = rec.directive != Directive::None;
        Prediction pred = predictor_.predict(rec.pc, rec.directive);
        bool correct = pred.hit && pred.value == rec.value;
        if (tagged && pred.hit) {
            ++attempts_;
            correct_ += correct ? 1 : 0;
        }
        predictor_.update(rec.pc, rec.value, correct, rec.directive,
                          tagged);
    }

    double
    pct() const
    {
        return attempts_ == 0
            ? 0.0 : 100.0 * static_cast<double>(correct_)
                        / static_cast<double>(attempts_);
    }

  private:
    HybridPredictor predictor_;
    uint64_t attempts_ = 0;
    uint64_t correct_ = 0;
};

} // namespace

int
main()
{
    banner("Ablation - stride-directive threshold for the hybrid "
           "predictor",
           "Section 3.2's 'stride efficiency > 50%' steering heuristic");

    const std::vector<double> cuts = {10, 30, 50, 70, 90};

    std::printf("%-10s", "benchmark");
    for (double c : cuts)
        std::printf("   cut=%2.0f%%", c);
    std::printf("   (hybrid accuracy on tagged instructions)\n");

    const auto &workloads = suite().all();
    std::vector<std::vector<double>> rows(workloads.size());

    // Every stride-threshold cut scores one fused replay per workload,
    // each behind a directive-override view of its own annotation.
    session().runner().forEach(workloads.size(), [&](size_t i) {
        const Workload &w = *workloads[i];
        std::string name(w.name());
        ProfileImage training = trainingProfile(name);

        std::vector<Program> annotated;
        for (double cut : cuts) {
            Program program = w.program();
            InserterConfig cfg;
            cfg.accuracyThresholdPercent = 70.0;
            cfg.strideThresholdPercent = cut;
            insertDirectives(program, training, cfg);
            annotated.push_back(std::move(program));
        }

        std::vector<HybridScore> scores(cuts.size());
        EvaluatorBank bank;
        for (size_t c = 0; c < cuts.size(); ++c)
            bank.addRecordSink(&scores[c], &annotated[c]);
        session().replayInto(w, 0, bank);

        for (const HybridScore &score : scores)
            rows[i].push_back(score.pct());
    });

    std::vector<double> sums(cuts.size(), 0.0);
    for (size_t i = 0; i < workloads.size(); ++i) {
        std::printf("%-10s", std::string(workloads[i]->name()).c_str());
        for (size_t c = 0; c < cuts.size(); ++c) {
            sums[c] += rows[i][c];
            std::printf("    %6.1f", rows[i][c]);
        }
        std::printf("\n");
    }
    std::printf("%-10s", "average");
    size_t n = workloads.size();
    double avg_min = 0.0, avg_max = 0.0;
    for (size_t c = 0; c < cuts.size(); ++c) {
        double avg = sums[c] / static_cast<double>(n);
        std::printf("    %6.1f", avg);
        emitResult("ablation_stride_threshold",
                   "average/cut@" +
                       std::to_string(static_cast<int>(cuts[c])),
                   avg, std::nullopt, "%");
        avg_min = c == 0 ? avg : std::min(avg_min, avg);
        avg_max = c == 0 ? avg : std::max(avg_max, avg);
    }
    std::printf("\n");
    // Flat-top check: the spread across cuts stays small because the
    // stride-efficiency distribution is bimodal (Figure 2.3).
    emitResult("ablation_stride_threshold", "average/spread",
               avg_max - avg_min, std::nullopt, "pp");

    std::printf("\nexpected: accuracy is flat-topped around the middle "
                "cuts - the\ndistribution of stride efficiency is "
                "bimodal (Figure 2.3), so any cut\nbetween the modes "
                "steers instructions the same way; the paper's 50%% "
                "is\na robust choice rather than a tuned one.\n");
    finishBench("bench_ablation_stride_threshold");
    return 0;
}
