/**
 * @file
 * vpprofd chaos drill: a seeded, reproducible fault schedule against
 * the full serving stack, gating the resilience layer's contracts.
 *
 *  0. PROBE — the probabilistic failpoint schedule is replayed twice
 *     from the same seed and must match draw for draw; its trigger
 *     count is emitted as a 0%-margin perf-gate counter, so a changed
 *     RNG or grammar shows up as a regression, not silent drift.
 *
 *  1. BASELINE — a fault-free daemon serves a deterministic mixed
 *     workload (ping/profile/evaluate/verify over two workloads); the
 *     raw response line of every (client, slot) is recorded.
 *
 *  2. CHAOS — a fresh daemon over the same warm cache with seeded
 *     faults armed on the accept path, the response-write path, the
 *     dispatch path (injected latency) and the trace-cache read path.
 *     Every client calls through callWithRetry (reconnect + seeded
 *     backoff). Gates: ZERO unanswered requests, every response line
 *     BIT-IDENTICAL to the baseline, and the recovery p99 rides the
 *     perf gate (BENCH_chaos.json vs golden/perf/BENCH_chaos.json).
 *
 *  3. SHED — a deliberately tiny daemon (queue 2, quota 1) with
 *     injected dispatch latency. A fixed, no-retry client pipelining
 *     its jobs MUST collect explicit rejections; retrying clients
 *     running the same mixed workload MUST complete 100%.
 *
 * --quick shrinks the request counts and raises the fault rates (the
 * CI smoke under sanitizers); it keeps every correctness gate but
 * skips the RESULTS/BENCH emission, which belongs to the full drill.
 */

#include "bench_util.hh"

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>

#include <unistd.h>

#include "common/failpoint.hh"
#include "daemon/client.hh"
#include "daemon/retry.hh"
#include "daemon/server.hh"

using namespace vpprof;
using namespace vpprof::bench;
using namespace vpprof::daemon;

namespace
{

constexpr int kCallTimeoutMs = 120'000;

struct DrillScale
{
    size_t chaosClients = 6;
    size_t requestsPerClient = 24;
    size_t shedRetryClients = 4;
    size_t shedRequestsPerClient = 6;
    size_t shedFixedJobs = 6;
    const char *faults =
        "daemon.accept:fail%0.05@5,daemon.write:fail%0.05@7,"
        "daemon.dispatch:delay=2%0.25@9,trace_io.read:short%0.01@11";
    bool emitFiles = true;
};

DrillScale
quickScale()
{
    DrillScale s;
    s.chaosClients = 4;
    s.requestsPerClient = 8;
    s.shedRetryClients = 2;
    s.shedRequestsPerClient = 4;
    s.shedFixedJobs = 4;
    // Fewer draws, so higher rates: the faults-injected floor must
    // hold even in the smoke.
    s.faults =
        "daemon.accept:fail%0.1@5,daemon.write:fail%0.1@7,"
        "daemon.dispatch:delay=2%0.5@9,trace_io.read:short%0.02@11";
    s.emitFiles = false;
    return s;
}

std::string
freshSocketPath()
{
    static int counter = 0;
    std::ostringstream os;
    os << "/tmp/vpd_chaos_" << ::getpid() << "_" << counter++
       << ".sock";
    return os.str();
}

struct RunningDaemon
{
    std::unique_ptr<DaemonServer> server;
    std::thread loop;
    int rc = -1;

    explicit RunningDaemon(DaemonConfig cfg)
    {
        cfg.socketPath = freshSocketPath();
        server = std::make_unique<DaemonServer>(std::move(cfg));
        std::string error;
        if (!server->start(&error))
            vpprof_panic("daemon start failed: ", error);
        loop = std::thread([this] { rc = server->run(); });
    }

    DaemonClient
    client()
    {
        DaemonClient c;
        std::string error;
        if (!c.connect(server->config().socketPath, &error))
            vpprof_panic("daemon connect failed: ", error);
        return c;
    }

    int
    stop()
    {
        server->requestShutdown();
        loop.join();
        return rc;
    }
};

double
wallMsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration_cast<
               std::chrono::duration<double, std::milli>>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

double
percentile(std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    size_t idx = static_cast<size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

/**
 * The deterministic mixed workload: request for (client, slot). Only
 * value-deterministic commands (no stats: its counters differ between
 * a clean and a faulted run by design), so the chaos run's responses
 * can be required bit-identical to the baseline's.
 */
Request
mixedRequest(size_t client, size_t slot)
{
    Request req;
    req.id = slot + 1;
    const char *workload = ((client + slot) % 2 == 0) ? "compress"
                                                      : "li";
    switch ((client + slot) % 4) {
      case 0:
        req.cmd = Command::Ping;
        break;
      case 1:
        req.cmd = Command::Profile;
        req.workload = workload;
        break;
      case 2:
        req.cmd = Command::Evaluate;
        req.workload = workload;
        req.threshold = 70.0;
        break;
      default:
        req.cmd = Command::Verify;
        req.workload = workload;
        break;
    }
    return req;
}

/** Phase 0: the fault schedule is a pure function of the seed. */
uint64_t
runDeterminismProbe()
{
    auto &reg = FailpointRegistry::instance();
    auto spec = FailpointRegistry::parseSpec("fail%0.2@42");
    if (!spec)
        vpprof_panic("probe spec did not parse");
    auto draw = [&] {
        reg.arm("chaos.probe", *spec);
        std::vector<bool> fired;
        for (int i = 0; i < 256; ++i)
            fired.push_back(reg.fire("chaos.probe") ==
                            FailpointAction::Fail);
        return fired;
    };
    std::vector<bool> first = draw();
    std::vector<bool> second = draw();
    if (first != second)
        vpprof_panic("probe: the same seed replayed a DIFFERENT fault "
                     "schedule — the drill is not reproducible");
    uint64_t triggered = reg.triggered("chaos.probe");
    reg.reset();
    std::printf("probe: 256 draws at fail%%0.2@42 -> %llu triggers, "
                "schedule replays identically\n\n",
                static_cast<unsigned long long>(triggered));
    return triggered;
}

struct PhaseOutcome
{
    std::vector<double> latenciesMs;
    uint64_t unanswered = 0;
    uint64_t errors = 0;
    uint64_t mismatched = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    DrillScale scale;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            scale = quickScale();
        else
            vpprof_panic("unknown flag '", argv[i],
                         "' (only --quick)");
    }

    banner("vpprofd chaos drill: seeded faults, retrying clients, "
           "bit-identical recovery",
           "beyond the paper -- the resilience layer's acceptance "
           "gates");

    FailpointRegistry::instance().reset();
    uint64_t probe_triggered = runDeterminismProbe();

    const std::string cache_dir =
        std::filesystem::temp_directory_path().string() +
        "/vpprof_bench_chaos";
    std::filesystem::remove_all(cache_dir);

    // ---- Baseline phase (fault-free) -----------------------------
    DaemonConfig cfg;
    cfg.session.jobs = 4;
    cfg.session.traceCacheDir = cache_dir;

    std::printf("baseline: %zu clients x %zu mixed requests, no "
                "faults\n",
                scale.chaosClients, scale.requestsPerClient);
    // expected[client][slot] = the raw response line to reproduce.
    std::vector<std::vector<std::string>> expected(
        scale.chaosClients,
        std::vector<std::string>(scale.requestsPerClient));
    auto wall_t0 = std::chrono::steady_clock::now();
    {
        RunningDaemon baseline(cfg);
        {
            // Warm pass: populate the disk trace cache so both runs
            // serve from the same persisted traces.
            DaemonClient warm = baseline.client();
            uint64_t id = 1;
            for (const char *w : {"compress", "li"})
                for (Command cmd :
                     {Command::Profile, Command::Evaluate,
                      Command::Verify}) {
                    CallResult r = warm.call(id++, cmd, w, 0, 70.0,
                                             false, kCallTimeoutMs);
                    if (!r.ok)
                        vpprof_panic("warm-up ", commandName(cmd), " ",
                                     w, " failed: ", r.error);
                }
        }
        std::vector<std::thread> threads;
        for (size_t c = 0; c < scale.chaosClients; ++c)
            threads.emplace_back([&, c] {
                DaemonClient client = baseline.client();
                for (size_t i = 0; i < scale.requestsPerClient; ++i) {
                    Request req = mixedRequest(c, i);
                    CallResult r = client.call(requestLine(req),
                                               req.id, kCallTimeoutMs);
                    if (!r.ok)
                        vpprof_panic("baseline request failed: ",
                                     r.code, ": ", r.error);
                    expected[c][i] = r.raw;
                }
            });
        for (std::thread &t : threads)
            t.join();
        if (baseline.stop() != 0)
            vpprof_panic("baseline daemon did not drain cleanly");
    }

    // ---- Chaos phase ---------------------------------------------
    std::printf("chaos: same workload, faults %s\n", scale.faults);
    std::vector<PhaseOutcome> per_client(scale.chaosClients);
    uint64_t chaos_faults = 0;
    {
        RunningDaemon chaos(cfg);
        {
            std::string error;
            if (!FailpointRegistry::instance().armList(scale.faults,
                                                       &error))
                vpprof_panic("cannot arm chaos faults: ", error);
        }
        std::vector<std::thread> threads;
        for (size_t c = 0; c < scale.chaosClients; ++c)
            threads.emplace_back([&, c] {
                DaemonClient client = chaos.client();
                PhaseOutcome &out = per_client[c];
                RetryPolicy policy;
                policy.maxAttempts = 10;
                policy.backoffBaseMs = 10;
                policy.backoffMaxMs = 500;
                policy.jitterSeed = 1000 + c;  // per-client, seeded
                for (size_t i = 0; i < scale.requestsPerClient; ++i) {
                    Request req = mixedRequest(c, i);
                    auto t0 = std::chrono::steady_clock::now();
                    CallResult r = client.callWithRetry(
                        req, policy, kCallTimeoutMs);
                    out.latenciesMs.push_back(wallMsSince(t0));
                    if (!r.ok) {
                        if (r.reason == CallReason::DaemonError)
                            ++out.errors;
                        else
                            ++out.unanswered;
                        continue;
                    }
                    if (r.raw != expected[c][i]) {
                        ++out.mismatched;
                        std::printf("MISMATCH client %zu slot %zu:\n"
                                    "  baseline: %s\n"
                                    "  chaos:    %s\n",
                                    c, i, expected[c][i].c_str(),
                                    r.raw.c_str());
                    }
                }
            });
        for (std::thread &t : threads)
            t.join();
        // The armed write/accept faults also hit the drain path;
        // disarm before stopping so the drain's flushes are clean.
        for (const char *site :
             {"daemon.accept", "daemon.write", "daemon.dispatch",
              "trace_io.read"})
            chaos_faults += FailpointRegistry::instance().triggered(site);
        FailpointRegistry::instance().reset();
        if (chaos.stop() != 0)
            vpprof_panic("chaos daemon did not drain cleanly");
    }

    std::vector<double> chaos_latencies;
    uint64_t chaos_unanswered = 0, chaos_errors = 0,
             chaos_mismatched = 0;
    for (const PhaseOutcome &out : per_client) {
        chaos_latencies.insert(chaos_latencies.end(),
                               out.latenciesMs.begin(),
                               out.latenciesMs.end());
        chaos_unanswered += out.unanswered;
        chaos_errors += out.errors;
        chaos_mismatched += out.mismatched;
    }
    std::sort(chaos_latencies.begin(), chaos_latencies.end());
    double chaos_p99 = percentile(chaos_latencies, 0.99);
    const uint64_t chaos_requests =
        scale.chaosClients * scale.requestsPerClient;
    std::printf("chaos: %llu requests, %llu faults injected, "
                "p99 %.2f ms, unanswered %llu, errors %llu, "
                "mismatched %llu\n\n",
                static_cast<unsigned long long>(chaos_requests),
                static_cast<unsigned long long>(chaos_faults),
                chaos_p99,
                static_cast<unsigned long long>(chaos_unanswered),
                static_cast<unsigned long long>(chaos_errors),
                static_cast<unsigned long long>(chaos_mismatched));

    // ---- Shed phase ----------------------------------------------
    // queue 2 / quota 1 under injected dispatch latency: the fixed
    // client MUST be rejected; the retrying clients MUST complete.
    std::printf("shed: queue=2 quota=1, 1 fixed client x %zu pipelined "
                "jobs vs %zu retrying clients x %zu requests\n",
                scale.shedFixedJobs, scale.shedRetryClients,
                scale.shedRequestsPerClient);
    uint64_t shed_fixed_rejected = 0, shed_fixed_unanswered = 0;
    uint64_t shed_retry_completed = 0, shed_retry_unanswered = 0;
    {
        DaemonConfig shed_cfg;
        shed_cfg.session.jobs = 1;
        shed_cfg.session.traceCacheDir = cache_dir;  // warm
        shed_cfg.maxQueue = 2;
        shed_cfg.maxInflightPerClient = 1;
        RunningDaemon shed(shed_cfg);
        {
            std::string error;
            if (!FailpointRegistry::instance().armList(
                    "daemon.dispatch:delay=25", &error))
                vpprof_panic("cannot arm shed delay: ", error);
        }

        std::thread fixed_thread([&] {
            DaemonClient fixed = shed.client();
            std::string batch;
            for (size_t i = 0; i < scale.shedFixedJobs; ++i) {
                Request req;
                req.id = i + 1;
                req.cmd = Command::Profile;
                req.workload = (i % 2 == 0) ? "compress" : "li";
                if (i > 0)
                    batch += "\n";
                batch += requestLine(req);
            }
            if (!fixed.sendLine(batch)) {
                shed_fixed_unanswered = scale.shedFixedJobs;
                return;
            }
            std::set<uint64_t> pending;
            for (size_t i = 0; i < scale.shedFixedJobs; ++i)
                pending.insert(i + 1);
            while (!pending.empty()) {
                std::optional<std::string> line =
                    fixed.readLine(kCallTimeoutMs);
                if (!line)
                    break;
                std::optional<report::JsonValue> doc =
                    report::parseJson(*line);
                if (!doc || doc->get("event"))
                    continue;
                uint64_t id =
                    static_cast<uint64_t>(doc->numberOr("id", 0));
                if (!pending.erase(id))
                    continue;
                std::string code = doc->stringOr("code", "");
                if (code == "overloaded" || code == "quota")
                    ++shed_fixed_rejected;
            }
            shed_fixed_unanswered = pending.size();
        });

        std::vector<uint64_t> completed(scale.shedRetryClients, 0);
        std::vector<uint64_t> unanswered(scale.shedRetryClients, 0);
        std::vector<std::thread> threads;
        for (size_t c = 0; c < scale.shedRetryClients; ++c)
            threads.emplace_back([&, c] {
                DaemonClient client = shed.client();
                RetryPolicy policy;
                policy.maxAttempts = 50;
                policy.backoffBaseMs = 5;
                policy.backoffMaxMs = 200;
                policy.jitterSeed = 2000 + c;
                for (size_t i = 0; i < scale.shedRequestsPerClient;
                     ++i) {
                    Request req = mixedRequest(c, i);
                    CallResult r = client.callWithRetry(
                        req, policy, kCallTimeoutMs);
                    if (r.ok)
                        ++completed[c];
                    else
                        ++unanswered[c];
                }
            });
        fixed_thread.join();
        for (std::thread &t : threads)
            t.join();
        FailpointRegistry::instance().reset();
        if (shed.stop() != 0)
            vpprof_panic("shed daemon did not drain cleanly");
        for (size_t c = 0; c < scale.shedRetryClients; ++c) {
            shed_retry_completed += completed[c];
            shed_retry_unanswered += unanswered[c];
        }
    }
    const uint64_t shed_retry_requests =
        scale.shedRetryClients * scale.shedRequestsPerClient;
    double shed_completed_pct =
        shed_retry_requests == 0
            ? 0.0
            : 100.0 * static_cast<double>(shed_retry_completed) /
                  static_cast<double>(shed_retry_requests);
    std::printf("shed: fixed client rejected %llu/%zu, retrying "
                "clients completed %llu/%llu (%.0f%%)\n\n",
                static_cast<unsigned long long>(shed_fixed_rejected),
                scale.shedFixedJobs,
                static_cast<unsigned long long>(shed_retry_completed),
                static_cast<unsigned long long>(shed_retry_requests),
                shed_completed_pct);

    double wall_ms = wallMsSince(wall_t0);
    std::filesystem::remove_all(cache_dir);

    // ---- Report + gates ------------------------------------------
    if (scale.emitFiles) {
        emitResult("chaos", "probe/triggered",
                   static_cast<double>(probe_triggered));
        emitResult("chaos", "chaos/p99_ms", chaos_p99, std::nullopt,
                   "ms");
        emitResult("chaos", "chaos/faults_injected",
                   static_cast<double>(chaos_faults));
        emitResult("chaos", "chaos/unanswered",
                   static_cast<double>(chaos_unanswered));
        emitResult("chaos", "chaos/errors",
                   static_cast<double>(chaos_errors));
        emitResult("chaos", "chaos/mismatched",
                   static_cast<double>(chaos_mismatched));
        emitResult("chaos", "shed/fixed_rejected",
                   static_cast<double>(shed_fixed_rejected));
        emitResult("chaos", "shed/retry_completed_pct",
                   shed_completed_pct, std::nullopt, "%");
        emitResult("chaos", "shed/unanswered",
                   static_cast<double>(shed_retry_unanswered +
                                       shed_fixed_unanswered));
        flushResults("bench_daemon_chaos");

        // Timing keys (wall_ms/p99) ride the perf gate's noise
        // margin; every other key is a deterministic count gated at
        // 0%. The nondeterministic fault/rejection tallies stay in
        // RESULTS (bounded by golden/shape/chaos.json), not here.
        std::ofstream json("BENCH_chaos.json", std::ios::trunc);
        json << "{\n"
             << "  \"bench_daemon_chaos\": {\n"
             << "    \"wall_ms\": " << wall_ms << ",\n"
             << "    \"p99\": " << chaos_p99 << ",\n"
             << "    \"probe_triggered\": " << probe_triggered
             << ",\n"
             << "    \"chaos_requests\": " << chaos_requests << ",\n"
             << "    \"chaos_unanswered\": " << chaos_unanswered
             << ",\n"
             << "    \"chaos_mismatched\": " << chaos_mismatched
             << ",\n"
             << "    \"shed_requests\": " << shed_retry_requests
             << ",\n"
             << "    \"shed_unanswered\": "
             << shed_retry_unanswered + shed_fixed_unanswered << "\n"
             << "  }\n"
             << "}\n";
        json.close();
        std::printf("-> BENCH_chaos.json\n");
    }

    bool ok = true;
    if (chaos_unanswered > 0 || chaos_errors > 0) {
        std::printf("FAIL: chaos run left %llu unanswered, %llu "
                    "errors (gate: 0/0)\n",
                    static_cast<unsigned long long>(chaos_unanswered),
                    static_cast<unsigned long long>(chaos_errors));
        ok = false;
    }
    if (chaos_mismatched > 0) {
        std::printf("FAIL: %llu chaos responses differ from the "
                    "fault-free baseline (gate: bit-identical)\n",
                    static_cast<unsigned long long>(chaos_mismatched));
        ok = false;
    }
    if (chaos_faults == 0) {
        std::printf("FAIL: the chaos run injected no faults — the "
                    "drill proved nothing\n");
        ok = false;
    }
    if (shed_fixed_rejected == 0) {
        std::printf("FAIL: the fixed client was never rejected — the "
                    "shed phase exercised nothing\n");
        ok = false;
    }
    if (shed_retry_completed != shed_retry_requests ||
        shed_fixed_unanswered > 0) {
        std::printf("FAIL: retrying clients completed %llu/%llu, "
                    "fixed client unanswered %llu (gate: 100%% / 0)\n",
                    static_cast<unsigned long long>(
                        shed_retry_completed),
                    static_cast<unsigned long long>(
                        shed_retry_requests),
                    static_cast<unsigned long long>(
                        shed_fixed_unanswered));
        ok = false;
    }
    std::printf("%s: %llu faults, recovery p99 %.2f ms, 0 unanswered, "
                "bit-identical under chaos\n",
                ok ? "PASS" : "FAIL",
                static_cast<unsigned long long>(chaos_faults),
                chaos_p99);
    return ok ? 0 : 1;
}
