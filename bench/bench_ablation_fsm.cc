/**
 * @file
 * Ablation: saturating-counter width. The paper's FSM baseline uses a
 * 2-bit counter; this sweep shows how 1/2/3-bit counters trade
 * misprediction elimination against correct-prediction coverage,
 * locating the baseline inside its design space.
 */

#include "bench_util.hh"

#include "predictors/saturating_classifier.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Ablation - FSM counter width (classification accuracy, "
           "infinite tables)",
           "design-space context for the Figures 5.1/5.2 baseline");

    const std::vector<std::pair<unsigned, unsigned>> configs = {
        {1, 0}, {2, 1}, {3, 3},
    };

    std::printf("%-10s", "benchmark");
    for (auto [bits, init] : configs)
        std::printf("   %u-bit misp / corr", bits);
    std::printf("\n");

    const auto &workloads = suite().all();
    std::vector<std::vector<ClassificationAccuracy>> rows(
        workloads.size());

    // All counter widths consume one batched replay per workload:
    // each trace block decodes once and fans to every evaluator.
    session().runner().forEach(workloads.size(), [&](size_t i) {
        const Workload &w = *workloads[i];
        std::vector<SaturatingClassifier> classifiers;
        std::vector<ClassificationEvaluator> evals;
        classifiers.reserve(configs.size());
        evals.reserve(configs.size());
        EvaluatorBank bank;
        for (auto [bits, init] : configs) {
            classifiers.emplace_back(bits, init);
            evals.emplace_back(classifiers.back());
            bank.addBlockSink(&evals.back());
        }
        session().replayInto(w, 0, bank);
        for (const ClassificationEvaluator &eval : evals)
            rows[i].push_back(eval.result());
    });

    std::vector<double> misp_sum(configs.size(), 0.0);
    std::vector<double> corr_sum(configs.size(), 0.0);
    for (size_t i = 0; i < workloads.size(); ++i) {
        std::printf("%-10s",
                    std::string(workloads[i]->name()).c_str());
        for (size_t c = 0; c < configs.size(); ++c) {
            const ClassificationAccuracy &acc = rows[i][c];
            std::printf("      %5.1f / %5.1f",
                        acc.mispredictionAccuracy(),
                        acc.correctAccuracy());
            misp_sum[c] += acc.mispredictionAccuracy();
            corr_sum[c] += acc.correctAccuracy();
        }
        std::printf("\n");
    }
    std::printf("%-10s", "average");
    size_t n = workloads.size();
    for (size_t c = 0; c < configs.size(); ++c) {
        std::printf("      %5.1f / %5.1f",
                    misp_sum[c] / static_cast<double>(n),
                    corr_sum[c] / static_cast<double>(n));
        std::string bits = std::to_string(configs[c].first);
        emitResult("ablation_fsm", "average/misp@" + bits + "bit",
                   misp_sum[c] / static_cast<double>(n), std::nullopt,
                   "%");
        emitResult("ablation_fsm", "average/corr@" + bits + "bit",
                   corr_sum[c] / static_cast<double>(n), std::nullopt,
                   "%");
    }
    std::printf("\n");

    std::printf("\nexpected: wider counters are slower to abandon a "
                "pc, so they accept\nmore correct predictions but "
                "eliminate fewer mispredictions; the 2-bit\npoint is "
                "the classic compromise the paper baselines against.\n");
    finishBench("bench_ablation_fsm");
    return 0;
}
