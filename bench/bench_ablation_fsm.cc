/**
 * @file
 * Ablation: saturating-counter width. The paper's FSM baseline uses a
 * 2-bit counter; this sweep shows how 1/2/3-bit counters trade
 * misprediction elimination against correct-prediction coverage,
 * locating the baseline inside its design space.
 */

#include "bench_util.hh"

#include "predictors/saturating_classifier.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Ablation - FSM counter width (classification accuracy, "
           "infinite tables)",
           "design-space context for the Figures 5.1/5.2 baseline");

    const std::vector<std::pair<unsigned, unsigned>> configs = {
        {1, 0}, {2, 1}, {3, 3},
    };

    std::printf("%-10s", "benchmark");
    for (auto [bits, init] : configs)
        std::printf("   %u-bit misp / corr", bits);
    std::printf("\n");

    std::vector<double> misp_sum(configs.size(), 0.0);
    std::vector<double> corr_sum(configs.size(), 0.0);
    for (const auto &w : suite().all()) {
        MemoryImage input = w->input(0);
        std::printf("%-10s", std::string(w->name()).c_str());
        for (size_t c = 0; c < configs.size(); ++c) {
            SaturatingClassifier fsm(configs[c].first,
                                     configs[c].second);
            ClassificationAccuracy acc =
                evaluateClassification(w->program(), input, fsm);
            std::printf("      %5.1f / %5.1f", acc.mispredictionAccuracy(),
                        acc.correctAccuracy());
            misp_sum[c] += acc.mispredictionAccuracy();
            corr_sum[c] += acc.correctAccuracy();
        }
        std::printf("\n");
    }
    std::printf("%-10s", "average");
    size_t n = suite().all().size();
    for (size_t c = 0; c < configs.size(); ++c)
        std::printf("      %5.1f / %5.1f",
                    misp_sum[c] / static_cast<double>(n),
                    corr_sum[c] / static_cast<double>(n));
    std::printf("\n");

    std::printf("\nexpected: wider counters are slower to abandon a "
                "pc, so they accept\nmore correct predictions but "
                "eliminate fewer mispredictions; the 2-bit\npoint is "
                "the classic compromise the paper baselines against.\n");
    return 0;
}
