/**
 * @file
 * Ablation: predictor families. Compares last-value, stride, order-2
 * FCM (context) and the directive-steered hybrid on every workload —
 * situating the paper's two predictors in the broader design space
 * its successors explored.
 */

#include "bench_util.hh"

#include "predictors/context_predictor.hh"
#include "predictors/hybrid_predictor.hh"
#include "predictors/last_value_predictor.hh"
#include "predictors/stride_predictor.hh"

using namespace vpprof;
using namespace vpprof::bench;

namespace
{

/** Dynamic accuracy of one predictor over every value producer. */
class PredictorScore : public TraceSink
{
  public:
    PredictorScore(ValuePredictor &predictor, bool steer_by_directive)
        : predictor_(predictor), steer_(steer_by_directive)
    {
    }

    void
    record(const TraceRecord &rec) override
    {
        if (!rec.writesReg)
            return;
        Directive hint = steer_ ? rec.directive : Directive::None;
        Prediction pred = predictor_.predict(rec.pc, hint);
        bool ok = pred.hit && pred.value == rec.value;
        if (pred.hit) {
            ++attempts_;
            correct_ += ok ? 1 : 0;
        }
        bool allocate = steer_ ? rec.directive != Directive::None
                               : true;
        predictor_.update(rec.pc, rec.value, ok, hint, allocate);
    }

    double
    pct() const
    {
        return attempts_ == 0
            ? 0.0 : 100.0 * static_cast<double>(correct_)
                        / static_cast<double>(attempts_);
    }

  private:
    ValuePredictor &predictor_;
    bool steer_;
    uint64_t attempts_ = 0;
    uint64_t correct_ = 0;
};

} // namespace

int
main()
{
    banner("Ablation - predictor families (infinite tables, "
           "accuracy on attempted predictions)",
           "design-space context for the paper's last-value/stride "
           "choice");

    std::printf("%-10s %10s %8s %8s %8s\n", "benchmark", "last-value",
                "stride", "fcm-o2", "hybrid");

    const auto &workloads = suite().all();
    std::vector<std::array<double, 4>> rows(workloads.size());

    // All four predictor families score one fused replay per workload
    // (the hybrid behind a directive-override view of the annotated
    // program; the others see the raw, directive-free trace).
    session().runner().forEach(workloads.size(), [&](size_t i) {
        const Workload &w = *workloads[i];
        std::string name(w.name());

        PredictorConfig inf;
        inf.numEntries = 0;
        inf.counterBits = 0;
        LastValuePredictor lvp(inf);
        StridePredictor sp(inf);
        ContextConfig ctx;
        ctx.level1 = inf;
        ContextPredictor fcm(ctx);

        HybridConfig hybrid_cfg;
        hybrid_cfg.stride.numEntries = 0;
        hybrid_cfg.stride.counterBits = 0;
        hybrid_cfg.lastValue.numEntries = 0;
        hybrid_cfg.lastValue.counterBits = 0;
        HybridPredictor hybrid(hybrid_cfg);
        Program annotated = annotatedAt(name, 70.0);

        PredictorScore lvp_score(lvp, false);
        PredictorScore sp_score(sp, false);
        PredictorScore fcm_score(fcm, false);
        PredictorScore hybrid_score(hybrid, true);

        // One batched pass; the hybrid's slot sees the annotated
        // program's directive column, the rest see the raw trace.
        EvaluatorBank bank;
        bank.addRecordSink(&lvp_score);
        bank.addRecordSink(&sp_score);
        bank.addRecordSink(&fcm_score);
        bank.addRecordSink(&hybrid_score, &annotated);
        session().replayInto(w, 0, bank);
        rows[i] = {lvp_score.pct(), sp_score.pct(), fcm_score.pct(),
                   hybrid_score.pct()};
    });

    double sums[4] = {};
    for (size_t i = 0; i < workloads.size(); ++i) {
        std::printf("%-10s %9.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                    std::string(workloads[i]->name()).c_str(),
                    rows[i][0], rows[i][1], rows[i][2], rows[i][3]);
        for (int c = 0; c < 4; ++c)
            sums[c] += rows[i][c];
    }
    size_t n = workloads.size();
    std::printf("%-10s %9.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "average",
                sums[0] / static_cast<double>(n),
                sums[1] / static_cast<double>(n),
                sums[2] / static_cast<double>(n),
                sums[3] / static_cast<double>(n));
    const char *families[4] = {"last_value", "stride", "fcm", "hybrid"};
    for (int c = 0; c < 4; ++c)
        emitResult("ablation_predictors",
                   std::string("average/") + families[c],
                   sums[c] / static_cast<double>(n), std::nullopt, "%");

    std::printf(
        "\nexpected: stride beats last-value almost everywhere "
        "(a wrong stride can\nbreak a repeating pattern, so the "
        "dominance is not strict);\nthe order-2 FCM wins on period-k "
        "sequences "
        "(interpreter decode\nstreams) but needs its context to "
        "repeat; the hybrid's accuracy on\ntagged instructions is the "
        "highest of all because profiling already\nfiltered its "
        "stream.\n");
    finishBench("bench_ablation_predictors");
    return 0;
}
