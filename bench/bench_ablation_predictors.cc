/**
 * @file
 * Ablation: predictor families. Compares last-value, stride, order-2
 * FCM (context) and the directive-steered hybrid on every workload —
 * situating the paper's two predictors in the broader design space
 * its successors explored.
 */

#include "bench_util.hh"

#include "predictors/context_predictor.hh"
#include "predictors/hybrid_predictor.hh"
#include "predictors/last_value_predictor.hh"
#include "predictors/stride_predictor.hh"

using namespace vpprof;
using namespace vpprof::bench;

namespace
{

/** Dynamic accuracy of one predictor over every value producer. */
double
scorePredictor(const Workload &w, ValuePredictor &predictor,
               bool steer_by_directive, const Program *annotated)
{
    uint64_t attempts = 0, correct = 0;
    CallbackTraceSink sink([&](const TraceRecord &rec) {
        if (!rec.writesReg)
            return;
        Directive hint = steer_by_directive ? rec.directive
                                            : Directive::None;
        Prediction pred = predictor.predict(rec.pc, hint);
        bool ok = pred.hit && pred.value == rec.value;
        if (pred.hit) {
            ++attempts;
            correct += ok ? 1 : 0;
        }
        bool allocate = steer_by_directive
            ? rec.directive != Directive::None : true;
        predictor.update(rec.pc, rec.value, ok, hint, allocate);
    });
    const Program &program = annotated ? *annotated : w.program();
    Machine machine(program, w.input(0));
    machine.run(&sink, w.maxInstructions());
    return attempts == 0
        ? 0.0 : 100.0 * static_cast<double>(correct)
                    / static_cast<double>(attempts);
}

} // namespace

int
main()
{
    banner("Ablation - predictor families (infinite tables, "
           "accuracy on attempted predictions)",
           "design-space context for the paper's last-value/stride "
           "choice");

    std::printf("%-10s %10s %8s %8s %8s\n", "benchmark", "last-value",
                "stride", "fcm-o2", "hybrid");

    double sums[4] = {};
    for (const auto &w : suite().all()) {
        std::string name(w->name());

        PredictorConfig inf;
        inf.numEntries = 0;
        inf.counterBits = 0;
        LastValuePredictor lvp(inf);
        StridePredictor sp(inf);
        ContextConfig ctx;
        ctx.level1 = inf;
        ContextPredictor fcm(ctx);

        HybridConfig hybrid_cfg;
        hybrid_cfg.stride.numEntries = 0;
        hybrid_cfg.stride.counterBits = 0;
        hybrid_cfg.lastValue.numEntries = 0;
        hybrid_cfg.lastValue.counterBits = 0;
        HybridPredictor hybrid(hybrid_cfg);
        Program annotated = annotatedAt(name, 70.0);

        double scores[4] = {
            scorePredictor(*w, lvp, false, nullptr),
            scorePredictor(*w, sp, false, nullptr),
            scorePredictor(*w, fcm, false, nullptr),
            scorePredictor(*w, hybrid, true, &annotated),
        };
        std::printf("%-10s %9.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                    name.c_str(), scores[0], scores[1], scores[2],
                    scores[3]);
        for (int i = 0; i < 4; ++i)
            sums[i] += scores[i];
    }
    size_t n = suite().all().size();
    std::printf("%-10s %9.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "average",
                sums[0] / static_cast<double>(n),
                sums[1] / static_cast<double>(n),
                sums[2] / static_cast<double>(n),
                sums[3] / static_cast<double>(n));

    std::printf(
        "\nexpected: stride beats last-value almost everywhere "
        "(a wrong stride can\nbreak a repeating pattern, so the "
        "dominance is not strict);\nthe order-2 FCM wins on period-k "
        "sequences "
        "(interpreter decode\nstreams) but needs its context to "
        "repeat; the hybrid's accuracy on\ntagged instructions is the "
        "highest of all because profiling already\nfiltered its "
        "stream.\n");
    return 0;
}
