/**
 * @file
 * Table 2.1 — value prediction accuracy of the stride (S) and
 * last-value (L) predictors, by instruction category, for the integer
 * suite and for the FP benchmark's initialization and computation
 * phases.
 */

#include "bench_util.hh"

#include "common/text_table.hh"

using namespace vpprof;
using namespace vpprof::bench;

namespace
{

/** Accuracy row over a set of images, for one category. */
ClassAccuracy
sumOver(const std::vector<const ProfileImage *> &images, OpClass cls)
{
    ClassAccuracy total;
    for (const ProfileImage *img : images) {
        ClassAccuracy one = accuracyOfClass(*img, cls);
        total.attempts += one.attempts;
        total.strideCorrect += one.strideCorrect;
        total.lastValueCorrect += one.lastValueCorrect;
    }
    return total;
}

void
printRow(const char *label, const std::vector<const ProfileImage *> &set,
         OpClass alu, OpClass load)
{
    ClassAccuracy a = sumOver(set, alu);
    ClassAccuracy l = sumOver(set, load);
    std::printf("%-26s | %5.0f %5.0f | %5.0f %5.0f\n", label,
                a.stridePct(), a.lastValuePct(), l.stridePct(),
                l.lastValuePct());
}

} // namespace

int
main()
{
    banner("Table 2.1 - value prediction accuracy [%]",
           "Gabbay & Mendelson, MICRO-30 1997, Table 2.1");

    // Profile every workload on all five inputs (matching the paper's
    // whole-suite measurement).
    std::vector<const ProfileImage *> int_images;
    for (const auto &w : suite().all()) {
        if (w->isFloatingPoint())
            continue;
        for (size_t i = 0; i < w->numInputSets(); ++i)
            int_images.push_back(
                &cachedProfile(std::string(w->name()), i));
    }

    // FP benchmark split into init/computation phases.
    const Workload *mgrid = suite().find("mgrid");
    std::vector<PhasedProfiles> phased(mgrid->numInputSets());
    session().runner().forEach(phased.size(), [&](size_t i) {
        phased[i] = session().collectPhasedProfile(*mgrid, i);
    });
    std::vector<const ProfileImage *> fp_init, fp_comp;
    for (const PhasedProfiles &p : phased) {
        fp_init.push_back(&p.init);
        fp_comp.push_back(&p.compute);
    }

    std::printf("%-26s | %11s | %11s\n", "", "ALU  S     L",
                "loads S    L");
    std::printf("---------------------------+-------------+------------"
                "-\n");
    printRow("Spec-int95 (integer)", int_images, OpClass::IntAlu,
             OpClass::IntLoad);
    printRow("Spec-fp95 init (FP ops)", fp_init, OpClass::FpAlu,
             OpClass::FpLoad);
    printRow("Spec-fp95 comp (FP ops)", fp_comp, OpClass::FpAlu,
             OpClass::FpLoad);
    printRow("Spec-fp95 init (int ops)", fp_init, OpClass::IntAlu,
             OpClass::IntLoad);
    printRow("Spec-fp95 comp (int ops)", fp_comp, OpClass::IntAlu,
             OpClass::IntLoad);

    auto emitRow = [](const char *prefix,
                      const std::vector<const ProfileImage *> &set,
                      OpClass alu, OpClass load,
                      std::optional<double> alu_s,
                      std::optional<double> alu_l,
                      std::optional<double> load_s,
                      std::optional<double> load_l) {
        ClassAccuracy a = sumOver(set, alu);
        ClassAccuracy l = sumOver(set, load);
        std::string base(prefix);
        emitResult("table_2_1", base + "/alu_stride_pct", a.stridePct(),
                   alu_s, "%");
        emitResult("table_2_1", base + "/alu_last_value_pct",
                   a.lastValuePct(), alu_l, "%");
        emitResult("table_2_1", base + "/load_stride_pct",
                   l.stridePct(), load_s, "%");
        emitResult("table_2_1", base + "/load_last_value_pct",
                   l.lastValuePct(), load_l, "%");
    };
    emitRow("spec_int", int_images, OpClass::IntAlu, OpClass::IntLoad,
            48.0, 50.0, 61.0, 53.0);
    emitRow("fp_init_fp_ops", fp_init, OpClass::FpAlu, OpClass::FpLoad,
            70.0, 66.0, 52.0, 47.0);
    emitRow("fp_comp_fp_ops", fp_comp, OpClass::FpAlu, OpClass::FpLoad,
            63.0, 37.0, 96.0, 23.0);
    emitRow("fp_init_int_ops", fp_init, OpClass::IntAlu,
            OpClass::IntLoad, std::nullopt, std::nullopt, std::nullopt,
            std::nullopt);
    emitRow("fp_comp_int_ops", fp_comp, OpClass::IntAlu,
            OpClass::IntLoad, 46.0, 44.0, 29.0, 28.0);

    std::printf(
        "\npaper (Table 2.1, percent, S=stride L=last-value):\n"
        "  Spec-int95:            ALU 48/50, loads 61/53\n"
        "  Spec-fp95 init phase:  70/66, 52/47 (categories as printed)\n"
        "  Spec-fp95 comp phase:  63/37, 96/23, 46/44, 29/28\n"
        "\nexpected shape: both predictors land mid-range (~30-70%%) on\n"
        "integer code with S >= L overall; the FP init phase is highly\n"
        "stride-predictable for FP loads (S >> L); the FP compute phase\n"
        "is harder for both.\n");
    finishBench("bench_table_2_1");
    return 0;
}
