/**
 * @file
 * Ablation: prediction-table geometry. The Figures 5.3/5.4 result
 * depends on capacity pressure; this sweep varies the stride table
 * from 128 to 4096 entries and shows where profile-guided allocation
 * stops mattering (once the whole working set fits).
 */

#include "bench_util.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Ablation - prediction table geometry (profile@90 vs FSM)",
           "capacity-sensitivity of Figures 5.3/5.4");

    const std::vector<size_t> sizes = {128, 512, 2048, 4096};

    std::printf("%-10s", "benchmark");
    for (size_t s : sizes)
        std::printf("     %6zu", s);
    std::printf("   (d correct %% at each size)\n");

    for (const auto &w : suite().all()) {
        std::string name(w->name());
        MemoryImage input = w->input(0);
        Program annotated = annotatedAt(name, 90.0);

        std::printf("%-10s", name.c_str());
        for (size_t entries : sizes) {
            PredictorConfig fsm_cfg = paperFiniteConfig(true);
            fsm_cfg.numEntries = entries;
            PredictorConfig prof_cfg = paperFiniteConfig(false);
            prof_cfg.numEntries = entries;

            FiniteTableStats fsm = evaluateFiniteTable(
                w->program(), input, VpPolicy::Fsm, fsm_cfg);
            FiniteTableStats prof = evaluateFiniteTable(
                annotated, input, VpPolicy::Profile, prof_cfg);
            double d = fsm.correctTaken == 0
                ? 0.0
                : 100.0 * (static_cast<double>(prof.correctTaken) /
                               static_cast<double>(fsm.correctTaken) -
                           1.0);
            std::printf("    %+6.1f%%", d);
        }
        std::printf("\n");
    }

    std::printf("\nexpected: the profile-guided advantage in correct "
                "predictions is\nlargest for small tables (allocation "
                "filtering buys capacity) and decays\nas the table "
                "grows; with 4096 entries nearly every working set "
                "fits and\nthe FSM's broader coverage wins back "
                "ground.\n");
    return 0;
}
