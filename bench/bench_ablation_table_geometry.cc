/**
 * @file
 * Ablation: prediction-table geometry. The Figures 5.3/5.4 result
 * depends on capacity pressure; this sweep varies the stride table
 * from 128 to 4096 entries and shows where profile-guided allocation
 * stops mattering (once the whole working set fits).
 */

#include "bench_util.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Ablation - prediction table geometry (profile@90 vs FSM)",
           "capacity-sensitivity of Figures 5.3/5.4");

    const std::vector<size_t> sizes = {128, 512, 2048, 4096};

    std::printf("%-10s", "benchmark");
    for (size_t s : sizes)
        std::printf("     %6zu", s);
    std::printf("   (d correct %% at each size)\n");

    const auto &workloads = suite().all();
    std::vector<std::vector<double>> deltas(workloads.size());

    // Every geometry (FSM and profile flavors) consumes one fused
    // replay per workload.
    session().runner().forEach(workloads.size(), [&](size_t i) {
        const Workload &w = *workloads[i];
        std::string name(w.name());
        Program base = w.program();
        Program annotated = annotatedAt(name, 90.0);

        std::vector<FiniteTableEvaluator> evals;
        evals.reserve(2 * sizes.size());
        EvaluatorBank bank;
        for (size_t entries : sizes) {
            PredictorConfig fsm_cfg = paperFiniteConfig(true);
            fsm_cfg.numEntries = entries;
            PredictorConfig prof_cfg = paperFiniteConfig(false);
            prof_cfg.numEntries = entries;

            evals.emplace_back(VpPolicy::Fsm, fsm_cfg);
            bank.addBlockSink(&evals.back(), &base);
            evals.emplace_back(VpPolicy::Profile, prof_cfg);
            bank.addBlockSink(&evals.back(), &annotated);
        }
        session().replayInto(w, 0, bank);

        for (size_t s = 0; s < sizes.size(); ++s) {
            FiniteTableStats fsm = evals[2 * s].result();
            FiniteTableStats prof = evals[2 * s + 1].result();
            deltas[i].push_back(
                fsm.correctTaken == 0
                    ? 0.0
                    : 100.0 *
                          (static_cast<double>(prof.correctTaken) /
                               static_cast<double>(fsm.correctTaken) -
                           1.0));
        }
    });

    for (size_t i = 0; i < workloads.size(); ++i) {
        std::printf("%-10s", std::string(workloads[i]->name()).c_str());
        for (double d : deltas[i])
            std::printf("    %+6.1f%%", d);
        std::printf("\n");
    }
    for (size_t s = 0; s < sizes.size(); ++s) {
        double sum = 0.0;
        for (size_t i = 0; i < workloads.size(); ++i)
            sum += deltas[i][s];
        emitResult("ablation_table_geometry",
                   "average/d_correct@" + std::to_string(sizes[s]),
                   sum / static_cast<double>(workloads.size()),
                   std::nullopt, "%");
    }

    std::printf("\nexpected: the profile-guided advantage in correct "
                "predictions is\nlargest for small tables (allocation "
                "filtering buys capacity) and decays\nas the table "
                "grows; with 4096 entries nearly every working set "
                "fits and\nthe FSM's broader coverage wins back "
                "ground.\n");
    finishBench("bench_ablation_table_geometry");
    return 0;
}
