/**
 * @file
 * Extension experiment: basic-block scheduling freedom from profiling
 * — Section 6's "effect of the profiling information on the
 * scheduling of instructions within a basic block".
 *
 * For every workload: the number of basic blocks, the aggregate
 * minimum schedule length (sum of per-block dependence-chain lengths)
 * before annotation, and the same with directive-tagged producers'
 * out-edges collapsed — the slack a VP-aware scheduler gains.
 */

#include "bench_util.hh"

#include "compiler/cfg.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Extension - basic-block schedule lengths, plain vs "
           "VP-aware",
           "Section 6 future work: scheduling within a basic block");

    std::printf("%-10s %8s %10s %12s %10s\n", "benchmark", "blocks",
                "plain", "collapsed", "slack");

    for (const auto &w : suite().all()) {
        std::string name(w->name());
        Program annotated = annotatedAt(name, 70.0);

        uint64_t plain = 0, collapsed = 0;
        size_t blocks = 0;
        for (const BlockSchedule &s : analyzeSchedules(annotated)) {
            plain += s.chainLength;
            collapsed += s.collapsedChainLength;
            ++blocks;
        }
        double slack = 100.0 * (1.0 - static_cast<double>(collapsed) /
                                          static_cast<double>(plain));
        std::printf("%-10s %8zu %10llu %12llu %9.1f%%\n", name.c_str(),
                    blocks, static_cast<unsigned long long>(plain),
                    static_cast<unsigned long long>(collapsed), slack);
        emitResult("block_schedule", name + "/slack_pct", slack,
                   std::nullopt, "%");
    }

    std::printf(
        "\nexpected: every benchmark gains schedule slack from its "
        "tagged\ninstructions; the highly predictable ones (m88ksim, "
        "li, mgrid) gain the\nmost, the hash-bound compress the "
        "least — mirroring Table 5.2's ILP\nordering at the "
        "basic-block granularity.\n");
    finishBench("bench_block_schedule");
    return 0;
}
