/**
 * @file
 * Extension experiment: dataflow critical paths with and without a
 * value-prediction oracle — the quantitative backbone of the paper's
 * introduction ("the limits of true-data dependencies can be
 * exceeded") and of its Section 6 critical-path future work.
 *
 * For every workload: the plain dataflow-limit ILP, the ILP with
 * correctly-predicted edges collapsed, and the hottest static
 * instructions on the plain critical path (the ones a profile-guided
 * compiler should target).
 */

#include "bench_util.hh"

#include "ilp/critical_path.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Extension - dataflow critical path, plain vs VP oracle",
           "quantifies 'exceeding the dataflow limit' per benchmark");

    std::printf("%-10s %12s %10s %12s %10s %9s\n", "benchmark",
                "path", "df-ILP", "path w/ VP", "df-ILP", "shorter");

    const auto &workloads = suite().all();
    struct Row
    {
        CriticalPathResult base, vp;
    };
    std::vector<Row> rows(workloads.size());

    // Plain and oracle analyzers consume one fused replay of the
    // cached trace per workload.
    session().runner().forEach(workloads.size(), [&](size_t i) {
        const Workload &w = *workloads[i];
        CriticalPathAnalyzer plain;
        CriticalPathConfig cfg;
        cfg.collapseCorrectPredictions = true;
        CriticalPathAnalyzer oracle(cfg);
        session().replayInto(w, 0, {&plain, &oracle});
        rows[i] = {plain.finish(), oracle.finish()};
    });

    for (size_t i = 0; i < workloads.size(); ++i) {
        const CriticalPathResult &base = rows[i].base;
        const CriticalPathResult &vp = rows[i].vp;
        double shorten = static_cast<double>(base.pathLength) /
                         static_cast<double>(vp.pathLength);
        std::printf("%-10s %12llu %10.2f %12llu %10.2f %8.1fx\n",
                    std::string(workloads[i]->name()).c_str(),
                    static_cast<unsigned long long>(base.pathLength),
                    base.dataflowIlp(),
                    static_cast<unsigned long long>(vp.pathLength),
                    vp.dataflowIlp(), shorten);
        std::string name(workloads[i]->name());
        emitResult("critical_path", name + "/shorten_factor", shorten,
                   std::nullopt, "x");
        emitResult("critical_path", name + "/dataflow_ilp",
                   base.dataflowIlp(), std::nullopt, "");
    }

    std::printf("\nhottest critical-path instructions (go, plain):\n");
    {
        const Workload *go = suite().find("go");
        CriticalPathAnalyzer plain;
        session().runTrace(*go, 0, &plain);
        CriticalPathResult base = plain.finish();
        for (size_t i = 0; i < base.members.size() && i < 6; ++i) {
            std::printf("  pc %-6llu x%llu\n",
                        static_cast<unsigned long long>(
                            base.members[i].pc),
                        static_cast<unsigned long long>(
                            base.members[i].occurrences));
        }
    }

    std::printf(
        "\nexpected: collapsing correctly-predicted edges shortens "
        "every critical\npath — dramatically for the predictable "
        "benchmarks (m88ksim, li, mgrid),\nmodestly for compress. "
        "This is the mechanism behind every ILP gain in\nTable 5.2.\n");
    finishBench("bench_critical_path");
    return 0;
}
