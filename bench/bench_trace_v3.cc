/**
 * @file
 * Trace format v3 gates. Three properties the columnar format must
 * hold to keep its place as the default cache format:
 *
 *  1. on-disk size: the delta/varint/dictionary columns compress the
 *     nine-workload corpus to at most half its v2 (fixed 39-byte
 *     record) size;
 *  2. decode throughput: the mmap + block-decode read path sustains a
 *     floor in records/second (a loose floor — CI machines vary);
 *  3. batch replay: fanning one decoded pass to K evaluators beats K
 *     serial v2 disk replays by at least 3x, the speedup the ablation
 *     sweeps were re-baselined on.
 *
 * The bench exits non-zero when a gate fails (CI runs it in the
 * release bench subset), emits shape-checkable rows for
 * `vpprof_cli verify`, and writes BENCH_trace_v3.json so the perf
 * gate pins the deterministic size/record counters.
 */

#include "bench_util.hh"

#include <filesystem>
#include <functional>

#include "vm/trace_io.hh"

using namespace vpprof;
using namespace vpprof::bench;

namespace
{

constexpr double kMaxSizeRatio = 0.5;       // v3 bytes / v2 bytes
constexpr double kMinSpeedup = 3.0;         // serial wall / batch wall
constexpr double kMinDecodeMrps = 5.0;      // million records/second

double
wallMsOf(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration_cast<
               std::chrono::duration<double, std::milli>>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

uint64_t
fileSize(const std::string &path)
{
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(path, ec);
    if (ec)
        vpprof_panic("missing bench trace file: ", path);
    return size;
}

/** Block-level consumer that only counts — pure decode cost. */
class CountingBlockSink : public TraceBlockSink
{
  public:
    void
    consumeBlock(const TraceBlockView &block) override
    {
        records_ += block.count;
        ++blocks_;
    }

    uint64_t records() const { return records_; }
    uint64_t blocks() const { return blocks_; }

  private:
    uint64_t records_ = 0;
    uint64_t blocks_ = 0;
};

/** Capture every workload's input-0 trace into `dir` in `format`. */
void
captureCorpus(const std::string &dir, const char *format_env)
{
    ::setenv("VPPROF_TRACE_FORMAT", format_env, 1);
    SessionConfig cfg;
    cfg.traceCacheDir = dir;
    Session capture(cfg);
    for (const auto &w : suite().all()) {
        CountingTraceSink counts;
        capture.runTrace(*w, 0, &counts);
    }
    ::unsetenv("VPPROF_TRACE_FORMAT");
}

} // namespace

int
main()
{
    banner("Trace v3 gates: on-disk size, decode throughput, batch "
           "replay speedup",
           "beyond the paper -- the columnar cache format's "
           "acceptance gates");

    const std::string base =
        std::filesystem::temp_directory_path().string() +
        "/vpprof_bench_trace_v3";
    const std::string dirV2 = base + "-v2";
    const std::string dirV3 = base + "-v3";
    std::filesystem::remove_all(dirV2);
    std::filesystem::remove_all(dirV3);

    // --- Corpus capture, both formats. -----------------------------
    captureCorpus(dirV2, "2");
    captureCorpus(dirV3, "3");

    // --- Gate 1: on-disk size over the nine-workload corpus. -------
    std::printf("%-10s %12s %12s %8s\n", "benchmark", "v2 bytes",
                "v3 bytes", "ratio");
    uint64_t total_v2 = 0, total_v3 = 0, total_records = 0;
    for (const auto &w : suite().all()) {
        std::string name(w->name());
        uint64_t v2 = fileSize(dirV2 + "/" + name + ".in0.trace");
        uint64_t v3 = fileSize(dirV3 + "/" + name + ".in0.trace");
        total_v2 += v2;
        total_v3 += v3;
        std::printf("%-10s %12llu %12llu %7.2fx\n", name.c_str(),
                    static_cast<unsigned long long>(v2),
                    static_cast<unsigned long long>(v3),
                    static_cast<double>(v3) / static_cast<double>(v2));
    }
    double size_ratio =
        static_cast<double>(total_v3) / static_cast<double>(total_v2);
    std::printf("%-10s %12llu %12llu %7.2fx  (gate: <= %.2fx)\n\n",
                "total", static_cast<unsigned long long>(total_v2),
                static_cast<unsigned long long>(total_v3), size_ratio,
                kMaxSizeRatio);

    // --- Gate 2: v3 block-decode throughput over the corpus. -------
    // Warm-up pass fills the page cache; the timed pass measures the
    // mmap + decode path alone (counting sink does no evaluator work).
    double decode_ms = 0.0;
    uint64_t decoded_records = 0, decoded_blocks = 0;
    for (int pass = 0; pass < 2; ++pass) {
        CountingBlockSink counts;
        double ms = wallMsOf([&] {
            for (const auto &w : suite().all()) {
                TraceFileReader reader(dirV3 + "/" +
                                       std::string(w->name()) +
                                       ".in0.trace");
                reader.replayBlocks(&counts);
            }
        });
        if (pass == 1) {
            decode_ms = ms;
            decoded_records = counts.records();
            decoded_blocks = counts.blocks();
        }
    }
    total_records = decoded_records;
    double decode_mrps = decode_ms <= 0.0
                             ? 0.0
                             : static_cast<double>(decoded_records) /
                                   (decode_ms * 1000.0);
    std::printf("decode: %llu records / %llu blocks in %.1f ms = "
                "%.1f Mrec/s  (gate: >= %.1f)\n\n",
                static_cast<unsigned long long>(decoded_records),
                static_cast<unsigned long long>(decoded_blocks),
                decode_ms, decode_mrps, kMinDecodeMrps);

    // --- Gate 3: batched vs serial replay, 16 evaluators on li. ----
    // Serial leg: the pre-v3 sweep shape — every evaluator streams the
    // v2 cache file from disk on its own (budget 0 forces the disk
    // path). Batch leg: one EvaluatorBank pass over the v3 file.
    constexpr size_t kEvaluators = 16;
    const Workload &li = *suite().find("li");
    auto geometry = [](size_t i) {
        PredictorConfig cfg;
        cfg.numEntries = 128u << (i % 4);
        return cfg;
    };

    std::vector<FiniteTableEvaluator> serial_evals, batch_evals;
    serial_evals.reserve(kEvaluators);
    batch_evals.reserve(kEvaluators);
    for (size_t i = 0; i < kEvaluators; ++i) {
        serial_evals.emplace_back(VpPolicy::Fsm, geometry(i));
        batch_evals.emplace_back(VpPolicy::Fsm, geometry(i));
    }

    SessionConfig diskCfg;
    diskCfg.residentRecordBudget = 0;  // every replay streams from disk

    double serial_ms = 0.0;
    {
        SessionConfig cfg = diskCfg;
        cfg.traceCacheDir = dirV2;
        Session v2session(cfg);
        {
            CountingTraceSink warm;  // adoption + page-cache warm-up
            v2session.runTrace(li, 0, &warm);
        }
        serial_ms = wallMsOf([&] {
            for (FiniteTableEvaluator &eval : serial_evals)
                v2session.runTrace(li, 0, &eval);
        });
    }

    double batch_ms = 0.0;
    {
        SessionConfig cfg = diskCfg;
        cfg.traceCacheDir = dirV3;
        Session v3session(cfg);
        {
            CountingTraceSink warm;
            v3session.runTrace(li, 0, &warm);
        }
        EvaluatorBank bank;
        for (FiniteTableEvaluator &eval : batch_evals)
            bank.addBlockSink(&eval);
        batch_ms =
            wallMsOf([&] { v3session.replayInto(li, 0, bank); });
    }

    // The batched pass must be a pure reorganization: every evaluator
    // ends bit-identical to its serially-fed twin.
    for (size_t i = 0; i < kEvaluators; ++i) {
        FiniteTableStats a = serial_evals[i].result();
        FiniteTableStats b = batch_evals[i].result();
        if (a.producers != b.producers ||
            a.candidates != b.candidates ||
            a.correctTaken != b.correctTaken ||
            a.incorrectTaken != b.incorrectTaken ||
            a.evictions != b.evictions)
            vpprof_panic("batch replay diverged from serial replay at "
                         "evaluator ",
                         i);
    }

    double speedup = batch_ms <= 0.0 ? 0.0 : serial_ms / batch_ms;
    std::printf("replay x%zu evaluators on li: serial(v2 disk) "
                "%.1f ms, batch(v3) %.1f ms = %.1fx  (gate: >= "
                "%.1fx)\n\n",
                kEvaluators, serial_ms, batch_ms, speedup, kMinSpeedup);

    // --- Report + gates. -------------------------------------------
    emitResult("trace_v3", "corpus/size_ratio", size_ratio,
               std::nullopt, "x");
    emitResult("trace_v3", "corpus/decode_mrps", decode_mrps,
               std::nullopt, "Mrec/s");
    emitResult("trace_v3", "li/batch_speedup_x16", speedup,
               std::nullopt, "x");
    flushResults("bench_trace_v3");

    std::ofstream json("BENCH_trace_v3.json", std::ios::trunc);
    json << "{\n"
         << "  \"bench_trace_v3\": {\n"
         << "    \"wall_ms\": " << (decode_ms + serial_ms + batch_ms)
         << ",\n"
         << "    \"records\": " << total_records << ",\n"
         << "    \"v2_bytes\": " << total_v2 << ",\n"
         << "    \"v3_bytes\": " << total_v3 << "\n"
         << "  }\n"
         << "}\n";
    json.close();
    std::printf("-> BENCH_trace_v3.json\n");

    std::filesystem::remove_all(dirV2);
    std::filesystem::remove_all(dirV3);

    bool ok = true;
    if (size_ratio > kMaxSizeRatio) {
        std::printf("FAIL: v3 corpus is %.2fx of v2 (gate <= %.2fx)\n",
                    size_ratio, kMaxSizeRatio);
        ok = false;
    }
    if (decode_mrps < kMinDecodeMrps) {
        std::printf("FAIL: decode %.1f Mrec/s (gate >= %.1f)\n",
                    decode_mrps, kMinDecodeMrps);
        ok = false;
    }
    if (speedup < kMinSpeedup) {
        std::printf("FAIL: batch speedup %.1fx (gate >= %.1fx)\n",
                    speedup, kMinSpeedup);
        ok = false;
    }
    std::printf("%s: size %.2fx, decode %.1f Mrec/s, batch %.1fx\n",
                ok ? "PASS" : "FAIL", size_ratio, decode_mrps, speedup);
    return ok ? 0 : 1;
}
