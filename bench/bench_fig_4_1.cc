/**
 * @file
 * Figure 4.1 — the spread of the coordinates of M(V)max: per
 * benchmark, run the program with n=5 different input sets, view each
 * profile as an accuracy vector, compute the per-coordinate maximum
 * pairwise distance (Equation 4.1), and histogram the coordinates.
 *
 * Paper's claim: coordinates concentrate in the low intervals, i.e.,
 * per-instruction value predictability is input-independent.
 */

#include "bench_util.hh"

#include "common/text_table.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Figure 4.1 - the spread of M(V)max over n=5 runs",
           "Gabbay & Mendelson, MICRO-30 1997, Figure 4.1 / Eq. 4.1");

    Histogram overall = makeDecileHistogram();
    for (const auto &w : suite().all()) {
        std::vector<ProfileImage> images;
        for (size_t i = 0; i < w->numInputSets(); ++i)
            images.push_back(cachedProfile(std::string(w->name()), i));
        AlignedProfileVectors v = alignAccuracy(images);
        std::vector<double> metric = maxDistance(v);
        Histogram h = decileSpread(metric);
        overall.merge(h);
        std::printf("%s  (dimension %zu)\n",
                    renderHistogram(h, std::string(w->name()) +
                                           ": M(V)max deciles")
                        .c_str(),
                    v.dimension());
        std::printf("\n");
    }

    std::printf("%s\n",
                renderHistogram(overall, "suite overall").c_str());
    std::printf("low-interval mass ([0,10] + (10,20]): %s\n",
                formatPercent(overall.fraction(0) + overall.fraction(1))
                    .c_str());
    std::printf("\npaper: \"in all the benchmarks most of the "
                "coordinates are spread across\nthe lower intervals\" - "
                "expect the same concentration here.\n");
    emitResult("fig_4_1", "suite/low_interval_mass_pct",
               100.0 * (overall.fraction(0) + overall.fraction(1)),
               std::nullopt, "%");
    finishBench("bench_fig_4_1");
    return 0;
}
