/**
 * @file
 * Extension experiment: the hybrid two-table organization of
 * Section 3.2 head-to-head with an equal-budget single stride table.
 *
 * The paper argues that once directives identify which instructions
 * stride, the expensive stride field only needs a small table, with a
 * cheaper last-value table covering the rest. This bench quantifies
 * that: a 128-entry stride + 512-entry last-value hybrid (640 entries
 * total, but only 128 stride fields) versus a 640-entry all-stride
 * table, both profile-steered at threshold 70%, and versus the
 * hardware-only 512-entry FSM stride table of Figures 5.3/5.4.
 */

#include "bench_util.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Extension - hybrid two-table predictor vs single stride "
           "table",
           "Section 3.2's hybrid proposal, quantified");

    std::printf("%-10s | %9s %9s | %9s %9s | %9s %9s\n", "benchmark",
                "fsm corr", "wrong", "mono corr", "wrong", "hyb corr",
                "wrong");

    const auto &workloads = suite().all();
    struct Row
    {
        FiniteTableStats fsm, single, hyb;
    };
    std::vector<Row> rows(workloads.size());

    // All three table organizations consume one fused replay per
    // workload.
    session().runner().forEach(workloads.size(), [&](size_t i) {
        const Workload &w = *workloads[i];
        std::string name(w.name());
        Program base = w.program();
        Program annotated = annotatedAt(name, 70.0);

        // Baseline: the paper's 512x2 stride table with FSM counters.
        FiniteTableEvaluator fsm_eval(VpPolicy::Fsm,
                                      paperFiniteConfig(true));
        DirectiveOverrideSink fsm_view(base, &fsm_eval);

        // Equal-budget single stride table, profile-steered.
        PredictorConfig mono = paperFiniteConfig(false);
        mono.numEntries = 640;
        FiniteTableEvaluator single_eval(VpPolicy::Profile, mono);
        DirectiveOverrideSink single_view(annotated, &single_eval);

        // Hybrid: 128 stride fields + 512 last-value entries.
        HybridConfig hybrid;
        hybrid.stride.numEntries = 128;
        hybrid.stride.associativity = 2;
        hybrid.stride.counterBits = 0;
        hybrid.lastValue.numEntries = 512;
        hybrid.lastValue.associativity = 2;
        hybrid.lastValue.counterBits = 0;
        HybridTableEvaluator hyb_eval(hybrid);
        DirectiveOverrideSink hyb_view(annotated, &hyb_eval);

        session().replayInto(w, 0,
                             {&fsm_view, &single_view, &hyb_view});
        rows[i] = {fsm_eval.result(), single_eval.result(),
                   hyb_eval.result()};
    });

    for (size_t i = 0; i < workloads.size(); ++i) {
        std::string name(workloads[i]->name());
        const FiniteTableStats &fsm = rows[i].fsm;
        const FiniteTableStats &single = rows[i].single;
        const FiniteTableStats &hyb = rows[i].hyb;

        std::printf("%-10s | %9llu %9llu | %9llu %9llu | %9llu "
                    "%9llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(fsm.correctTaken),
                    static_cast<unsigned long long>(
                        fsm.incorrectTaken),
                    static_cast<unsigned long long>(
                        single.correctTaken),
                    static_cast<unsigned long long>(
                        single.incorrectTaken),
                    static_cast<unsigned long long>(hyb.correctTaken),
                    static_cast<unsigned long long>(
                        hyb.incorrectTaken));
        // The utilization argument as ratios: hybrid corrects relative
        // to the equal-budget mono table, and profile-steered wrong
        // predictions relative to the FSM baseline.
        if (single.correctTaken > 0)
            emitResult("hybrid_table",
                       name + "/hybrid_vs_mono_correct_ratio",
                       static_cast<double>(hyb.correctTaken) /
                           static_cast<double>(single.correctTaken),
                       std::nullopt, "");
        if (fsm.incorrectTaken > 0)
            emitResult("hybrid_table",
                       name + "/hybrid_vs_fsm_incorrect_ratio",
                       static_cast<double>(hyb.incorrectTaken) /
                           static_cast<double>(fsm.incorrectTaken),
                       std::nullopt, "");
    }

    std::printf(
        "\nexpected: the hybrid delivers correct-prediction counts "
        "close to the\nequal-budget single stride table while "
        "spending a quarter of the stride\nfields — the paper's "
        "utilization argument. Both profile-steered designs\nmake far "
        "fewer wrong predictions than the FSM baseline.\n");
    finishBench("bench_hybrid_table");
    return 0;
}
