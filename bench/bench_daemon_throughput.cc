/**
 * @file
 * vpprofd load bench: drives an in-process daemon over real
 * Unix-domain sockets and gates the serving layer's two contracts.
 *
 *  1. STEADY phase — 8 clients, each issuing a sequential mix of
 *     ping/stats/profile/evaluate/verify against a warm cache. With
 *     one outstanding request per client the default admission bounds
 *     (queue 64, quota 8) are never hit, so every request must be
 *     answered `ok`: errors and unanswered requests are hard gates at
 *     zero. Per-request latency is aggregated into p50/p99 and
 *     requests/second.
 *
 *  2. BURST phase — a deliberately tiny daemon (queue 2, quota 1)
 *     under 6 clients that each pipeline 4 profile jobs in a single
 *     write. Admission control must shed the excess EXPLICITLY:
 *     at least one `overloaded`/`quota` rejection (in practice most
 *     of the burst), and — the real contract — zero unanswered
 *     requests. Overload means rejection lines, never silence.
 *
 * Latency/throughput regimes are gated two ways: the timing-class
 * keys (wall_ms/p50/p99) of BENCH_daemon.json ride the perf gate's
 * noise margin against golden/perf/BENCH_daemon.json, and the
 * emitted rows are bounded by golden/shape/daemon.json. The
 * correctness gates (answered/errors/rejections) fail the bench
 * itself with a non-zero exit.
 */

#include "bench_util.hh"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <optional>
#include <set>
#include <thread>

#include <unistd.h>

#include "daemon/client.hh"
#include "daemon/server.hh"

using namespace vpprof;
using namespace vpprof::bench;
using namespace vpprof::daemon;

namespace
{

constexpr size_t kSteadyClients = 8;
constexpr size_t kSteadyRequestsPerClient = 32;
constexpr size_t kBurstClients = 6;
constexpr size_t kBurstJobsPerClient = 4;
constexpr int kCallTimeoutMs = 120'000;

std::string
freshSocketPath()
{
    static int counter = 0;
    std::ostringstream os;
    os << "/tmp/vpd_bench_" << ::getpid() << "_" << counter++
       << ".sock";
    return os.str();
}

/** One daemon instance with its event loop on a background thread. */
struct RunningDaemon
{
    std::unique_ptr<DaemonServer> server;
    std::thread loop;
    int rc = -1;

    explicit RunningDaemon(DaemonConfig cfg)
    {
        cfg.socketPath = freshSocketPath();
        server = std::make_unique<DaemonServer>(std::move(cfg));
        std::string error;
        if (!server->start(&error))
            vpprof_panic("daemon start failed: ", error);
        loop = std::thread([this] { rc = server->run(); });
    }

    DaemonClient
    client()
    {
        DaemonClient c;
        std::string error;
        if (!c.connect(server->config().socketPath, &error))
            vpprof_panic("daemon connect failed: ", error);
        return c;
    }

    /** Graceful drain; the event loop must exit 0. */
    int
    stop()
    {
        server->requestShutdown();
        loop.join();
        return rc;
    }
};

double
wallMsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration_cast<
               std::chrono::duration<double, std::milli>>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

double
percentile(std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    size_t idx = static_cast<size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

/** The deterministic steady-phase request mix for (client, i). */
CallResult
steadyCall(DaemonClient &client, uint64_t id, size_t slot)
{
    const char *even = "compress";
    const char *odd = "li";
    switch (slot % 8) {
      case 0:
        return client.call(id, Command::Ping, "", 0, 0, false,
                           kCallTimeoutMs);
      case 1:
        return client.call(id, Command::Stats, "", 0, 0, false,
                           kCallTimeoutMs);
      case 2:
        return client.call(id, Command::Profile, even, 0, 0, false,
                           kCallTimeoutMs);
      case 3:
        return client.call(id, Command::Profile, odd, 0, 0, false,
                           kCallTimeoutMs);
      case 4:
        return client.call(id, Command::Evaluate, even, 0, 70.0,
                           false, kCallTimeoutMs);
      case 5:
        return client.call(id, Command::Evaluate, odd, 0, 70.0, false,
                           kCallTimeoutMs);
      case 6:
        return client.call(id, Command::Verify, even, 0, 0, false,
                           kCallTimeoutMs);
      default:
        return client.call(id, Command::Verify, odd, 0, 0, false,
                           kCallTimeoutMs);
    }
}

struct SteadyStats
{
    std::vector<double> latenciesMs;
    uint64_t errors = 0;
    uint64_t unanswered = 0;
};

} // namespace

int
main()
{
    banner("vpprofd load bench: steady-state latency and explicit "
           "overload shedding",
           "beyond the paper -- the serving layer's acceptance gates");

    const std::string cache_dir =
        std::filesystem::temp_directory_path().string() +
        "/vpprof_bench_daemon";
    std::filesystem::remove_all(cache_dir);

    // ---- Steady phase --------------------------------------------
    DaemonConfig steady_cfg;
    steady_cfg.session.jobs = 4;
    steady_cfg.session.traceCacheDir = cache_dir;
    RunningDaemon steady(steady_cfg);

    // Warm pass (unmeasured): populate the trace cache and the
    // memoized profiles so the measured phase times the serving
    // path, not first-touch VM interpretation.
    {
        DaemonClient warm = steady.client();
        uint64_t id = 1;
        for (const char *w : {"compress", "li"}) {
            for (Command cmd : {Command::Profile, Command::Evaluate,
                                Command::Verify}) {
                CallResult r = warm.call(id++, cmd, w, 0, 70.0, false,
                                         kCallTimeoutMs);
                if (!r.ok)
                    vpprof_panic("warm-up ", commandName(cmd), " ", w,
                                 " failed: ", r.error);
            }
        }
    }

    std::printf("steady: %zu clients x %zu requests "
                "(ping/stats/profile/evaluate/verify mix, warm "
                "cache)\n",
                kSteadyClients, kSteadyRequestsPerClient);
    std::vector<SteadyStats> per_client(kSteadyClients);
    auto steady_t0 = std::chrono::steady_clock::now();
    {
        std::vector<std::thread> threads;
        for (size_t c = 0; c < kSteadyClients; ++c) {
            threads.emplace_back([&, c] {
                DaemonClient client = steady.client();
                SteadyStats &stats = per_client[c];
                for (size_t i = 0; i < kSteadyRequestsPerClient; ++i) {
                    auto t0 = std::chrono::steady_clock::now();
                    CallResult r =
                        steadyCall(client, i + 1, c + i);
                    stats.latenciesMs.push_back(wallMsSince(t0));
                    if (r.code == "timeout" ||
                        r.code == "disconnected")
                        ++stats.unanswered;
                    else if (!r.ok)
                        ++stats.errors;
                }
            });
        }
        for (std::thread &t : threads)
            t.join();
    }
    double steady_wall_ms = wallMsSince(steady_t0);
    if (steady.stop() != 0)
        vpprof_panic("steady daemon did not drain cleanly");

    std::vector<double> latencies;
    uint64_t steady_errors = 0, steady_unanswered = 0;
    for (const SteadyStats &stats : per_client) {
        latencies.insert(latencies.end(), stats.latenciesMs.begin(),
                         stats.latenciesMs.end());
        steady_errors += stats.errors;
        steady_unanswered += stats.unanswered;
    }
    std::sort(latencies.begin(), latencies.end());
    double p50_ms = percentile(latencies, 0.50);
    double p99_ms = percentile(latencies, 0.99);
    const uint64_t steady_requests =
        kSteadyClients * kSteadyRequestsPerClient;
    double rps = steady_wall_ms <= 0.0
                     ? 0.0
                     : 1000.0 * static_cast<double>(steady_requests) /
                           steady_wall_ms;
    std::printf("steady: %llu requests in %.1f ms = %.1f req/s, "
                "p50 %.2f ms, p99 %.2f ms, errors %llu, "
                "unanswered %llu\n\n",
                static_cast<unsigned long long>(steady_requests),
                steady_wall_ms, rps, p50_ms, p99_ms,
                static_cast<unsigned long long>(steady_errors),
                static_cast<unsigned long long>(steady_unanswered));

    // ---- Burst phase ---------------------------------------------
    // A tiny daemon (queue 2, quota 1) under a pipelined burst. Each
    // client writes its whole batch in ONE send, so the event loop
    // admits at most one job per client per buffer pass and must
    // reject the rest explicitly — `quota`/`overloaded` lines, never
    // dropped requests.
    DaemonConfig burst_cfg;
    burst_cfg.session.jobs = 1;
    burst_cfg.session.traceCacheDir = cache_dir;  // warm from phase 1
    burst_cfg.maxQueue = 2;
    burst_cfg.maxInflightPerClient = 1;
    RunningDaemon burst(burst_cfg);

    std::printf("burst: %zu clients x %zu pipelined profile jobs "
                "against queue=2, quota=1\n",
                kBurstClients, kBurstJobsPerClient);
    std::vector<uint64_t> rejected(kBurstClients, 0);
    std::vector<uint64_t> errors(kBurstClients, 0);
    std::vector<uint64_t> answered(kBurstClients, 0);
    auto burst_t0 = std::chrono::steady_clock::now();
    {
        std::vector<std::thread> threads;
        for (size_t c = 0; c < kBurstClients; ++c) {
            threads.emplace_back([&, c] {
                DaemonClient client = burst.client();
                std::string batch;
                for (size_t i = 0; i < kBurstJobsPerClient; ++i) {
                    Request req;
                    req.id = i + 1;
                    req.cmd = Command::Profile;
                    req.workload = (c % 2 == 0) ? "compress" : "li";
                    if (i > 0)
                        batch += "\n";
                    batch += requestLine(req);
                }
                if (!client.sendLine(batch))
                    return;  // answered stays short: counted below
                std::set<uint64_t> pending;
                for (size_t i = 0; i < kBurstJobsPerClient; ++i)
                    pending.insert(i + 1);
                while (!pending.empty()) {
                    std::optional<std::string> line =
                        client.readLine(kCallTimeoutMs);
                    if (!line)
                        return;
                    std::string perr;
                    std::optional<report::JsonValue> doc =
                        report::parseJson(*line, &perr);
                    if (!doc)
                        vpprof_panic("burst: bad response line: ",
                                     *line);
                    if (doc->stringOr("event", "") != "")
                        continue;  // progress lines, not answers
                    uint64_t id = static_cast<uint64_t>(
                        doc->numberOr("id", 0));
                    if (!pending.erase(id))
                        continue;
                    ++answered[c];
                    const report::JsonValue *ok_field =
                        doc->get("ok");
                    if (ok_field && ok_field->isBool() &&
                        ok_field->asBool())
                        continue;
                    std::string code = doc->stringOr("code", "");
                    if (code == "overloaded" || code == "quota" ||
                        code == "draining")
                        ++rejected[c];
                    else
                        ++errors[c];
                }
            });
        }
        for (std::thread &t : threads)
            t.join();
    }
    double burst_wall_ms = wallMsSince(burst_t0);
    if (burst.stop() != 0)
        vpprof_panic("burst daemon did not drain cleanly");

    uint64_t burst_rejected = 0, burst_errors = 0, burst_answered = 0;
    for (size_t c = 0; c < kBurstClients; ++c) {
        burst_rejected += rejected[c];
        burst_errors += errors[c];
        burst_answered += answered[c];
    }
    const uint64_t burst_requests = kBurstClients * kBurstJobsPerClient;
    uint64_t burst_unanswered = burst_requests - burst_answered;
    std::printf("burst: %llu requests in %.1f ms: %llu completed, "
                "%llu rejected, %llu errors, %llu unanswered\n\n",
                static_cast<unsigned long long>(burst_requests),
                burst_wall_ms,
                static_cast<unsigned long long>(
                    burst_answered - burst_rejected - burst_errors),
                static_cast<unsigned long long>(burst_rejected),
                static_cast<unsigned long long>(burst_errors),
                static_cast<unsigned long long>(burst_unanswered));

    std::filesystem::remove_all(cache_dir);

    // ---- Report + gates ------------------------------------------
    emitResult("daemon", "steady/p50_ms", p50_ms, std::nullopt, "ms");
    emitResult("daemon", "steady/p99_ms", p99_ms, std::nullopt, "ms");
    emitResult("daemon", "steady/rps", rps, std::nullopt, "req/s");
    emitResult("daemon", "steady/errors",
               static_cast<double>(steady_errors));
    emitResult("daemon", "steady/unanswered",
               static_cast<double>(steady_unanswered));
    emitResult("daemon", "burst/rejected",
               static_cast<double>(burst_rejected));
    emitResult("daemon", "burst/unanswered",
               static_cast<double>(burst_unanswered));
    flushResults("bench_daemon_throughput");

    // Timing-class keys (wall_ms/p50/p99) get the perf gate's noise
    // margin; the counters are deterministic by construction, so the
    // nondeterministic burst_rejected split stays out of this file
    // (it is bounded by golden/shape/daemon.json instead).
    std::ofstream json("BENCH_daemon.json", std::ios::trunc);
    json << "{\n"
         << "  \"bench_daemon_throughput\": {\n"
         << "    \"wall_ms\": " << (steady_wall_ms + burst_wall_ms)
         << ",\n"
         << "    \"p50\": " << p50_ms << ",\n"
         << "    \"p99\": " << p99_ms << ",\n"
         << "    \"steady_requests\": " << steady_requests << ",\n"
         << "    \"steady_errors\": " << steady_errors << ",\n"
         << "    \"steady_unanswered\": " << steady_unanswered
         << ",\n"
         << "    \"burst_requests\": " << burst_requests << ",\n"
         << "    \"burst_errors\": " << burst_errors << ",\n"
         << "    \"burst_unanswered\": " << burst_unanswered << "\n"
         << "  }\n"
         << "}\n";
    json.close();
    std::printf("-> BENCH_daemon.json\n");

    bool ok = true;
    if (steady_errors > 0 || steady_unanswered > 0) {
        std::printf("FAIL: steady phase had %llu errors, %llu "
                    "unanswered (gate: 0/0)\n",
                    static_cast<unsigned long long>(steady_errors),
                    static_cast<unsigned long long>(steady_unanswered));
        ok = false;
    }
    if (burst_unanswered > 0 || burst_errors > 0) {
        std::printf("FAIL: burst phase had %llu unanswered, %llu "
                    "errors (gate: 0/0)\n",
                    static_cast<unsigned long long>(burst_unanswered),
                    static_cast<unsigned long long>(burst_errors));
        ok = false;
    }
    if (burst_rejected == 0) {
        std::printf("FAIL: burst shed no load — admission control "
                    "must reject explicitly\n");
        ok = false;
    }
    std::printf("%s: p50 %.2f ms, p99 %.2f ms, %.1f req/s, burst "
                "rejected %llu/%llu\n",
                ok ? "PASS" : "FAIL", p50_ms, p99_ms, rps,
                static_cast<unsigned long long>(burst_rejected),
                static_cast<unsigned long long>(burst_requests));
    return ok ? 0 : 1;
}
