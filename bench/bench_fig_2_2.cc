/**
 * @file
 * Figure 2.2 — the spread of instructions according to their value
 * prediction accuracy: per benchmark, the decile histogram of
 * per-instruction stride-predictor accuracy.
 *
 * Paper's observation: ~30% of instructions exceed 90% accuracy and
 * ~40% fall below 10% — a strongly bimodal distribution.
 */

#include "bench_util.hh"

#include "common/text_table.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Figure 2.2 - distribution of per-instruction prediction "
           "accuracy",
           "Gabbay & Mendelson, MICRO-30 1997, Figure 2.2");

    Histogram overall = makeDecileHistogram();
    for (const auto &w : suite().all()) {
        const ProfileImage &img =
            cachedProfile(std::string(w->name()), 0);
        Histogram h = makeDecileHistogram();
        for (const auto &[pc, p] : img.entries()) {
            if (p.attempts == 0)
                continue;
            h.addSample(p.accuracyPercent());
            overall.addSample(p.accuracyPercent());
        }
        std::printf("%s",
                    renderHistogram(h, std::string(w->name()) +
                                           ": accuracy deciles")
                        .c_str());
        std::printf("\n");
    }

    std::printf("%s\n",
                renderHistogram(overall, "suite overall").c_str());
    std::printf("bimodality check: >90%% bucket holds %s, <=10%% bucket "
                "holds %s of instructions\n",
                formatPercent(overall.fraction(9)).c_str(),
                formatPercent(overall.fraction(0)).c_str());
    std::printf("\npaper: ~30%% of instructions above 90%% accuracy, "
                "~40%% below 10%%.\nexpected shape: mass concentrated "
                "in the two extreme deciles.\n");
    emitResult("fig_2_2", "suite/above_90_pct",
               100.0 * overall.fraction(9), 30.0, "%");
    emitResult("fig_2_2", "suite/at_or_below_10_pct",
               100.0 * overall.fraction(0), 40.0, "%");
    emitResult("fig_2_2", "suite/extreme_decile_mass_pct",
               100.0 * (overall.fraction(0) + overall.fraction(9)),
               std::nullopt, "%");
    finishBench("bench_fig_2_2");
    return 0;
}
