/**
 * @file
 * Figures 5.3 and 5.4 — with the paper's finite predictor (512-entry,
 * 2-way stride table): the percentage change in total correct
 * predictions (5.3) and total incorrect predictions (5.4) of the
 * profile-guided scheme relative to the saturating-counter scheme.
 *
 * Positive numbers in 5.3 and negative numbers in 5.4 are wins.
 */

#include "bench_util.hh"

using namespace vpprof;
using namespace vpprof::bench;

namespace
{

double
deltaPct(uint64_t ours, uint64_t theirs)
{
    if (theirs == 0)
        return 0.0;
    return 100.0 * (static_cast<double>(ours) /
                        static_cast<double>(theirs) -
                    1.0);
}

} // namespace

int
main()
{
    banner("Figures 5.3 / 5.4 - correct/incorrect predictions vs FSM "
           "(512-entry 2-way)",
           "Gabbay & Mendelson, MICRO-30 1997, Figures 5.3 and 5.4");

    struct Row
    {
        std::string name;
        std::vector<double> d_correct;
        std::vector<double> d_incorrect;
        uint64_t fsm_evictions = 0;
        std::vector<uint64_t> prof_evictions;
    };
    const auto &workloads = suite().all();
    std::vector<Row> rows(workloads.size());

    // One cell per workload; the FSM baseline and every threshold's
    // finite table consume one fused replay of the cached trace.
    session().runner().forEach(workloads.size(), [&](size_t i) {
        const Workload &w = *workloads[i];
        Row &row = rows[i];
        row.name = w.name();

        Program base = w.program();
        std::vector<Program> annotated;
        for (double threshold : kThresholds)
            annotated.push_back(annotatedAt(row.name, threshold));

        FiniteTableEvaluator fsm_eval(VpPolicy::Fsm,
                                      paperFiniteConfig(true));

        std::vector<FiniteTableEvaluator> prof_evals;
        prof_evals.reserve(kThresholds.size());
        EvaluatorBank bank;
        bank.addBlockSink(&fsm_eval, &base);
        for (size_t t = 0; t < kThresholds.size(); ++t) {
            prof_evals.emplace_back(VpPolicy::Profile,
                                    paperFiniteConfig(false));
            bank.addBlockSink(&prof_evals[t], &annotated[t]);
        }
        session().replayInto(w, 0, bank);

        FiniteTableStats fsm = fsm_eval.result();
        row.fsm_evictions = fsm.evictions;
        for (const FiniteTableEvaluator &eval : prof_evals) {
            FiniteTableStats prof = eval.result();
            row.d_correct.push_back(
                deltaPct(prof.correctTaken, fsm.correctTaken));
            row.d_incorrect.push_back(
                deltaPct(prof.incorrectTaken, fsm.incorrectTaken));
            row.prof_evictions.push_back(prof.evictions);
        }
    });

    auto print_series = [&](const char *title,
                            const std::vector<double> Row::*member) {
        std::printf("%s\n", title);
        std::printf("%-10s", "benchmark");
        for (double t : kThresholds)
            std::printf(" %8.0f%%", t);
        std::printf("\n");
        for (const Row &row : rows) {
            std::printf("%-10s", row.name.c_str());
            for (double d : row.*member)
                std::printf(" %+8.1f", d);
            std::printf("\n");
        }
        std::printf("\n");
    };

    print_series("Figure 5.3: increase in total correct predictions "
                 "[%]",
                 &Row::d_correct);
    print_series("Figure 5.4: increase in total incorrect predictions "
                 "[%] (negative = fewer)",
                 &Row::d_incorrect);

    std::printf("table pressure (LRU evictions, FSM vs profile@90):\n");
    for (const Row &row : rows) {
        std::printf("  %-10s %10llu -> %llu\n", row.name.c_str(),
                    static_cast<unsigned long long>(row.fsm_evictions),
                    static_cast<unsigned long long>(
                        row.prof_evictions[0]));
    }

    std::printf(
        "\npaper's shape: big-working-set benchmarks (go, gcc, li, "
        "perl, vortex)\nfind thresholds with BOTH more corrects and "
        "fewer incorrects; the\nsmall-working-set ones (m88ksim, "
        "compress, ijpeg, mgrid) cannot, because\nthe 512-entry table "
        "already holds their whole working set.\n");
    for (const Row &row : rows) {
        bool both_axes_win = false;
        for (size_t t = 0; t < kThresholds.size(); ++t) {
            std::string at =
                "@" + std::to_string(static_cast<int>(kThresholds[t]));
            emitResult("fig_5_3_5_4", row.name + "/d_correct" + at,
                       row.d_correct[t], std::nullopt, "%");
            emitResult("fig_5_3_5_4", row.name + "/d_incorrect" + at,
                       row.d_incorrect[t], std::nullopt, "%");
            both_axes_win |=
                row.d_correct[t] > 0.0 && row.d_incorrect[t] < 0.0;
        }
        // 1 = some threshold wins on both axes (more corrects AND
        // fewer incorrects), the paper's working-set regime split.
        emitResult("fig_5_3_5_4", row.name + "/both_axes_win",
                   both_axes_win ? 1.0 : 0.0, std::nullopt, "");
    }
    finishBench("bench_fig_5_3_5_4");
    return 0;
}
