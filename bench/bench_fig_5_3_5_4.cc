/**
 * @file
 * Figures 5.3 and 5.4 — with the paper's finite predictor (512-entry,
 * 2-way stride table): the percentage change in total correct
 * predictions (5.3) and total incorrect predictions (5.4) of the
 * profile-guided scheme relative to the saturating-counter scheme.
 *
 * Positive numbers in 5.3 and negative numbers in 5.4 are wins.
 */

#include "bench_util.hh"

using namespace vpprof;
using namespace vpprof::bench;

namespace
{

double
deltaPct(uint64_t ours, uint64_t theirs)
{
    if (theirs == 0)
        return 0.0;
    return 100.0 * (static_cast<double>(ours) /
                        static_cast<double>(theirs) -
                    1.0);
}

} // namespace

int
main()
{
    banner("Figures 5.3 / 5.4 - correct/incorrect predictions vs FSM "
           "(512-entry 2-way)",
           "Gabbay & Mendelson, MICRO-30 1997, Figures 5.3 and 5.4");

    struct Row
    {
        std::string name;
        std::vector<double> d_correct;
        std::vector<double> d_incorrect;
        uint64_t fsm_evictions = 0;
        std::vector<uint64_t> prof_evictions;
    };
    std::vector<Row> rows;

    for (const auto &w : suite().all()) {
        Row row;
        row.name = w->name();
        MemoryImage input = w->input(0);
        FiniteTableStats fsm = evaluateFiniteTable(
            w->program(), input, VpPolicy::Fsm, paperFiniteConfig(true));
        row.fsm_evictions = fsm.evictions;

        for (double threshold : kThresholds) {
            Program annotated = annotatedAt(row.name, threshold);
            FiniteTableStats prof = evaluateFiniteTable(
                annotated, input, VpPolicy::Profile,
                paperFiniteConfig(false));
            row.d_correct.push_back(
                deltaPct(prof.correctTaken, fsm.correctTaken));
            row.d_incorrect.push_back(
                deltaPct(prof.incorrectTaken, fsm.incorrectTaken));
            row.prof_evictions.push_back(prof.evictions);
        }
        rows.push_back(std::move(row));
    }

    auto print_series = [&](const char *title,
                            const std::vector<double> Row::*member) {
        std::printf("%s\n", title);
        std::printf("%-10s", "benchmark");
        for (double t : kThresholds)
            std::printf(" %8.0f%%", t);
        std::printf("\n");
        for (const Row &row : rows) {
            std::printf("%-10s", row.name.c_str());
            for (double d : row.*member)
                std::printf(" %+8.1f", d);
            std::printf("\n");
        }
        std::printf("\n");
    };

    print_series("Figure 5.3: increase in total correct predictions "
                 "[%]",
                 &Row::d_correct);
    print_series("Figure 5.4: increase in total incorrect predictions "
                 "[%] (negative = fewer)",
                 &Row::d_incorrect);

    std::printf("table pressure (LRU evictions, FSM vs profile@90):\n");
    for (const Row &row : rows) {
        std::printf("  %-10s %10llu -> %llu\n", row.name.c_str(),
                    static_cast<unsigned long long>(row.fsm_evictions),
                    static_cast<unsigned long long>(
                        row.prof_evictions[0]));
    }

    std::printf(
        "\npaper's shape: big-working-set benchmarks (go, gcc, li, "
        "perl, vortex)\nfind thresholds with BOTH more corrects and "
        "fewer incorrects; the\nsmall-working-set ones (m88ksim, "
        "compress, ijpeg, mgrid) cannot, because\nthe 512-entry table "
        "already holds their whole working set.\n");
    return 0;
}
