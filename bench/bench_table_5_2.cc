/**
 * @file
 * Table 5.2 — the increase in ILP gained by value prediction under
 * the different classification mechanisms, relative to no value
 * prediction, on the paper's abstract machine (40-entry window,
 * unlimited units, perfect branch prediction, 1-cycle misprediction
 * penalty, 512-entry 2-way stride predictor).
 */

#include "bench_util.hh"

#include <algorithm>

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Table 5.2 - ILP increase from value prediction",
           "Gabbay & Mendelson, MICRO-30 1997, Table 5.2");

    // Paper's reported rows (percent increase over no-VP).
    const std::map<std::string, std::vector<int>> paper = {
        {"go", {10, 9, 10, 13, 13, 13}},
        {"m88ksim", {593, 489, 492, 565, 577, 577}},
        {"gcc", {15, 16, 17, 21, 21, 21}},
        {"compress", {11, 7, 7, 8, 8, 8}},
        {"li", {37, 33, 35, 38, 38, 40}},
        {"ijpeg", {16, 14, 14, 15, 16, 15}},
        {"perl", {19, 23, 24, 28, 28, 27}},
        {"vortex", {159, 175, 178, 180, 179, 179}},
        {"mgrid", {24, 7, 10, 11, 11, 11}},
    };

    IlpConfig machine_cfg;  // window 40, penalty 1

    std::printf("%-10s %8s | %8s", "benchmark", "base ILP", "VP+SC");
    for (double t : kThresholds)
        std::printf(" %8.0f%%", t);
    std::printf("   (measured, %% increase over no-VP)\n");

    struct Row
    {
        IlpResult base;
        IlpResult fsm;
        std::vector<IlpResult> prof;  // per threshold
    };
    const auto &workloads = suite().all();
    std::vector<Row> rows(workloads.size());

    // One cell per workload; the no-VP baseline, the FSM machine and
    // all five profile-guided machines consume one fused replay.
    session().runner().forEach(workloads.size(), [&](size_t i) {
        const Workload &w = *workloads[i];
        std::string name(w.name());

        std::vector<Program> annotated;
        for (double threshold : kThresholds)
            annotated.push_back(annotatedAt(name, threshold));

        DataflowEngine base_engine(machine_cfg, VpPolicy::None, nullptr);
        StridePredictor fsm_pred(paperFiniteConfig(true));
        DataflowEngine fsm_engine(machine_cfg, VpPolicy::Fsm, &fsm_pred);

        std::vector<StridePredictor> prof_preds;
        std::vector<DataflowEngine> prof_engines;
        prof_preds.reserve(kThresholds.size());
        prof_engines.reserve(kThresholds.size());
        EvaluatorBank bank;
        bank.addRecordSink(&base_engine);
        bank.addRecordSink(&fsm_engine);
        for (size_t t = 0; t < kThresholds.size(); ++t) {
            prof_preds.emplace_back(paperFiniteConfig(false));
            prof_engines.emplace_back(machine_cfg, VpPolicy::Profile,
                                      &prof_preds[t]);
            bank.addRecordSink(&prof_engines[t], &annotated[t]);
        }
        session().replayInto(w, 0, bank);

        rows[i].base = base_engine.result();
        rows[i].fsm = fsm_engine.result();
        for (const DataflowEngine &engine : prof_engines)
            rows[i].prof.push_back(engine.result());
    });

    for (size_t i = 0; i < workloads.size(); ++i) {
        std::string name(workloads[i]->name());
        const Row &row = rows[i];
        std::printf("%-10s %8.2f | %+7.1f%%", name.c_str(),
                    row.base.ilp(),
                    100.0 * (row.fsm.ilp() / row.base.ilp() - 1.0));
        for (const IlpResult &prof : row.prof)
            std::printf(" %+8.1f",
                        100.0 * (prof.ilp() / row.base.ilp() - 1.0));
        auto it = paper.find(name);
        std::printf("   paper:");
        for (int v : it->second)
            std::printf(" %d", v);
        std::printf("\n");
    }

    std::printf(
        "\npaper's shape: value prediction raises ILP everywhere; for "
        "most\nbenchmarks some profiling threshold matches or beats "
        "VP+SC, and the\nprofile-guided gain tends to GROW as the "
        "threshold drops 90%% -> 50%%\n(more correct predictions "
        "outweigh the extra mispredictions at a\n1-cycle penalty).\n");
    for (size_t i = 0; i < workloads.size(); ++i) {
        std::string name(workloads[i]->name());
        const Row &row = rows[i];
        const std::vector<int> &paper_row = paper.at(name);
        double sc_gain =
            100.0 * (row.fsm.ilp() / row.base.ilp() - 1.0);
        emitResult("table_5_2", name + "/base_ilp", row.base.ilp(),
                   std::nullopt, "");
        emitResult("table_5_2", name + "/sc_gain_pct", sc_gain,
                   static_cast<double>(paper_row[0]), "%");
        double best_prof = 0.0;
        for (size_t t = 0; t < kThresholds.size(); ++t) {
            double gain =
                100.0 * (row.prof[t].ilp() / row.base.ilp() - 1.0);
            best_prof = std::max(best_prof, gain);
            emitResult("table_5_2",
                       name + "/prof_gain@" +
                           std::to_string(
                               static_cast<int>(kThresholds[t])),
                       gain, static_cast<double>(paper_row[1 + t]),
                       "%");
        }
        emitResult("table_5_2", name + "/best_prof_minus_sc",
                   best_prof - sc_gain, std::nullopt, "pp");
    }
    finishBench("bench_table_5_2");
    return 0;
}
