/**
 * @file
 * Figure 4.2 — the spread of the coordinates of M(V)average: as
 * Figure 4.1 but with the arithmetic-average pairwise distance
 * (Equation 4.2), the less strict metric.
 */

#include "bench_util.hh"

#include "common/text_table.hh"

using namespace vpprof;
using namespace vpprof::bench;

int
main()
{
    banner("Figure 4.2 - the spread of M(V)average over n=5 runs",
           "Gabbay & Mendelson, MICRO-30 1997, Figure 4.2 / Eq. 4.2");

    Histogram overall = makeDecileHistogram();
    for (const auto &w : suite().all()) {
        std::vector<ProfileImage> images;
        for (size_t i = 0; i < w->numInputSets(); ++i)
            images.push_back(cachedProfile(std::string(w->name()), i));
        AlignedProfileVectors v = alignAccuracy(images);
        Histogram h = decileSpread(averageDistance(v));
        overall.merge(h);
        std::printf("%s\n",
                    renderHistogram(h, std::string(w->name()) +
                                           ": M(V)average deciles")
                        .c_str());
    }

    std::printf("%s\n",
                renderHistogram(overall, "suite overall").c_str());
    std::printf("low-interval mass ([0,10] + (10,20]): %s\n",
                formatPercent(overall.fraction(0) + overall.fraction(1))
                    .c_str());
    std::printf("\npaper: same concentration as Figure 4.1 but "
                "stronger, since the average\nmetric is less strict "
                "than the max metric.\n");
    emitResult("fig_4_2", "suite/low_interval_mass_pct",
               100.0 * (overall.fraction(0) + overall.fraction(1)),
               std::nullopt, "%");
    finishBench("bench_fig_4_2");
    return 0;
}
